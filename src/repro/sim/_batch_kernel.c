/* Rep-batched work-stealing tick kernel (engine="batch").
 *
 * One replicate of the batched arena, executed start to finish.  This is
 * a line-for-line transcription of the native-scope path of
 * repro/sim/flat_engine.py::_run_flat (phase A completion cascades,
 * phase B admission / burn / live-attempt branches, the three
 * fast-forwards, sub-tick execution when steals_per_tick > 1) over the
 * block-structured SoA arena built by repro.sim.batch_engine.  Keep the
 * two in sync: the Python kernel defines the semantics, bit for bit --
 * same completions, same stats counters, same RNG draw cadence -- and
 * tests/sim/test_batch_engine.py enforces the identity.
 *
 * Arena addressing: node- and job-indexed arrays use *global* (arena)
 * ids; the caller passes job-indexed pointers pre-offset to this rep's
 * segment (jro, arr_ticks) and worker-indexed pointers offset by
 * rep * m.  Victim draws come from a 4096-slot block per rep, refilled
 * by calling back into Python (refill_fn) so the PCG64 stream is drawn
 * by the *same* numpy Generator calls as the serial flat kernel --
 * exact post-state identity, not just equal victim sequences.
 *
 * Returns 0 on success, 1 when max_ticks is exceeded (the caller raises
 * the same RuntimeError as the flat kernel).
 */

#include <stdint.h>

#define BLOCK 4096
#define IDLE_AT (((int64_t)1) << 62)

typedef void (*refill_fn)(int64_t rep);

typedef struct {
    /* immutable tables (global arena ids) */
    const int64_t *works;
    const int64_t *eo;
    const int64_t *et;
    const int64_t *chain;
    const int64_t *job_of;
    /* mutable run state */
    int64_t *preds;
    int64_t *unfin;
    double *completions;
    int64_t *cur;
    int64_t *fin;
    int64_t *dq_head;
    int64_t *dq_tail;
    int64_t *dq_next;
    int64_t *dq_prev;
    int64_t *rdy;
    double speed;
    int64_t m;
    /* scalars mirrored from the Python kernel's locals */
    int64_t n_busy;
    int64_t completed;
    int64_t nf;
    int64_t ne_count; /* |ne|: workers with a non-empty deque */
} St;

/* deques[i].append((node, ready)) */
static void dq_push(St *s, int64_t i, int64_t node, int64_t ready)
{
    int64_t tail = s->dq_tail[i];
    s->rdy[node] = ready;
    s->dq_next[node] = -1;
    s->dq_prev[node] = tail;
    if (tail < 0) {
        s->dq_head[i] = node;
        s->ne_count++;
    } else {
        s->dq_next[tail] = node;
    }
    s->dq_tail[i] = node;
}

/* deques[i].pop() -- LIFO, own-deque continuation */
static int64_t dq_pop_back(St *s, int64_t i)
{
    int64_t node = s->dq_tail[i];
    int64_t prev = s->dq_prev[node];
    s->dq_tail[i] = prev;
    if (prev < 0) {
        s->dq_head[i] = -1;
        s->ne_count--;
    } else {
        s->dq_next[prev] = -1;
    }
    return node;
}

/* deques[victim].popleft() -- FIFO, steal */
static int64_t dq_pop_front(St *s, int64_t i)
{
    int64_t node = s->dq_head[i];
    int64_t next = s->dq_next[node];
    s->dq_head[i] = next;
    if (next < 0) {
        s->dq_tail[i] = -1;
        s->ne_count--;
    } else {
        s->dq_prev[next] = -1;
    }
    return node;
}

/* _complete(i, end_tick): finish worker i's current node at the end of
 * end_tick.  Lowers nf when it assigns an earlier finish (phase A
 * recomputes nf wholesale afterwards, so reusing this in phase A is
 * exact). */
static void complete_node(St *s, int64_t i, int64_t end_tick)
{
    int64_t g = s->cur[i];
    int64_t j = s->job_of[g];
    int64_t u = s->unfin[j] - 1;
    int64_t cn, lo, hi, f;
    s->unfin[j] = u;
    cn = s->chain[g];
    if (cn >= 0) {
        s->cur[i] = cn;
        f = end_tick + s->works[cn];
        s->fin[i] = f;
        if (f < s->nf)
            s->nf = f;
        return;
    }
    lo = s->eo[g];
    hi = s->eo[g + 1];
    if (u == 0) {
        s->completions[j] = (double)(end_tick + 1) / s->speed;
        s->completed++;
    }
    if (lo != hi) {
        if (hi - lo == 1) {
            int64_t s2 = s->et[lo];
            int64_t pc = s->preds[s2] - 1;
            s->preds[s2] = pc;
            if (pc == 0) {
                s->cur[i] = s2;
                f = end_tick + s->works[s2];
                s->fin[i] = f;
                if (f < s->nf)
                    s->nf = f;
                return;
            }
        } else {
            int64_t first = -1;
            int64_t x;
            for (x = lo; x < hi; x++) {
                int64_t s2 = s->et[x];
                int64_t pc = s->preds[s2] - 1;
                s->preds[s2] = pc;
                if (pc == 0) {
                    if (first < 0)
                        first = s2;
                    else
                        /* extras: enabled siblings, ready next tick */
                        dq_push(s, i, s2, end_tick + 1);
                }
            }
            if (first >= 0) {
                s->cur[i] = first;
                f = end_tick + s->works[first];
                s->fin[i] = f;
                if (f < s->nf)
                    s->nf = f;
                return;
            }
        }
    }
    if (s->dq_head[i] >= 0) {
        int64_t g2 = dq_pop_back(s, i);
        s->cur[i] = g2;
        f = end_tick + s->works[g2];
        s->fin[i] = f;
        if (f < s->nf)
            s->nf = f;
    } else {
        s->cur[i] = -1;
        s->fin[i] = IDLE_AT;
        s->n_busy--;
    }
}

/* io[] layout (out): 0 steal_attempts, 1 failed_steals, 2 idle_steps,
 * 3 admission_wait_ticks, 4 ff_skipped_ticks, 5 max_queue_depth,
 * 6 elapsed_ticks, 7 completed. */
int64_t repro_batch_run_rep(
    const int64_t *works, const int64_t *eo, const int64_t *et,
    const int64_t *chain, const int64_t *job_of,
    const int64_t *jro,      /* job-indexed, pre-offset: jro[0..n] */
    const int64_t *roots,    /* global root-node list */
    const int64_t *arr_ticks,/* job-indexed, pre-offset: arr_ticks[0..n-1] */
    int64_t *preds, int64_t *unfin, double *completions,
    int64_t *cur, int64_t *fin, int64_t *fails, int64_t *idles,
    int64_t *dq_head, int64_t *dq_tail,
    int64_t *dq_next, int64_t *dq_prev, int64_t *rdy,
    int64_t *raw,            /* this rep's 4096-draw victim block */
    int64_t n, int64_t m, int64_t k, int64_t sigma,
    int64_t max_ticks, double speed,
    int64_t *io, refill_fn refill, int64_t rep)
{
    St st;
    int64_t st_att = 0, st_fail = 0, st_idle = 0;
    int64_t st_admwait = 0, st_ff = 0, st_maxq = 0;
    int64_t q_head = 0;  /* global FIFO queue == job ids [q_head, next_arr) */
    int64_t next_arr = 0;
    int64_t next_at = arr_ticks[0];
    int64_t t = next_at; /* nothing can happen before the first arrival */
    int64_t p = 0;       /* next unconsumed draw in the current block */
    int64_t i;

    st.works = works;
    st.eo = eo;
    st.et = et;
    st.chain = chain;
    st.job_of = job_of;
    st.preds = preds;
    st.unfin = unfin;
    st.completions = completions;
    st.cur = cur;
    st.fin = fin;
    st.dq_head = dq_head;
    st.dq_tail = dq_tail;
    st.dq_next = dq_next;
    st.dq_prev = dq_prev;
    st.rdy = rdy;
    st.speed = speed;
    st.m = m;
    st.n_busy = 0;
    st.completed = 0;
    st.nf = IDLE_AT;
    st.ne_count = 0;

    while (st.completed < n) {
        /* ---- release arrivals due at or before the current tick ---- */
        if (next_at <= t) {
            int64_t ql;
            while (next_arr < n && arr_ticks[next_arr] <= t)
                next_arr++;
            next_at = (next_arr < n) ? arr_ticks[next_arr] : max_ticks + 1;
            ql = next_arr - q_head;
            if (ql > st_maxq)
                st_maxq = ql;
        }

        if (t >= max_ticks) {
            io[0] = st_att; io[1] = st_fail; io[2] = st_idle;
            io[3] = st_admwait; io[4] = st_ff; io[5] = st_maxq;
            io[6] = t; io[7] = st.completed;
            return 1;
        }

        /* ---- fast-forward: whole system empty ---- */
        if (st.n_busy == 0 && q_head == next_arr) {
            int64_t gap = next_at - t;
            for (i = 0; i < m; i++) {
                int64_t f = fails[i] + gap * sigma;
                fails[i] = (f < k) ? f : k;
            }
            st_idle += gap * m;
            st_ff += gap;
            t += gap;
            continue;
        }

        /* ---- fast-forward: every worker busy ---- */
        if (st.n_busy == m) {
            int64_t blind = st.nf - t;
            if (blind > 0) {
                st_ff += blind;
                t += blind;
                continue;
            }
            /* blind == 0: the completion tick; fall through. */
        } else if (st.ne_count == 0 && st.n_busy > 0 && q_head == next_arr) {
            /* ---- fast-forward: nothing stealable, nothing admissible */
            int64_t delta = st.nf - t + 1;
            int64_t blind;
            if (next_arr < n && next_at - t < delta)
                delta = next_at - t;
            blind = delta - 1;
            if (blind >= 1) {
                int64_t n_idle = m - st.n_busy;
                for (i = 0; i < m; i++) {
                    if (cur[i] < 0) {
                        int64_t f = fails[i] + blind * sigma;
                        fails[i] = (f < k) ? f : k;
                    }
                }
                st_att += blind * n_idle * sigma;
                st_fail += blind * n_idle * sigma;
                st_ff += blind;
                t += blind;
                continue;
            }
            /* delta == 1: fall through to the general tick. */
        }

        /* ---- general tick ------------------------------------------ */
        /* Snapshot workers idle at the start of the tick, BEFORE phase
         * A: workers idled by a completion cascade must not act until
         * the next tick (the reference's idle_at_start). */
        {
            int64_t n_snap = 0;
            int64_t s_i;

            for (i = 0; i < m; i++)
                if (cur[i] < 0)
                    idles[n_snap++] = i;

            /* Phase A: completion cascades, only on ticks where some
             * busy worker finishes.  complete_node may lower nf
             * mid-phase; the wholesale recompute below makes the final
             * nf exactly min(fin), matching the Python kernel. */
            if (st.nf == t) {
                int64_t nfi = IDLE_AT;
                for (i = 0; i < m; i++)
                    if (fin[i] == t)
                        complete_node(&st, i, t);
                for (i = 0; i < m; i++)
                    if (fin[i] < nfi)
                        nfi = fin[i];
                st.nf = nfi;
            }

            /* Phase B: idle workers acquire work. */
            for (s_i = 0; s_i < n_snap; s_i++) {
                int64_t budget = sigma;
                i = idles[s_i];
                while (budget > 0) {
                    int64_t fi = fails[i];
                    if (fi >= k && q_head != next_arr) {
                        /* Admit the head-of-line job. */
                        int64_t jb = q_head++;
                        int64_t ro = jro[jb];
                        int64_t rhi = jro[jb + 1];
                        int64_t r0 = roots[ro];
                        int64_t f;
                        cur[i] = r0;
                        fails[i] = 0;
                        st.n_busy++;
                        st_admwait += t - arr_ticks[jb];
                        if (rhi - ro > 1) {
                            int64_t x;
                            for (x = ro + 1; x < rhi; x++)
                                dq_push(&st, i, roots[x], t);
                        }
                        if (sigma > 1) {
                            /* Sub-tick admission: one unit this tick. */
                            if (works[r0] == 1) {
                                complete_node(&st, i, t);
                            } else {
                                f = t + works[r0] - 1;
                                fin[i] = f;
                                if (f < st.nf)
                                    st.nf = f;
                            }
                        } else {
                            f = t + works[r0];
                            fin[i] = f;
                            if (f < st.nf)
                                st.nf = f;
                        }
                        break; /* admission consumes the rest of the tick */
                    }
                    if (st.ne_count == 0) {
                        /* Nothing stealable: burn just enough to unlock
                         * admission when the queue is non-empty, else
                         * the whole budget -- no draws. */
                        int64_t burned, f2;
                        if (q_head != next_arr && k - fi <= budget)
                            burned = k - fi;
                        else
                            burned = budget;
                        f2 = fi + burned;
                        fails[i] = (f2 < k) ? f2 : k;
                        st_att += burned;
                        st_fail += burned;
                        budget -= burned;
                        if (budget > 0)
                            continue; /* unlocked admission */
                        break;
                    }
                    /* Live steal attempts against the draw block. */
                    {
                        int64_t allowed = budget;
                        int64_t got = -1;
                        int64_t v, victim, g2, g2rdy, f;
                        if (q_head != next_arr) {
                            int64_t d = k - fi;
                            if (d < allowed)
                                allowed = d;
                        }
                        for (;;) {
                            int64_t stop, jdx, n_failed;
                            if (p == BLOCK) {
                                /* Same lazy refill cadence as
                                 * UniformVictim: Python draws the next
                                 * 4096 values into this rep's block. */
                                refill(rep);
                                p = 0;
                            }
                            stop = p + allowed;
                            if (stop > BLOCK)
                                stop = BLOCK;
                            got = -1;
                            for (jdx = p; jdx < stop; jdx++) {
                                v = raw[jdx];
                                if (v >= i)
                                    v++;
                                if (dq_head[v] >= 0) {
                                    got = jdx;
                                    break;
                                }
                            }
                            if (got >= 0) {
                                n_failed = got - p;
                                fails[i] += n_failed;
                                st_att += n_failed + 1;
                                st_fail += n_failed;
                                budget -= n_failed + 1;
                                p = got + 1;
                                break;
                            }
                            n_failed = stop - p;
                            fails[i] += n_failed;
                            st_att += n_failed;
                            st_fail += n_failed;
                            budget -= n_failed;
                            allowed -= n_failed;
                            p = stop;
                            if (allowed == 0)
                                break;
                        }
                        if (got < 0)
                            continue; /* budget spent or admission unlocked */
                        v = raw[got];
                        victim = (v >= i) ? v + 1 : v;
                        g2 = dq_pop_front(&st, victim);
                        g2rdy = rdy[g2];
                        cur[i] = g2;
                        fails[i] = 0;
                        st.n_busy++;
                        /* Same-tick execution only if the stolen node
                         * was ready at the start of this tick. */
                        if (sigma > 1 && g2rdy <= t) {
                            if (works[g2] == 1) {
                                complete_node(&st, i, t);
                            } else {
                                f = t + works[g2] - 1;
                                fin[i] = f;
                                if (f < st.nf)
                                    st.nf = f;
                            }
                        } else {
                            f = t + works[g2];
                            fin[i] = f;
                            if (f < st.nf)
                                st.nf = f;
                        }
                        break; /* the steal consumes the rest of the tick */
                    }
                }
            }
        }
        t += 1;
    }

    io[0] = st_att; io[1] = st_fail; io[2] = st_idle;
    io[3] = st_admwait; io[4] = st_ff; io[5] = st_maxq;
    io[6] = t; io[7] = st.completed;
    return 0;
}
