"""Streaming tick kernel: bounded-memory runs over lazy arrival streams.

``engine="flat"``'s sibling for the case the paper actually describes --
an *online* system where jobs arrive over time and nobody holds the
future in memory.  :func:`_run_stream` consumes a
:class:`~repro.workloads.stream.StreamSpec` instead of a materialized
instance: CSR segments are generated lazily as simulated time reaches
them, completed jobs are retired and their arrays compacted away, and
metrics are accumulated online (:mod:`repro.metrics.online`), so peak
memory is O(live jobs + one chunk) instead of O(total jobs).

Semantics
---------
The tick loop is the flat kernel (:mod:`repro.sim.flat_engine`) verbatim
-- same phases, same fast-forwards, same victim-draw blocks, same
counters -- re-based onto a *window* of jobs:

* node/job tables are window-local Python lists, **mutated in place**
  (appended at segment pulls, prefix-deleted and id-rewritten at
  compactions), so the hot loop indexes plain lists exactly like the
  flat kernel and pays nothing for the windowing;
* the retire frontier is the first incomplete window job; everything
  before it is dead state.  Compaction (at segment pulls and
  checkpoints, once a chunk's worth of jobs has retired) slides the
  window: each job is appended once and removed once, amortized O(1);
* per-job completions feed :class:`~repro.metrics.online.
  OnlineFlowStats` instead of a completions array.  The running max is
  over the *identical* per-job flow floats the materialized engine
  computes, so ``StreamResult.max_flow`` is bit-identical to
  ``_run_flat(stream.materialize(seed), m, seed=seed, ...)``, as are
  all final :class:`~repro.sim.result.SimulationStats` counters
  (asserted by ``tests/sim/test_stream_engine.py``).  Mean flow and the
  P^2 quantiles are online estimates (running sum / sketch), not
  bit-matched to their offline numpy counterparts.

One integer seed drives everything: the victim RNG is ``make_rng(seed)``
(the flat kernel's stream) and workload generation derives per-chunk
child seeds from the same integer (:mod:`repro.workloads.stream`), so
the materialized twin of a streaming run is simply
``stream.materialize(seed)`` run with the same seed.  ``seed=None``
draws one entropy integer up front and records it on the result, so
even "irreproducible" runs checkpoint and resume exactly.

Checkpoint/restore
------------------
With ``checkpoint_dir`` set, the engine durably snapshots its complete
mutable state (window lists, worker arrays, queues, the victim RNG's
state and current draw block, the stream cursor, the online-metric
accumulators) every ``checkpoint_every`` completed jobs via
:mod:`repro.sim.checkpoint`, and writes a :mod:`repro.obs` manifest
alongside.  Checkpoints are taken right after an arrival-release block,
where the loop-top state is self-consistent: on resume the release
condition is false by construction (every due arrival was released, so
``next_at > t``), and execution re-enters the loop at exactly the
sampler/fast-forward point the uninterrupted run would have reached --
hence a killed-and-resumed run reproduces the uninterrupted run's
floats identically.  The ``checkpoint`` fault stage
(:mod:`repro.testing.faults`) fires right *after* each durable save,
giving chaos tests a deterministic kill point that always leaves a
valid checkpoint behind.
"""

from __future__ import annotations

import gc
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SweepConfigError
from repro.metrics.online import OnlineFlowStats, WindowedUtilization
from repro.obs.manifest import build_manifest, write_manifest
from repro.sim.checkpoint import (
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.engine import _scheduler_label
from repro.sim.flat_engine import _BLOCK, _IDLE_AT, _SHORT_BURST, _resolve_numba_scan
from repro.sim.result import SimulationStats
from repro.sim.rng import make_rng
from repro.sim.sampling import SystemSampler
from repro.testing.faults import maybe_inject
from repro.workloads.stream import StreamCursor, StreamSpec

PathLike = Union[str, Path]


@dataclass
class StreamResult:
    """Outcome of one streaming run (per-job arrays are gone by design).

    The online counterpart of :class:`~repro.sim.result.ScheduleResult`:
    aggregate objectives plus the engine's usual
    :class:`~repro.sim.result.SimulationStats`, extended with
    streaming-specific accounting (peak live jobs, segments,
    compactions, checkpoints).
    """

    scheduler: str
    m: int
    speed: float
    seed: int  #: effective seed (drawn entropy when the caller passed None)
    n_jobs: int
    max_flow: float  #: exact; bit-identical to the materialized run
    argmax_job: Optional[int]  #: global id of the job achieving max_flow
    mean_flow: float  #: online running mean (not bit-matched to numpy)
    quantiles: Dict[float, float]  #: P^2 sketch estimates per quantile
    makespan: float  #: last completion time
    stats: SimulationStats
    peak_live_jobs: int  #: max generated-but-incomplete jobs at any pull
    segments_generated: int
    compactions: int
    checkpoints_written: int = 0
    resumed_from: Optional[int] = None  #: completed-job count at restore
    utilization: Optional[WindowedUtilization] = None

    def summary(self) -> Dict[str, Any]:
        """Flat dict for reports and telemetry."""
        out: Dict[str, Any] = {
            "scheduler": self.scheduler,
            "m": self.m,
            "speed": self.speed,
            "seed": self.seed,
            "n_jobs": self.n_jobs,
            "max_flow": self.max_flow,
            "argmax_job": self.argmax_job,
            "mean_flow": self.mean_flow,
            "makespan": self.makespan,
            "peak_live_jobs": self.peak_live_jobs,
            "segments_generated": self.segments_generated,
            "compactions": self.compactions,
            "checkpoints_written": self.checkpoints_written,
            "resumed_from": self.resumed_from,
        }
        for q, value in sorted(self.quantiles.items()):
            out[f"p{round(q * 100):g}_flow"] = value
        out.update(self.stats.as_dict())
        if self.utilization is not None:
            out["utilization"] = self.utilization.overall()
        return out


def _config_token(
    stream: StreamSpec,
    m: int,
    speed: float,
    k: int,
    sigma: int,
    quantiles: Sequence[float],
    utilization_window: Optional[int],
) -> str:
    """Everything a checkpoint must agree on to be resumable."""
    return (
        f"stream-run({stream.spec_token()},m={m},speed={speed!r},k={k},"
        f"sigma={sigma},quantiles={tuple(sorted(float(q) for q in quantiles))},"
        f"util={utilization_window!r})"
    )


def _run_stream(
    stream: StreamSpec,
    m: int,
    speed: float = 1.0,
    k: int = 0,
    seed: Optional[int] = None,
    steals_per_tick: int = 1,
    max_ticks: Optional[int] = None,
    quantiles: Sequence[float] = (0.5, 0.9, 0.99),
    utilization_window: Optional[int] = None,
    checkpoint_dir: Optional[PathLike] = None,
    checkpoint_every: int = 262144,
    keep_checkpoints: int = 3,
    resume: bool = False,
    telemetry: Optional[Any] = None,
    _fast_forward: bool = True,
    _compact_min: Optional[int] = None,
) -> StreamResult:
    """Simulate steal-k-first work stealing over a lazy workload stream.

    Parameters mirror :func:`repro.sim.flat_engine._run_flat` where they
    overlap (``m``, ``speed``, ``k``, ``seed``, ``steals_per_tick``,
    ``max_ticks``, ``_fast_forward``); ``seed`` must be a plain int or
    None because checkpoints serialize it.  Streaming-specific knobs:

    quantiles:
        Flow-time quantiles to sketch online with P^2 (estimates; the
        max is tracked exactly regardless).
    utilization_window:
        When set, attach a :class:`~repro.metrics.online.
        WindowedUtilization` sampler with this window size (in ticks)
        and return it on the result.
    checkpoint_dir / checkpoint_every / keep_checkpoints / resume:
        Durable state snapshots every ``checkpoint_every`` completed
        jobs; ``resume=True`` restores the newest complete checkpoint
        in the directory (a fresh run starts when there is none).
    _compact_min:
        Testing knob: retire-compact once this many window jobs are
        complete (default: the stream's ``chunk_jobs``).  Any value
        produces identical results; only memory timing changes.
    """
    if not isinstance(stream, StreamSpec):
        raise TypeError(
            f"_run_stream needs a StreamSpec (got {type(stream).__name__}); "
            f"materialized instances go through engine='flat'"
        )
    if m < 1:
        raise ValueError(f"need at least one worker, got m={m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    if k < 0:
        raise ValueError(f"steal-k-first requires k >= 0, got {k}")
    if steals_per_tick < 1:
        raise ValueError(
            f"steals_per_tick must be >= 1, got {steals_per_tick}"
        )
    if resume and checkpoint_dir is None:
        raise SweepConfigError(
            "resume=True needs checkpoint_dir: there is nowhere to resume "
            "from.  Pass checkpoint_dir=<dir> (with the same parameters as "
            "the interrupted run)."
        )
    if checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1 job, got {checkpoint_every}"
        )
    sigma = int(steals_per_tick)
    n = stream.n_jobs
    label = _scheduler_label(k, "uniform", False, "fifo")
    token = _config_token(
        stream, m, speed, k, sigma, quantiles, utilization_window
    )
    compact_min = (
        int(_compact_min) if _compact_min is not None else stream.chunk_jobs
    )
    if compact_min < 1:
        raise ValueError(f"_compact_min must be >= 1, got {_compact_min}")

    fstats = OnlineFlowStats(quantiles)
    util = (
        WindowedUtilization(m, utilization_window)
        if utilization_window is not None
        else None
    )
    sampler: Optional[SystemSampler] = util  # duck-typed protocol

    # ---- fresh initial state -------------------------------------------
    # StreamCursor validates the seed type and replaces None with drawn
    # entropy; seed_eff keys the victim RNG too, so the whole run --
    # generation and scheduling -- is a function of one integer.
    cursor = StreamCursor(stream, seed)
    seed_eff = cursor.seed
    rng = make_rng(seed_eff)

    if n == 0:
        return StreamResult(
            scheduler=label,
            m=m,
            speed=speed,
            seed=seed_eff,
            n_jobs=0,
            max_flow=0.0,
            argmax_job=None,
            mean_flow=0.0,
            quantiles={float(q): float("nan") for q in quantiles},
            makespan=0.0,
            stats=SimulationStats(
                steal_attempts=0,
                failed_steals=0,
                admissions=0,
                admission_wait_ticks=0,
                ff_skipped_ticks=0,
                max_queue_depth=0,
            ),
            peak_live_jobs=0,
            segments_generated=0,
            compactions=0,
            utilization=util,
        )

    # Window-local tables: plain lists, only ever mutated IN PLACE (slice
    # assignment / del / extend), never rebound -- _complete()'s
    # default-bound references and the hot loop's locals must keep
    # pointing at the same objects across pulls and compactions.
    works: List[int] = []
    eo: List[int] = [0]
    et: List[int] = []
    chain: List[int] = []
    job_of: List[int] = []
    preds: List[int] = []
    jno: List[int] = [0]
    jro: List[int] = [0]
    roots_l: List[int] = []
    unfin: List[int] = []
    arr_ticks: List[int] = []
    arrivals_w: List[float] = []

    cur = [-1] * m  # current global node id, -1 when idle
    fin = [_IDLE_AT] * m  # absolute tick at whose END cur[i] completes
    fails = [0] * m  # consecutive failed steals (admission unlock)
    deques: List[deque] = [deque() for _ in range(m)]
    queue: deque = deque()  # FIFO of waiting window job ids
    ne: set = set()  # workers with a non-empty deque

    if m > 1:
        raw_np = rng.integers(0, m - 1, size=_BLOCK)
        raw = raw_np.tolist()
    else:
        raw_np = None
        raw = None
    p = 0  # next unconsumed draw position in the current block
    pos_of: Dict[int, list] = {}

    t = 0
    next_arr = 0  # window-local index of the next unreleased job
    next_at = 0  # tick of that job's arrival (set after the first pull)
    completed = 0
    n_busy = 0
    nf = _IDLE_AT  # min over busy workers of fin[i]
    job_base = 0  # global id of window job 0
    frontier = 0  # window-local: all jobs < frontier are complete
    total_work_seen = 0
    peak_live = 0
    segments_generated = 0
    compactions = 0
    ckpt_index = 0
    checkpoints_written = 0
    last_ckpt_completed = 0
    resumed_from: Optional[int] = None

    st_att = 0
    st_fail = 0
    st_idle = 0
    st_admwait = 0
    st_ff = 0
    st_maxq = 0
    boundary = False  # force a sampler snapshot at the next loop top

    # ---- restore from the newest checkpoint, if asked -------------------
    if resume and checkpoint_dir is not None:
        found = latest_checkpoint(checkpoint_dir)
        if found is not None:
            arrays, st = load_checkpoint(found, token)
            works[:] = arrays["works"].tolist()
            eo[:] = arrays["eo"].tolist()
            et[:] = arrays["et"].tolist()
            chain[:] = arrays["chain"].tolist()
            job_of[:] = arrays["job_of"].tolist()
            preds[:] = arrays["preds"].tolist()
            jno[:] = arrays["jno"].tolist()
            jro[:] = arrays["jro"].tolist()
            roots_l[:] = arrays["roots"].tolist()
            unfin[:] = arrays["unfin"].tolist()
            arr_ticks[:] = arrays["arr_ticks"].tolist()
            arrivals_w[:] = arrays["arrivals"].tolist()
            cur[:] = arrays["cur"].tolist()
            fin[:] = arrays["fin"].tolist()
            fails[:] = arrays["fails"].tolist()
            queue.clear()
            queue.extend(arrays["queue"].tolist())
            dq_flat = arrays["deque_items"]
            dq_off = arrays["deque_offsets"].tolist()
            for i in range(m):
                deques[i].clear()
                for x in range(dq_off[i], dq_off[i + 1]):
                    deques[i].append((int(dq_flat[x, 0]), int(dq_flat[x, 1])))
            ne.clear()
            ne.update(int(v) for v in arrays["ne"].tolist())
            if m > 1:
                raw_np = np.ascontiguousarray(arrays["raw"])
                raw = raw_np.tolist()
            p = int(st["p"])
            pos_of = {}  # lazily rebuilt; depends only on raw_np and p
            rng.bit_generator.state = st["rng_state"]
            cursor = StreamCursor.restore(stream, st["cursor"])
            fstats.load_state(st["fstats"])
            if util is not None:
                util.load_state(st["util"])
            t = int(st["t"])
            next_arr = int(st["next_arr"])
            next_at = int(st["next_at"])
            completed = int(st["completed"])
            n_busy = int(st["n_busy"])
            nf = int(st["nf"])
            job_base = int(st["job_base"])
            frontier = int(st["frontier"])
            total_work_seen = int(st["total_work_seen"])
            peak_live = int(st["peak_live"])
            segments_generated = int(st["segments"])
            compactions = int(st["compactions"])
            ckpt_index = int(st["index"]) + 1
            checkpoints_written = int(st["checkpoints_written"])
            last_ckpt_completed = completed
            st_att = int(st["st_att"])
            st_fail = int(st["st_fail"])
            st_idle = int(st["st_idle"])
            st_admwait = int(st["st_admwait"])
            st_ff = int(st["st_ff"])
            st_maxq = int(st["st_maxq"])
            boundary = bool(st["boundary"])
            resumed_from = completed
            if telemetry is not None:
                telemetry.emit(
                    "ckpt.restore",
                    path=str(found),
                    completed=completed,
                    tick=t,
                )

    scan_jit = _resolve_numba_scan() if m > 1 else None
    flags = None
    if scan_jit is not None:
        flags = np.zeros(m, dtype=np.bool_)
        for i in ne:
            flags[i] = True

    # Hot-path mirrors of the OnlineFlowStats scalar fields.  A method
    # call per completion costs more than the whole inlined update, so
    # the tick loop maintains these as plain locals and syncs them into
    # ``fstats`` only where its state is actually read: checkpoint
    # saves and the end of the run.  Sketch updates are the one
    # per-completion cost that cannot be deferred; with no quantiles
    # configured the tuple is empty and the loop is free.
    fs_max = fstats.max_flow
    fs_amax_job = fstats.argmax_job
    fs_amax_c = fstats.argmax_completion
    fs_sum = fstats.flow_sum
    fs_last = fstats.last_completion
    sk_updates = tuple(s.update for s in fstats.sketches.values())

    # Helper closures: every name the tick loop reads is either passed
    # explicitly or bound as a default argument here.  A free reference
    # from any nested function would turn that name into a cell variable
    # of _run_stream, downgrading every hot-loop access from LOAD_FAST
    # to LOAD_DEREF -- a measured ~20% throughput loss.  Only the names
    # the flat kernel also pays for (completed/n_busy/nf/idles_dirty via
    # _complete, plus job_base) stay cells.
    user_max_ticks = max_ticks

    def _bound(
        total_work_seen: int,
        cursor=cursor,
        speed=speed,
        k=k,
        m=m,
        user_max_ticks=user_max_ticks,
    ) -> int:
        """The reference feasibility bound, over the generated prefix.

        Grows as segments arrive; once the stream is exhausted it equals
        the bound the flat kernel computes for the full instance.
        """
        if user_max_ticks is not None:
            return user_max_ticks
        last_tick = int(np.ceil(cursor.last_arrival * speed - 1e-9))
        return (
            int(
                total_work_seen
                + (k + 2) * cursor.emitted
                + last_tick
                + 64 * m
                + 64
            )
            * 4
        )

    def _append_segment(
        seg,
        works=works,
        eo=eo,
        et=et,
        chain=chain,
        job_of=job_of,
        preds=preds,
        jno=jno,
        jro=jro,
        roots_l=roots_l,
        unfin=unfin,
        arr_ticks=arr_ticks,
        arrivals_w=arrivals_w,
        speed=speed,
    ) -> int:
        """Extend the window tables with one segment; returns its work.

        The per-segment derived tables (in-degrees, chain links, roots)
        are the vectorized _KernelTables computations; edges never cross
        jobs, so per-segment derivation equals whole-instance derivation
        restricted to the segment.
        """
        eo_np = seg.edge_offsets
        et_np = seg.edge_targets
        jno_np = seg.job_node_offsets
        n_nodes = seg.n_nodes
        indeg = np.bincount(et_np, minlength=n_nodes)
        outdeg = np.diff(eo_np)
        chain_np = np.full(n_nodes, -1, dtype=np.int64)
        cand = np.flatnonzero(outdeg == 1)
        if cand.size:
            tgt = et_np[eo_np[cand]]
            ok = indeg[tgt] == 1
            chain_np[cand[ok]] = tgt[ok]
        roots_np = np.flatnonzero(indeg == 0)
        job_sizes = np.diff(jno_np)

        node_base = len(works)
        jb_local = len(unfin)
        edge_base = len(et)
        root_base = len(roots_l)
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()  # same rationale as flat_engine._kernel_tables
        try:
            works.extend(seg.node_works.tolist())
            eo.extend((eo_np[1:] + edge_base).tolist())
            et.extend((et_np + node_base).tolist())
            chain.extend(
                np.where(chain_np >= 0, chain_np + node_base, -1).tolist()
            )
            job_of.extend(
                (
                    np.repeat(np.arange(seg.n_jobs, dtype=np.int64), job_sizes)
                    + jb_local
                ).tolist()
            )
            preds.extend(indeg.tolist())
            jno.extend((jno_np[1:] + node_base).tolist())
            jro.extend(
                (np.searchsorted(roots_np, jno_np[1:]) + root_base).tolist()
            )
            roots_l.extend((roots_np + node_base).tolist())
            unfin.extend(job_sizes.tolist())
            arr_ticks.extend(
                np.ceil(seg.arrivals * speed - 1e-9).astype(np.int64).tolist()
            )
            arrivals_w.extend(seg.arrivals.tolist())
        finally:
            if was_enabled:
                gc.enable()
        return int(seg.node_works.sum())

    def _advance_frontier(frontier: int, unfin=unfin) -> int:
        wn = len(unfin)
        while frontier < wn and unfin[frontier] == 0:
            frontier += 1
        return frontier

    def _compact(
        frontier: int,
        next_arr: int,
        job_base: int,
        works=works,
        eo=eo,
        et=et,
        chain=chain,
        job_of=job_of,
        preds=preds,
        jno=jno,
        jro=jro,
        roots_l=roots_l,
        unfin=unfin,
        arr_ticks=arr_ticks,
        arrivals_w=arrivals_w,
        cur=cur,
        deques=deques,
        queue=queue,
        m=m,
    ) -> Tuple[int, int, int]:
        """Drop the retired prefix and rewrite all live ids, in place.

        Returns the shifted ``(frontier, next_arr, job_base)``.  Only
        window-local *indices* change; every absolute quantity (ticks,
        fin, nf, the RNG stream) is untouched, so compaction is
        unobservable in the results (asserted via the ``_compact_min``
        knob).  Retired jobs are fully complete: no worker, deque entry,
        or queued job can reference the dropped prefix.
        """
        nonlocal compactions
        fr = frontier
        if fr == 0:
            return frontier, next_arr, job_base
        node_cut = jno[fr]
        e_cut = eo[node_cut]
        root_cut = jro[fr]
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            works[:] = works[node_cut:]
            eo[:] = [x - e_cut for x in eo[node_cut:]]
            et[:] = [x - node_cut for x in et[e_cut:]]
            chain[:] = [
                x - node_cut if x >= 0 else -1 for x in chain[node_cut:]
            ]
            job_of[:] = [x - fr for x in job_of[node_cut:]]
            preds[:] = preds[node_cut:]
            roots_l[:] = [x - node_cut for x in roots_l[root_cut:]]
            jro[:] = [x - root_cut for x in jro[fr:]]
            jno[:] = [x - node_cut for x in jno[fr:]]
            del unfin[:fr]
            del arr_ticks[:fr]
            del arrivals_w[:fr]
        finally:
            if was_enabled:
                gc.enable()
        for i in range(m):
            if cur[i] >= 0:
                cur[i] -= node_cut
            dq = deques[i]
            if dq:
                items = [(g - node_cut, rdy) for g, rdy in dq]
                dq.clear()
                dq.extend(items)
        if queue:
            items2 = [j - fr for j in queue]
            queue.clear()
            queue.extend(items2)
        compactions += 1
        return 0, next_arr - fr, job_base + fr

    def _pull_segment(
        completed: int,
        frontier: int,
        next_arr: int,
        job_base: int,
        cursor=cursor,
        unfin=unfin,
        compact_min=compact_min,
    ) -> Tuple[int, int, int]:
        """Generate the next chunk; retire-compact first when worthwhile.

        Returns the (possibly shifted) ``(frontier, next_arr, job_base)``.
        """
        nonlocal peak_live, segments_generated, total_work_seen
        frontier = _advance_frontier(frontier)
        if frontier >= compact_min:
            retired = frontier
            before = len(unfin)
            frontier, next_arr, job_base = _compact(
                frontier, next_arr, job_base
            )
            if telemetry is not None:
                telemetry.emit(
                    "stream.compact",
                    retired=retired,
                    window_before=before,
                    window_after=len(unfin),
                    completed=completed,
                )
        seg = cursor.next_segment()
        assert seg is not None  # caller checks cursor.exhausted first
        total_work_seen += _append_segment(seg)
        segments_generated += 1
        live = cursor.emitted - completed
        if live > peak_live:
            peak_live = live
        if telemetry is not None:
            telemetry.emit(
                "stream.segment",
                index=segments_generated - 1,
                jobs=seg.n_jobs,
                window_jobs=len(unfin),
                live=live,
            )
        return frontier, next_arr, job_base

    def _save_ckpt(
        t: int,
        next_arr: int,
        next_at: int,
        p: int,
        job_base: int,
        frontier: int,
        boundary: bool,
        raw_np,
        st_att: int,
        st_fail: int,
        st_idle: int,
        st_admwait: int,
        st_ff: int,
        st_maxq: int,
        works=works,
        eo=eo,
        et=et,
        chain=chain,
        job_of=job_of,
        preds=preds,
        jno=jno,
        jro=jro,
        roots_l=roots_l,
        unfin=unfin,
        arr_ticks=arr_ticks,
        arrivals_w=arrivals_w,
        cur=cur,
        fin=fin,
        fails=fails,
        deques=deques,
        queue=queue,
        ne=ne,
        rng=rng,
        cursor=cursor,
        fstats=fstats,
        util=util,
        m=m,
        k=k,
        sigma=sigma,
        speed=speed,
    ) -> None:
        """Durably snapshot every mutable value the loop can observe.

        The loop-state scalars arrive as arguments (they are rebound
        every tick); the window lists and accumulators are default-bound
        (mutated in place, never rebound).
        """
        nonlocal ckpt_index, checkpoints_written
        dq_off = [0]
        dq_items: List[List[int]] = []
        for i in range(m):
            for g, rdy in deques[i]:
                dq_items.append([g, rdy])
            dq_off.append(len(dq_items))
        arrays = {
            "works": np.asarray(works, dtype=np.int64),
            "eo": np.asarray(eo, dtype=np.int64),
            "et": np.asarray(et, dtype=np.int64),
            "chain": np.asarray(chain, dtype=np.int64),
            "job_of": np.asarray(job_of, dtype=np.int64),
            "preds": np.asarray(preds, dtype=np.int64),
            "jno": np.asarray(jno, dtype=np.int64),
            "jro": np.asarray(jro, dtype=np.int64),
            "roots": np.asarray(roots_l, dtype=np.int64),
            "unfin": np.asarray(unfin, dtype=np.int64),
            "arr_ticks": np.asarray(arr_ticks, dtype=np.int64),
            "arrivals": np.asarray(arrivals_w, dtype=np.float64),
            "cur": np.asarray(cur, dtype=np.int64),
            "fin": np.asarray(fin, dtype=np.int64),
            "fails": np.asarray(fails, dtype=np.int64),
            "queue": np.asarray(list(queue), dtype=np.int64),
            "deque_items": np.asarray(dq_items, dtype=np.int64).reshape(-1, 2),
            "deque_offsets": np.asarray(dq_off, dtype=np.int64),
            "ne": np.asarray(sorted(ne), dtype=np.int64),
            "raw": (
                raw_np if raw_np is not None else np.zeros(0, dtype=np.int64)
            ),
        }
        state = {
            "t": t,
            "next_arr": next_arr,
            "next_at": next_at,
            "completed": completed,
            "n_busy": n_busy,
            "nf": nf,
            "p": p,
            "job_base": job_base,
            "frontier": frontier,
            "total_work_seen": total_work_seen,
            "peak_live": peak_live,
            "segments": segments_generated,
            "compactions": compactions,
            "checkpoints_written": checkpoints_written + 1,
            "st_att": st_att,
            "st_fail": st_fail,
            "st_idle": st_idle,
            "st_admwait": st_admwait,
            "st_ff": st_ff,
            "st_maxq": st_maxq,
            "boundary": boundary,
            "rng_state": rng.bit_generator.state,
            "cursor": cursor.state_dict(),
            "fstats": fstats.state_dict(),
            "util": util.state_dict() if util is not None else None,
            "seed": seed_eff,
        }
        path = save_checkpoint(
            checkpoint_dir,
            ckpt_index,
            arrays,
            state,
            token,
            keep=keep_checkpoints,
        )
        manifest = build_manifest(
            "stream-checkpoint",
            config={
                "stream": stream.spec_token(),
                "m": m,
                "speed": speed,
                "k": k,
                "steals_per_tick": sigma,
                "quantiles": [float(q) for q in quantiles],
                "utilization_window": utilization_window,
            },
            seed=seed_eff,
            extra={
                "checkpoint": str(path),
                "completed": completed,
                "tick": t,
                "ckpt_index": ckpt_index,
            },
        )
        write_manifest(manifest, Path(checkpoint_dir) / "manifests")
        if telemetry is not None:
            telemetry.emit(
                "ckpt.save",
                path=str(path),
                completed=completed,
                tick=t,
                index=ckpt_index,
            )
        saved_index = ckpt_index
        ckpt_index += 1
        checkpoints_written += 1
        # Deterministic chaos hook: fires AFTER the durable write, so a
        # kill here always leaves a valid checkpoint to resume from.
        maybe_inject("checkpoint", index=saved_index)

    if telemetry is not None:
        telemetry.emit(
            "stream.start",
            n_jobs=n,
            chunk_jobs=stream.chunk_jobs,
            m=m,
            k=k,
            steals_per_tick=sigma,
            speed=speed,
            seed=seed_eff,
            resumed_from=resumed_from,
        )

    if resumed_from is None:
        frontier, next_arr, job_base = _pull_segment(
            completed, frontier, next_arr, job_base
        )
        next_at = arr_ticks[0]
        t = next_at  # nothing can happen before the first arrival

    max_ticks_eff = _bound(total_work_seen)
    ckpt_enabled = checkpoint_dir is not None
    ff = _fast_forward

    idles: List[int] = []
    idles_dirty = True

    def _complete(
        i: int,
        end_tick: int,
        # Free variables rebound as defaults (LOAD_FAST), exactly like
        # the flat kernel; valid here because the window lists are only
        # ever mutated in place, never rebound.
        works=works,
        chain=chain,
        job_of=job_of,
        eo=eo,
        et=et,
        preds=preds,
        unfin=unfin,
        cur=cur,
        fin=fin,
        deques=deques,
        ne=ne,
        arrivals_w=arrivals_w,
        speed=speed,
        flags=flags,
        sk_updates=sk_updates,
    ) -> None:
        """flat_engine._complete over the window tables.

        Identical cascade except job completion feeds the online
        accumulators instead of a completions array.  Phase A inlines a
        copy of this body; keep the two in sync.
        """
        nonlocal completed, n_busy, nf, idles_dirty
        nonlocal fs_max, fs_amax_job, fs_amax_c, fs_sum, fs_last
        g = cur[i]
        j = job_of[g]
        u = unfin[j] - 1
        unfin[j] = u
        cn = chain[g]
        if cn >= 0:
            cur[i] = cn
            f = end_tick + works[cn]
            fin[i] = f
            if f < nf:
                nf = f
            return
        lo = eo[g]
        hi = eo[g + 1]
        if u == 0:
            c = (end_tick + 1) / speed
            flow = c - arrivals_w[j]
            if flow < 0.0:
                flow = 0.0
            fs_sum += flow
            if flow > fs_max:
                fs_max = flow
                fs_amax_job = job_base + j
                fs_amax_c = c
            if c > fs_last:
                fs_last = c
            if sk_updates:
                for _upd in sk_updates:
                    _upd(flow)
            completed += 1
        if lo != hi:
            if hi - lo == 1:
                s2 = et[lo]
                pc = preds[s2] - 1
                preds[s2] = pc
                if pc == 0:
                    cur[i] = s2
                    f = end_tick + works[s2]
                    fin[i] = f
                    if f < nf:
                        nf = f
                    return
            else:
                first = -1
                extras = None
                for s2 in et[lo:hi]:
                    pc = preds[s2] - 1
                    preds[s2] = pc
                    if pc == 0:
                        if first < 0:
                            first = s2
                        elif extras is None:
                            extras = [s2]
                        else:
                            extras.append(s2)
                if first >= 0:
                    cur[i] = first
                    f = end_tick + works[first]
                    fin[i] = f
                    if f < nf:
                        nf = f
                    if extras is not None:
                        dq = deques[i]
                        if not dq:
                            ne.add(i)
                            if flags is not None:
                                flags[i] = True
                        nt = end_tick + 1
                        for s2 in extras:
                            dq.append((s2, nt))
                    return
        dq = deques[i]
        if dq:
            g2 = dq.pop()[0]
            if not dq:
                ne.discard(i)
                if flags is not None:
                    flags[i] = False
            cur[i] = g2
            f = end_tick + works[g2]
            fin[i] = f
            if f < nf:
                nf = f
        else:
            cur[i] = -1
            fin[i] = _IDLE_AT
            n_busy -= 1
            idles_dirty = True

    while completed < n:
        # ---- release arrivals due at or before the current tick ---------
        # Identical to the flat kernel, except draining the window may
        # require pulling the next segment to learn the next arrival
        # tick (one-chunk generation lookahead, the stream's only one).
        if next_at <= t:
            while True:
                wn = len(unfin)
                while next_arr < wn and arr_ticks[next_arr] <= t:
                    queue.append(next_arr)
                    next_arr += 1
                if next_arr < wn:
                    next_at = arr_ticks[next_arr]
                    break
                if cursor.exhausted:
                    next_at = _IDLE_AT  # no further arrivals, ever
                    break
                frontier, next_arr, job_base = _pull_segment(
                    completed, frontier, next_arr, job_base
                )
                max_ticks_eff = _bound(total_work_seen)
            ql = len(queue)
            if ql > st_maxq:
                st_maxq = ql
            if (
                ckpt_enabled
                and completed - last_ckpt_completed >= checkpoint_every
            ):
                # Post-release is a clean cut: every arrival <= t is
                # released, so on resume the release block is skipped
                # (next_at > t) and the loop continues exactly here.
                frontier = _advance_frontier(frontier)
                frontier, next_arr, job_base = _compact(
                    frontier, next_arr, job_base
                )
                # Flush the hot-path mirrors so the serialized fstats
                # state is current (count tracks completed exactly).
                fstats.max_flow = fs_max
                fstats.argmax_job = fs_amax_job
                fstats.argmax_completion = fs_amax_c
                fstats.flow_sum = fs_sum
                fstats.last_completion = fs_last
                fstats.count = completed
                _save_ckpt(
                    t, next_arr, next_at, p, job_base, frontier,
                    boundary, raw_np, st_att, st_fail, st_idle,
                    st_admwait, st_ff, st_maxq,
                )
                last_ckpt_completed = completed

        if t >= max_ticks_eff:
            raise RuntimeError(
                f"work-stealing run exceeded max_ticks={max_ticks_eff} "
                f"({completed}/{n} jobs complete) -- stream may be overloaded"
            )

        if sampler is not None:
            if boundary:
                sampler.record_boundary(t, n_busy, len(queue), len(ne), completed)
                boundary = False
            else:
                sampler.maybe_record(t, n_busy, len(queue), len(ne), completed)

        if ff:
            # ---- fast-forward: whole system empty -----------------------
            if n_busy == 0 and not queue:
                gap = next_at - t
                for i in range(m):
                    f = fails[i] + gap * sigma
                    fails[i] = f if f < k else k
                st_idle += gap * m
                st_ff += gap
                if sampler is not None:
                    sampler.record_boundary(t, 0, 0, len(ne), completed)
                    boundary = True
                t += gap
                continue

            # ---- fast-forward: every worker busy ------------------------
            if n_busy == m:
                blind = nf - t
                if blind > 0:
                    st_ff += blind
                    if sampler is not None:
                        sampler.record_boundary(
                            t, n_busy, len(queue), len(ne), completed
                        )
                        boundary = True
                    t += blind
                    continue

            # ---- fast-forward: nothing stealable, nothing admissible ----
            elif not ne and n_busy > 0 and not queue:
                delta = nf - t + 1
                if next_at < _IDLE_AT and next_at - t < delta:
                    delta = next_at - t
                blind = delta - 1
                if blind >= 1:
                    n_idle = m - n_busy
                    for i in range(m):
                        if cur[i] < 0:
                            f = fails[i] + blind * sigma
                            fails[i] = f if f < k else k
                    st_att += blind * n_idle * sigma
                    st_fail += blind * n_idle * sigma
                    st_ff += blind
                    if sampler is not None:
                        sampler.record_boundary(t, n_busy, 0, 0, completed)
                        boundary = True
                    t += blind
                    continue

        # ---- general tick -------------------------------------------------
        if idles_dirty:
            idles = []
            for i in range(m):
                if cur[i] < 0:
                    idles.append(i)
            idles_dirty = False

        # Phase A: inlined copy of _complete() minus the nf upkeep (nf is
        # recomputed wholesale); keep in sync with flat_engine phase A.
        if nf == t:
            nt = t + 1
            nfi = _IDLE_AT
            for i in range(m):
                f = fin[i]
                if f == t:
                    g = cur[i]
                    j = job_of[g]
                    u = unfin[j] - 1
                    unfin[j] = u
                    cn = chain[g]
                    if cn >= 0:
                        cur[i] = cn
                        f = t + works[cn]
                        fin[i] = f
                        if f < nfi:
                            nfi = f
                        continue
                    lo = eo[g]
                    hi = eo[g + 1]
                    if u == 0:
                        c = nt / speed
                        flow = c - arrivals_w[j]
                        if flow < 0.0:
                            flow = 0.0
                        fs_sum += flow
                        if flow > fs_max:
                            fs_max = flow
                            fs_amax_job = job_base + j
                            fs_amax_c = c
                        if c > fs_last:
                            fs_last = c
                        if sk_updates:
                            for _upd in sk_updates:
                                _upd(flow)
                        completed += 1
                    if lo != hi:
                        if hi - lo == 1:
                            s2 = et[lo]
                            pc = preds[s2] - 1
                            preds[s2] = pc
                            if pc == 0:
                                cur[i] = s2
                                f = t + works[s2]
                                fin[i] = f
                                if f < nfi:
                                    nfi = f
                                continue
                        else:
                            first = -1
                            extras = None
                            for s2 in et[lo:hi]:
                                pc = preds[s2] - 1
                                preds[s2] = pc
                                if pc == 0:
                                    if first < 0:
                                        first = s2
                                    elif extras is None:
                                        extras = [s2]
                                    else:
                                        extras.append(s2)
                            if first >= 0:
                                cur[i] = first
                                f = t + works[first]
                                fin[i] = f
                                if f < nfi:
                                    nfi = f
                                if extras is not None:
                                    dq = deques[i]
                                    if not dq:
                                        ne.add(i)
                                        if flags is not None:
                                            flags[i] = True
                                    for s2 in extras:
                                        dq.append((s2, nt))
                                continue
                    dq = deques[i]
                    if dq:
                        g2 = dq.pop()[0]
                        if not dq:
                            ne.discard(i)
                            if flags is not None:
                                flags[i] = False
                        cur[i] = g2
                        f = t + works[g2]
                        fin[i] = f
                    else:
                        cur[i] = -1
                        f = _IDLE_AT
                        fin[i] = f
                        n_busy -= 1
                        idles_dirty = True
                if f < nfi:
                    nfi = f
            nf = nfi

        # Phase B: keep in sync with flat_engine phase B (verbatim except
        # jro/roots_l are the window tables).
        for i in idles:
            budget = sigma
            while budget > 0:
                fi = fails[i]
                if fi >= k and queue:
                    jb = queue.popleft()
                    ro = jro[jb]
                    rhi = jro[jb + 1]
                    r0 = roots_l[ro]
                    cur[i] = r0
                    fails[i] = 0
                    n_busy += 1
                    idles_dirty = True
                    st_admwait += t - arr_ticks[jb]
                    if rhi - ro > 1:
                        dq = deques[i]
                        if not dq:
                            ne.add(i)
                            if flags is not None:
                                flags[i] = True
                        for x in range(ro + 1, rhi):
                            dq.append((roots_l[x], t))
                    if sigma > 1:
                        if works[r0] == 1:
                            _complete(i, t)
                        else:
                            f = t + works[r0] - 1
                            fin[i] = f
                            if f < nf:
                                nf = f
                    else:
                        f = t + works[r0]
                        fin[i] = f
                        if f < nf:
                            nf = f
                    break
                if not ne:
                    if queue and k - fi <= budget:
                        burned = k - fi
                    else:
                        burned = budget
                    f2 = fi + burned
                    fails[i] = f2 if f2 < k else k
                    st_att += burned
                    st_fail += burned
                    budget -= burned
                    if budget > 0:
                        continue
                    break
                allowed = budget
                if queue:
                    d = k - fi
                    if d < allowed:
                        allowed = d
                got = -1
                while True:
                    if p == _BLOCK:
                        raw_np = rng.integers(0, m - 1, size=_BLOCK)
                        raw = raw_np.tolist()
                        p = 0
                        pos_of = {}
                    stop = p + allowed
                    if stop > _BLOCK:
                        stop = _BLOCK
                    if scan_jit is not None:
                        got = int(scan_jit(raw_np, flags, p, stop, i))
                    elif allowed < _SHORT_BURST or 2 * len(ne) >= m - 1:
                        got = -1
                        for jdx in range(p, stop):
                            v = raw[jdx]
                            if v >= i:
                                v += 1
                            if deques[v]:
                                got = jdx
                                break
                    else:
                        best = stop
                        for s in ne:
                            if s == i:
                                continue
                            c2 = s if s < i else s - 1
                            entry = pos_of.get(c2)
                            if entry is None:
                                lst = np.flatnonzero(raw_np == c2).tolist()
                                lst.append(_BLOCK)
                                entry = [lst, 0]
                                pos_of[c2] = entry
                            lst = entry[0]
                            q = entry[1]
                            pos = lst[q]
                            while pos < p:
                                q += 1
                                pos = lst[q]
                            entry[1] = q
                            if pos < best:
                                best = pos
                        got = best if best < stop else -1
                    if got >= 0:
                        n_failed = got - p
                        fails[i] += n_failed
                        st_att += n_failed + 1
                        st_fail += n_failed
                        budget -= n_failed + 1
                        p = got + 1
                        break
                    n_failed = stop - p
                    fails[i] += n_failed
                    st_att += n_failed
                    st_fail += n_failed
                    budget -= n_failed
                    allowed -= n_failed
                    p = stop
                    if allowed == 0:
                        break
                if got < 0:
                    continue
                v = raw[got]
                victim = v + 1 if v >= i else v
                vdq = deques[victim]
                g2, rdy = vdq.popleft()
                if not vdq:
                    ne.discard(victim)
                    if flags is not None:
                        flags[victim] = False
                cur[i] = g2
                fails[i] = 0
                n_busy += 1
                idles_dirty = True
                if sigma > 1 and rdy <= t:
                    if works[g2] == 1:
                        _complete(i, t)
                    else:
                        f = t + works[g2] - 1
                        fin[i] = f
                        if f < nf:
                            nf = f
                else:
                    f = t + works[g2]
                    fin[i] = f
                    if f < nf:
                        nf = f
                break

        t += 1

    fstats.max_flow = fs_max
    fstats.argmax_job = fs_amax_job
    fstats.argmax_completion = fs_amax_c
    fstats.flow_sum = fs_sum
    fstats.last_completion = fs_last
    fstats.count = completed

    stats = SimulationStats()
    stats.busy_steps = total_work_seen
    stats.steal_attempts = st_att
    stats.failed_steals = st_fail
    stats.admissions = n
    stats.idle_steps = st_idle
    stats.elapsed_ticks = t
    stats.admission_wait_ticks = st_admwait
    stats.ff_skipped_ticks = st_ff
    stats.max_queue_depth = st_maxq

    result = StreamResult(
        scheduler=label,
        m=m,
        speed=speed,
        seed=seed_eff,
        n_jobs=n,
        max_flow=fstats.max_flow,
        argmax_job=fstats.argmax_job,
        mean_flow=fstats.mean_flow,
        quantiles=fstats.quantile_estimates(),
        makespan=fstats.last_completion,
        stats=stats,
        peak_live_jobs=peak_live,
        segments_generated=segments_generated,
        compactions=compactions,
        checkpoints_written=checkpoints_written,
        resumed_from=resumed_from,
        utilization=util,
    )
    if telemetry is not None:
        telemetry.emit(
            "stream.done",
            max_flow=result.max_flow,
            completed=completed,
            elapsed_ticks=t,
            peak_live_jobs=peak_live,
            segments=segments_generated,
            compactions=compactions,
            checkpoints=checkpoints_written,
        )
    return result
