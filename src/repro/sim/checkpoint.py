"""Durable checkpoints of live streaming-engine state.

A checkpoint is one ``.npz`` file holding every mutable array of a
:func:`repro.sim.stream_engine._run_stream` run (window CSR lists,
worker state, the victim-draw block, queues) plus a single JSON blob
(``__state__``) with the scalar state: tick, counters, the victim RNG's
``bit_generator.state``, the stream cursor, and the online-metric
accumulators.  Restoring it reproduces the engine's state *exactly* --
the resumed run emits the same floats as an uninterrupted one
(``tests/sim/test_checkpoint.py``).

Integrity and atomicity follow the PR 2-4 cache substrate:

* writes go to a ``.tmp`` sibling and ``os.replace`` into place, so a
  kill mid-write can never leave a torn file under the final name;
* the file's sha256 is stored in a ``<name>.sha256`` sidecar written
  *after* the data file; a checkpoint without a matching sidecar is
  treated as incomplete and skipped by :func:`latest_checkpoint`, and a
  hash mismatch raises :class:`repro.errors.CacheCorruptError`;
* the saving run's configuration (engine parameters + stream identity)
  is hashed into the payload, and :func:`load_checkpoint` refuses a
  checkpoint whose configuration differs from the resuming run's
  (:class:`repro.errors.SweepConfigError`) -- resuming a 16-worker run
  with ``m=8`` must fail loudly, not corrupt silently.

File layout under a checkpoint directory::

    ckpt-00000003.npz         # arrays + __state__ JSON
    ckpt-00000003.npz.sha256  # integrity sidecar (written last)
    manifests/manifest-*.json # repro.obs manifest of the latest save

Only the trailing ``keep`` checkpoints are retained (older pairs are
deleted after a successful save), so checkpoint disk usage is bounded
like the engine's memory.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import CacheCorruptError, SweepConfigError

PathLike = Union[str, Path]

#: Version stamp embedded in every checkpoint; bump on layout changes.
CHECKPOINT_SCHEMA = "repro-stream-ckpt/1"

_STATE_KEY = "__state__"


def config_digest(config_token: str) -> str:
    """Stable digest of a run configuration token."""
    return hashlib.sha256(config_token.encode()).hexdigest()


def _file_sha256(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            h.update(block)
    return h.hexdigest()


def checkpoint_path(directory: PathLike, index: int) -> Path:
    """Canonical file name of checkpoint ``index`` under ``directory``."""
    return Path(directory) / f"ckpt-{index:08d}.npz"


def save_checkpoint(
    directory: PathLike,
    index: int,
    arrays: Dict[str, np.ndarray],
    state: Dict[str, Any],
    config_token: str,
    keep: int = 3,
) -> Path:
    """Durably write checkpoint ``index``; returns the final path.

    ``arrays`` must not contain the reserved ``__state__`` key;
    ``state`` must be JSON-serializable.  After a successful write,
    checkpoints older than the trailing ``keep`` are deleted.
    """
    if _STATE_KEY in arrays:
        raise ValueError(f"array name {_STATE_KEY!r} is reserved")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    payload["schema"] = CHECKPOINT_SCHEMA
    payload["config_sha"] = config_digest(config_token)
    payload["index"] = int(index)
    blob = np.frombuffer(
        json.dumps(payload, separators=(",", ":")).encode(), dtype=np.uint8
    )

    path = checkpoint_path(directory, index)
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays, **{_STATE_KEY: blob})
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed write leaves no debris
            tmp.unlink()
    digest = _file_sha256(path)
    sidecar = path.with_name(path.name + ".sha256")
    side_tmp = sidecar.with_suffix(f".{os.getpid()}.tmp")
    side_tmp.write_text(digest + "\n")
    os.replace(side_tmp, sidecar)

    if keep > 0:
        for old in list_checkpoints(directory)[:-keep]:
            old.unlink(missing_ok=True)
            old.with_name(old.name + ".sha256").unlink(missing_ok=True)
    return path


def list_checkpoints(directory: PathLike) -> List[Path]:
    """Complete (sidecar-backed) checkpoints, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        p
        for p in directory.glob("ckpt-*.npz")
        if p.with_name(p.name + ".sha256").is_file()
    )


def latest_checkpoint(directory: PathLike) -> Optional[Path]:
    """Newest complete checkpoint under ``directory``, or ``None``."""
    found = list_checkpoints(directory)
    return found[-1] if found else None


def load_checkpoint(
    path: PathLike, config_token: str
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Read and verify one checkpoint; returns ``(arrays, state)``.

    Raises :class:`CacheCorruptError` when the file does not match its
    integrity sidecar or carries a foreign schema, and
    :class:`SweepConfigError` when it was saved by a run with a
    different configuration than ``config_token``.
    """
    path = Path(path)
    sidecar = path.with_name(path.name + ".sha256")
    if not sidecar.is_file():
        raise CacheCorruptError(
            f"{path}: missing integrity sidecar {sidecar.name} "
            f"(incomplete checkpoint write?)"
        )
    expected = sidecar.read_text().strip()
    actual = _file_sha256(path)
    if actual != expected:
        raise CacheCorruptError(
            f"{path}: content hash {actual[:16]}... does not match "
            f"sidecar {expected[:16]}..."
        )
    arrays: Dict[str, np.ndarray] = {}
    with np.load(path, allow_pickle=False) as archive:
        for name in archive.files:
            arrays[name] = archive[name]
    blob = arrays.pop(_STATE_KEY, None)
    if blob is None:
        raise CacheCorruptError(f"{path}: no {_STATE_KEY} payload")
    state = json.loads(blob.tobytes().decode())
    if state.get("schema") != CHECKPOINT_SCHEMA:
        raise CacheCorruptError(
            f"{path}: schema {state.get('schema')!r} is not "
            f"{CHECKPOINT_SCHEMA!r}"
        )
    if state.get("config_sha") != config_digest(config_token):
        raise SweepConfigError(
            f"{path} was saved by a run with a different configuration "
            f"(stream spec, m, k, steals_per_tick, speed, quantiles or "
            f"utilization window changed); refusing to resume.  Point "
            f"checkpoint_dir at a fresh directory or restore the "
            f"original parameters."
        )
    return arrays, state
