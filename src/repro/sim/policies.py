"""Victim-selection policies for the work-stealing engine.

The paper analyzes the classic policy -- a uniformly random victim per
attempt -- but the choice is a live design knob in real runtimes, so the
engine exposes it for ablations:

* :class:`UniformVictim` -- the analyzed policy (Blumofe-Leiserson):
  each attempt picks one of the other ``m - 1`` workers uniformly.
* :class:`RoundRobinVictim` -- each thief sweeps the other workers in a
  fixed cyclic order.  Deterministic; finds stealable work within
  ``m - 1`` attempts when it exists, but loses the contention-spreading
  property of randomization.
* :class:`MaxDequeVictim` -- an *oracle* policy that inspects every
  deque and targets the longest.  Physically unimplementable without
  global synchronization; included as the upper bound on what victim
  selection could buy.

All policies return the index of a victim to probe; the engine performs
the actual (possibly failing) steal.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np


class VictimPolicy(ABC):
    """Chooses which worker a thief probes on one steal attempt."""

    #: Label used in results and ablation tables.
    name: str = "abstract"

    @abstractmethod
    def choose(self, thief: int, deques: Sequence) -> int:
        """Index of the worker to probe (never ``thief`` itself).

        ``deques`` is the live per-worker sequence of ready-node deques
        (see :class:`~repro.sim.worker.WorkerArrays`); policies may
        inspect lengths (the oracle does) but must not mutate anything.
        Only called when ``m > 1``.
        """


class UniformVictim(VictimPolicy):
    """Uniformly random victim per attempt -- the paper's policy.

    Draws are buffered in blocks: single numpy scalar draws dominate
    steal-heavy runs otherwise (this is the engine's measured hot spot).
    """

    name = "uniform"

    def __init__(self, rng: np.random.Generator, m: int, block: int = 4096):
        self._rng = rng
        self._m = m
        self._buf = rng.integers(0, m - 1, size=block) if m > 1 else None
        self._pos = 0

    def choose(self, thief: int, deques: Sequence) -> int:
        buf = self._buf
        assert buf is not None, "UniformVictim.choose requires m > 1"
        if self._pos >= len(buf):
            self._buf = buf = self._rng.integers(0, self._m - 1, size=len(buf))
            self._pos = 0
        v = int(buf[self._pos])
        self._pos += 1
        return v if v < thief else v + 1


class RoundRobinVictim(VictimPolicy):
    """Each thief cycles deterministically through the other workers."""

    name = "round-robin"

    def __init__(self, m: int):
        self._m = m
        self._next: List[int] = [(i + 1) % m for i in range(m)]

    def choose(self, thief: int, deques: Sequence) -> int:
        v = self._next[thief]
        if v == thief:  # skip self
            v = (v + 1) % self._m
        self._next[thief] = (v + 1) % self._m
        return v


class MaxDequeVictim(VictimPolicy):
    """Oracle: probe the worker with the longest deque (ties: lowest id).

    Requires global knowledge no distributed runtime has; used only to
    upper-bound the value of smarter victim selection in ablations.
    """

    name = "max-deque"

    def choose(self, thief: int, deques: Sequence) -> int:
        best, best_len = -1, -1
        for i, d in enumerate(deques):
            if i == thief:
                continue
            length = len(d)
            if length > best_len:
                best, best_len = i, length
        return best


def make_victim_policy(
    name: str, rng: np.random.Generator, m: int
) -> VictimPolicy:
    """Construct a victim policy by name (engine entry point)."""
    if name == "uniform":
        return UniformVictim(rng, m)
    if name == "round-robin":
        return RoundRobinVictim(m)
    if name == "max-deque":
        return MaxDequeVictim()
    raise ValueError(
        f"unknown victim policy {name!r}; expected 'uniform', "
        "'round-robin' or 'max-deque'"
    )
