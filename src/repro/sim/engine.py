"""Discrete-time engine for the steal-k-first work-stealing schedulers.

The paper's model (Sections 4--5): ``m`` workers of speed ``s``; one *time
step* (tick) is the time an ``s``-speed worker needs for one unit of work,
so a tick spans ``1/s`` time units; each steal attempt costs exactly one
tick.  New jobs join a global FIFO queue; a worker with an empty deque
either steals from a random victim or admits the head-of-line job,
according to the steal-k-first policy:

* try random steals first, and
* admit from the global queue only after ``k`` *consecutive* failed steal
  attempts (``k = 0`` is admit-first: admit whenever the queue is
  non-empty, steal only when it is empty).

Within a tick the engine runs two phases: all busy workers execute one
work unit (phase A), then every worker that was idle at the start of the
tick performs one acquisition action (phase B).  Thieves therefore see
work pushed earlier in the same tick, matching the racy behaviour of a
real runtime while staying deterministic for a fixed seed.

Exactness and speed
-------------------
All state is integral (ticks, work units), so runs are bit-reproducible.
Two lossless fast-forward modes keep pure-Python cost acceptable:

* **all-busy**: when every worker is executing, no steal or admission can
  occur, so the engine advances ``min(remaining)`` ticks at once;
* **nothing stealable**: when every deque and the global queue are empty
  but some workers are busy, idle workers can only fail steals, so the
  engine advances to the next completion or arrival, charging the skipped
  failed-steal ticks to the statistics in bulk.

Both modes change no observable scheduling decision; they only skip ticks
in which no decision is possible.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dag.job import JobSet
from repro.sim.jobstate import JobExecution
from repro.sim.policies import make_victim_policy
from repro.sim.queue import GlobalAdmissionQueue, WeightedAdmissionQueue
from repro.sim.result import ScheduleResult, SimulationStats
from repro.sim.rng import SeedLike, make_rng
from repro.sim.sampling import SystemSampler
from repro.sim.trace import TraceRecorder
from repro.sim.worker import NodeRef, WorkerState


def run_work_stealing(
    jobset: JobSet,
    m: int,
    speed: float = 1.0,
    k: int = 0,
    seed: SeedLike = None,
    trace: Optional[TraceRecorder] = None,
    max_ticks: Optional[int] = None,
    steals_per_tick: int = 1,
    victim_policy: str = "uniform",
    steal_half: bool = False,
    admission: str = "fifo",
    sampler: Optional[SystemSampler] = None,
) -> ScheduleResult:
    """Simulate steal-k-first work stealing exactly, tick by tick.

    Parameters
    ----------
    jobset:
        The instance.  Node works are integers (work units); a job
        arriving at time ``r`` becomes admissible at the first tick
        boundary at or after ``r * speed``.
    m:
        Number of workers.
    speed:
        Worker speed ``s``; a tick spans ``1/s`` time units.
    k:
        Steal-k-first parameter; ``k = 0`` is admit-first.
    seed:
        Seed or generator for victim selection (the only randomness).
    trace:
        Optional :class:`TraceRecorder` for feasibility audits.  Nodes
        execute without preemption under work stealing, so each node
        yields exactly one trace interval.
    max_ticks:
        Safety valve: abort (with ``RuntimeError``) if the run exceeds
        this many ticks.  Defaults to a generous bound derived from the
        instance (total work, span, arrival horizon and steal overhead).
    steals_per_tick:
        Cost model for acquisition actions.  ``1`` (default) is the
        paper's *theoretical* model: every steal attempt costs a full
        unit-of-work time step (Sections 4--5 charge exactly that, and
        the ``(k+1)``-speed requirement of Theorem 4.1 comes from it).
        Larger values model the paper's *experimental* reality, where a
        TBB steal attempt costs microseconds against millisecond jobs
        ("the constant k steal attempts for admitting a job is
        negligible in practice", Section 4): an idle worker may perform
        up to this many acquisition actions per tick, i.e. one steal
        costs ``1/steals_per_tick`` of a work unit.  A worker still
        acquires at most one node per tick.  The Figure 2 reproduction
        uses a large value; the theorem and lower-bound benches use 1.
    victim_policy:
        Victim selection for steal attempts: ``"uniform"`` (the paper's
        analyzed policy, default), ``"round-robin"`` (deterministic
        sweep), or ``"max-deque"`` (an oracle upper bound).  See
        :mod:`repro.sim.policies`.
    steal_half:
        When True, a successful steal transfers the top *half* (rounded
        up) of the victim's deque instead of a single entry: the thief
        executes the first stolen node and queues the rest on its own
        deque.  A classic runtime optimization that spreads a wide job
        in O(log width) steals instead of O(width); not part of the
        paper's analysis, exposed for the steal-policy ablation.
    admission:
        ``"fifo"`` (the paper's global queue) or ``"weight"`` --
        admission pops the biggest-weight waiting job, the distributed
        analogue of BWF for the Section 7 weighted objective (this
        repository's extension; see
        :class:`repro.sim.queue.WeightedAdmissionQueue`).
    sampler:
        Optional :class:`repro.sim.sampling.SystemSampler` recording
        periodic snapshots of (busy workers, queue length, stealable
        deques, completions) for time-series diagnostics.

    Returns
    -------
    ScheduleResult
        With work-stealing statistics: ``busy_steps`` (== total work),
        ``steal_attempts``, ``failed_steals``, ``admissions`` (== n),
        ``idle_steps`` (ticks idled while the whole system was empty) and
        ``elapsed_ticks``.
    """
    if m < 1:
        raise ValueError(f"need at least one worker, got m={m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    if k < 0:
        raise ValueError(f"steal-k-first requires k >= 0, got {k}")
    if steals_per_tick < 1:
        raise ValueError(
            f"steals_per_tick must be >= 1, got {steals_per_tick}"
        )
    sigma = int(steals_per_tick)

    rng = make_rng(seed)
    n = len(jobset)
    arrivals = np.asarray(jobset.arrivals, dtype=np.float64)
    weights = np.asarray(jobset.weights, dtype=np.float64)
    completions = np.zeros(n, dtype=np.float64)

    # Tick at whose start each job is present in the global queue.
    arrival_ticks = np.ceil(arrivals * speed - 1e-9).astype(np.int64)

    if max_ticks is None:
        # Loose feasibility bound: all work serialized + per-job overhead
        # (admission + k failed steals each) + the arrival horizon itself.
        max_ticks = int(
            jobset.total_work + (k + 2) * n + arrival_ticks[-1] + 64 * m + 64
        ) * 4

    workers = [WorkerState(i) for i in range(m)]
    if admission == "fifo":
        queue: GlobalAdmissionQueue[JobExecution] = GlobalAdmissionQueue()
    elif admission == "weight":
        queue = WeightedAdmissionQueue()  # type: ignore[assignment]
    else:
        raise ValueError(
            f"unknown admission policy {admission!r}; expected 'fifo' or 'weight'"
        )
    victims = make_victim_policy(victim_policy, rng, m) if m > 1 else None
    stats = SimulationStats()

    pending = list(jobset.jobs)
    next_arr = 0
    completed = 0
    t = int(arrival_ticks[0])  # nothing can happen before the first arrival

    # Hot-loop locals (attribute lookups dominate otherwise).
    n_busy = 0  # number of workers with a current node
    stealable = 0  # number of non-empty deques

    def _complete_current(w: WorkerState, end_tick: int) -> None:
        """Finish the worker's current node at the end of ``end_tick``.

        Enables successors, continues depth-first with the first enabled
        child (pushing the rest), else pops the worker's own deque; these
        transitions are free, as only steals cost time in the model.
        """
        nonlocal completed, n_busy, stealable
        je, node = w.current[0], w.current[1]  # type: ignore[index]
        if trace is not None:
            trace.record(
                w.index, je.job_id, node, w.start_tick / speed, (end_tick + 1) / speed
            )
        enabled = je.finish_node(node)
        if je.done:
            je.completion = (end_tick + 1) / speed
            completions[je.job_id] = je.completion
            completed += 1
        if enabled:
            # Children become legal to execute from tick end_tick + 1.
            w.assign((je, enabled[0], end_tick + 1), end_tick + 1)
            if len(enabled) > 1:
                was_empty = not w.deque
                for u in enabled[1:]:
                    w.deque.push_bottom((je, u, end_tick + 1))
                if was_empty:
                    stealable += 1
        else:
            entry = w.deque.pop_bottom()
            if entry is not None:
                if not w.deque:
                    stealable -= 1
                w.assign(entry, end_tick + 1)
            else:
                w.current = None
                n_busy -= 1

    def _work_one_unit(w: WorkerState, tick: int) -> None:
        """Execute one unit of the just-acquired node within ``tick``.

        Only used in the practical cost model (``sigma > 1``), where an
        acquisition is a sub-tick action rather than a full time step.
        """
        w.start_tick = tick  # execution begins this tick, not the next
        w.remaining -= 1
        w.busy_steps += 1
        stats.busy_steps += 1
        if w.remaining == 0:
            _complete_current(w, tick)

    def _admit(w: WorkerState, tick: int) -> None:
        """Pop the head-of-line job and take its first root (push the rest)."""
        nonlocal n_busy, stealable
        je = queue.admit()
        assert je is not None
        roots = je.job.dag.roots
        # Roots were ready from the job's arrival tick, which is <= tick.
        w.assign((je, roots[0], tick), tick + 1)
        if len(roots) > 1:
            was_empty = not w.deque
            for r in roots[1:]:
                w.deque.push_bottom((je, r, tick))
            if was_empty:
                stealable += 1
        n_busy += 1
        w.admit_steps += 1
        stats.admissions += 1

    while completed < n:
        # ---- release arrivals due at or before the current tick ---------
        while next_arr < n and arrival_ticks[next_arr] <= t:
            queue.release(JobExecution(pending[next_arr]))
            next_arr += 1

        if t >= max_ticks:
            raise RuntimeError(
                f"work-stealing run exceeded max_ticks={max_ticks} "
                f"({completed}/{n} jobs complete) -- instance may be overloaded"
            )

        if sampler is not None:
            sampler.maybe_record(t, n_busy, len(queue), stealable, completed)

        # ---- fast-forward: whole system empty ---------------------------
        if n_busy == 0 and not queue:
            # No work anywhere; jump to the next arrival.  Idle workers
            # would spend the gap failing steals, so saturate their
            # admission counters and account the gap as idle time.
            gap = int(arrival_ticks[next_arr]) - t
            for w in workers:
                w.failed_steals = min(k, w.failed_steals + gap * sigma)
            stats.idle_steps += gap * m
            t += gap
            continue

        # ---- fast-forward: every worker busy -----------------------------
        if n_busy == m:
            delta = min(w.remaining for w in workers)
            # No cap at arrivals: arrivals only join the queue, and no
            # worker can react to the queue while all are busy.
            for w in workers:
                w.remaining -= delta
                w.busy_steps += delta
            stats.busy_steps += delta * m
            t += delta
            end_tick = t - 1
            for w in workers:
                if w.remaining == 0:
                    _complete_current(w, end_tick)
            continue

        # ---- fast-forward: nothing stealable, nothing admissible ---------
        # While every deque and the queue are empty, idle workers can only
        # fail steals -- but the *final* tick before the next completion
        # (or arrival) must run through the general path, because a
        # completion in phase A publishes stealable work that phase B
        # thieves may take within the same tick.  So we blind-skip only
        # delta - 1 ticks, during which provably nothing completes.
        if stealable == 0 and not queue and n_busy > 0:
            delta = min(w.remaining for w in workers if w.current is not None)
            if next_arr < n:
                delta = min(delta, int(arrival_ticks[next_arr]) - t)
            blind = delta - 1
            if blind >= 1:
                n_idle = m - n_busy
                for w in workers:
                    if w.current is not None:
                        w.remaining -= blind
                        w.busy_steps += blind
                    else:
                        w.failed_steals = min(
                            k, w.failed_steals + blind * sigma
                        )
                        w.steal_steps += blind
                stats.busy_steps += blind * n_busy
                stats.steal_attempts += blind * n_idle * sigma
                stats.failed_steals += blind * n_idle * sigma
                t += blind
                continue
            # delta == 1: fall through to the general tick.

        # ---- general tick -------------------------------------------------
        # Phase A: workers busy at the start of the tick execute one unit.
        idle_at_start: List[WorkerState] = []
        for w in workers:
            if w.current is not None:
                w.remaining -= 1
                w.busy_steps += 1
                stats.busy_steps += 1
                if w.remaining == 0:
                    _complete_current(w, t)
            else:
                idle_at_start.append(w)

        # Phase B: workers idle at the start of the tick acquire.  Each
        # performs up to `sigma` acquisition actions and starts at most
        # one node.  In the theoretical model (sigma == 1) the
        # acquisition consumes the whole tick and work begins next tick;
        # in the practical model (sigma > 1) acquisitions are sub-tick
        # actions, so the acquired node executes its first unit within
        # the same tick.
        for w in idle_at_start:
            budget = sigma
            admitted = False
            while budget > 0:
                if w.failed_steals >= k and queue:
                    _admit(w, t)
                    admitted = True
                    if sigma > 1:
                        _work_one_unit(w, t)
                    break  # admission consumes the rest of the tick
                if stealable == 0:
                    # No deque can satisfy a steal, and later workers in
                    # this phase can only *remove* stealable entries, so
                    # every remaining attempt this tick fails.  When the
                    # queue is non-empty, burn just enough failures to
                    # unlock admission; otherwise burn the whole budget.
                    if queue and k - w.failed_steals <= budget:
                        burned = k - w.failed_steals
                    else:
                        burned = budget
                    w.failed_steals = min(k, w.failed_steals + burned)
                    stats.steal_attempts += burned
                    stats.failed_steals += burned
                    budget -= burned
                    if budget > 0:
                        continue  # unlocked admission; loop admits next
                    break
                # A live steal attempt against a chosen victim.
                stats.steal_attempts += 1
                budget -= 1
                victim = workers[victims.choose(w.index, workers)]
                entry: Optional[NodeRef] = victim.deque.steal_top()
                if entry is not None:
                    if steal_half:
                        # Take the rest of the top half: the victim held
                        # L0 entries, the thief takes ceil(L0/2) total --
                        # the first is `entry`, leaving len//2 extras to
                        # move (oldest first) onto the thief's own deque.
                        extra = len(victim.deque) // 2
                        if extra > 0:
                            for _ in range(extra):
                                moved = victim.deque.steal_top()
                                w.deque.push_bottom(moved)  # type: ignore[arg-type]
                            stealable += 1  # thief's deque was empty
                    if not victim.deque:
                        stealable -= 1
                    w.assign(entry, t + 1)
                    n_busy += 1
                    # Same-tick execution only if the node was already
                    # ready at the start of this tick (entry[2] <= t);
                    # otherwise its predecessor finished within this very
                    # tick and starting now would violate precedence at
                    # trace granularity.
                    if sigma > 1 and entry[2] <= t:
                        _work_one_unit(w, t)
                    break  # the steal consumes the rest of the tick
                w.failed_steals += 1
                stats.failed_steals += 1
            if not admitted:
                w.steal_steps += 1  # the tick went to (possibly failed) steals

        t += 1

    stats.elapsed_ticks = t
    label = f"steal-{k}-first" if k > 0 else "admit-first"
    if victim_policy != "uniform":
        label += f"/{victim_policy}"
    if steal_half:
        label += "/half"
    if admission != "fifo":
        label += f"/{admission}-admission"
    return ScheduleResult(
        scheduler=label,
        m=m,
        speed=speed,
        arrivals=arrivals,
        completions=completions,
        weights=weights,
        stats=stats,
        seed=None if isinstance(seed, np.random.Generator) else seed,
    )
