"""Discrete-time engine for the steal-k-first work-stealing schedulers.

The paper's model (Sections 4--5): ``m`` workers of speed ``s``; one *time
step* (tick) is the time an ``s``-speed worker needs for one unit of work,
so a tick spans ``1/s`` time units; each steal attempt costs exactly one
tick.  New jobs join a global FIFO queue; a worker with an empty deque
either steals from a random victim or admits the head-of-line job,
according to the steal-k-first policy:

* try random steals first, and
* admit from the global queue only after ``k`` *consecutive* failed steal
  attempts (``k = 0`` is admit-first: admit whenever the queue is
  non-empty, steal only when it is empty).

Within a tick the engine runs two phases: all busy workers execute one
work unit (phase A), then every worker that was idle at the start of the
tick performs one acquisition action (phase B).  Thieves therefore see
work pushed earlier in the same tick, matching the racy behaviour of a
real runtime while staying deterministic for a fixed seed.

Exactness and speed
-------------------
All state is integral (ticks, work units), so runs are bit-reproducible.
Three lossless fast-forward modes keep pure-Python cost acceptable:

* **system empty**: nothing is running or queued, so the engine jumps to
  the next arrival, charging the gap as idle time;
* **all-busy**: when every worker is executing, no steal or admission can
  occur, so the engine blind-skips ``min(remaining) - 1`` ticks at once
  and lets the general path run the completion tick itself.  There is no
  cap at the next arrival: arrivals only join the queue, and no idle
  worker exists that could react to the queue while all are busy;
* **nothing stealable**: when every deque and the global queue are empty
  but some workers are busy, idle workers can only fail steals, so the
  engine blind-skips to one tick before the next completion or arrival,
  charging the skipped failed-steal ticks to the statistics in bulk.

All three modes change no observable scheduling decision; they only skip
ticks in which no decision is possible.  Passing ``_fast_forward=False``
disables all three and runs every tick through the general path -- the
brute-force reference the equivalence tests compare against.

Hot-loop layout
---------------
The general tick is pure-Python and dominates every experiment sweep, so
its state lives in the structure-of-arrays layout of
:class:`repro.sim.worker.WorkerArrays` (plain Python lists bound to
locals), the completion cascade of
:meth:`repro.sim.jobstate.JobExecution.finish_node` is inlined, and all
``busy_steps`` accounting is settled once per node at completion (a node
executes entirely on one worker, and every started node finishes before
the run ends, so the totals are identical to per-tick accounting).  The
issue that motivated this layout prescribed numpy ``int64`` worker
vectors; measurement showed numpy *scalar* indexing is ~4x slower than
list indexing at realistic ``m`` (8--64 workers), so the per-worker state
stays in lists and numpy appears only at the array-in/array-out edges.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dag.job import JobSet
from repro.sim.jobstate import JobExecution
from repro.sim.policies import make_victim_policy
from repro.sim.queue import GlobalAdmissionQueue, WeightedAdmissionQueue
from repro.sim.result import ScheduleResult, SimulationStats
from repro.sim.rng import SeedLike, make_rng
from repro.sim.sampling import SystemSampler
from repro.sim.trace import TraceRecorder
from repro.sim.worker import IDLE, WorkerArrays


def _scheduler_label(
    k: int, victim_policy: str, steal_half: bool, admission: str
) -> str:
    """Human-readable scheduler name shared by all return paths."""
    label = f"steal-{k}-first" if k > 0 else "admit-first"
    if victim_policy != "uniform":
        label += f"/{victim_policy}"
    if steal_half:
        label += "/half"
    if admission != "fifo":
        label += f"/{admission}-admission"
    return label


def _run_work_stealing(
    jobset: JobSet,
    m: int,
    speed: float = 1.0,
    k: int = 0,
    seed: SeedLike = None,
    trace: Optional[TraceRecorder] = None,
    max_ticks: Optional[int] = None,
    steals_per_tick: int = 1,
    victim_policy: str = "uniform",
    steal_half: bool = False,
    admission: str = "fifo",
    sampler: Optional[SystemSampler] = None,
    _fast_forward: bool = True,
) -> ScheduleResult:
    """Simulate steal-k-first work stealing exactly, tick by tick.

    Parameters
    ----------
    jobset:
        The instance.  Node works are integers (work units); a job
        arriving at time ``r`` becomes admissible at the first tick
        boundary at or after ``r * speed``.  An empty instance yields an
        empty result immediately.
    m:
        Number of workers.
    speed:
        Worker speed ``s``; a tick spans ``1/s`` time units.
    k:
        Steal-k-first parameter; ``k = 0`` is admit-first.
    seed:
        Seed or generator for victim selection (the only randomness).
    trace:
        Optional :class:`TraceRecorder` for feasibility audits.  Nodes
        execute without preemption under work stealing, so each node
        yields exactly one trace interval.
    max_ticks:
        Safety valve: abort (with ``RuntimeError``) if the run exceeds
        this many ticks.  Defaults to a generous bound derived from the
        instance (total work, span, arrival horizon and steal overhead).
    steals_per_tick:
        Cost model for acquisition actions.  ``1`` (default) is the
        paper's *theoretical* model: every steal attempt costs a full
        unit-of-work time step (Sections 4--5 charge exactly that, and
        the ``(k+1)``-speed requirement of Theorem 4.1 comes from it).
        Larger values model the paper's *experimental* reality, where a
        TBB steal attempt costs microseconds against millisecond jobs
        ("the constant k steal attempts for admitting a job is
        negligible in practice", Section 4): an idle worker may perform
        up to this many acquisition actions per tick, i.e. one steal
        costs ``1/steals_per_tick`` of a work unit.  A worker still
        acquires at most one node per tick.  The Figure 2 reproduction
        uses a large value; the theorem and lower-bound benches use 1.
    victim_policy:
        Victim selection for steal attempts: ``"uniform"`` (the paper's
        analyzed policy, default), ``"round-robin"`` (deterministic
        sweep), or ``"max-deque"`` (an oracle upper bound).  See
        :mod:`repro.sim.policies`.
    steal_half:
        When True, a successful steal transfers the top *half* (rounded
        up) of the victim's deque instead of a single entry: the thief
        executes the first stolen node and queues the rest on its own
        deque.  A classic runtime optimization that spreads a wide job
        in O(log width) steals instead of O(width); not part of the
        paper's analysis, exposed for the steal-policy ablation.
    admission:
        ``"fifo"`` (the paper's global queue) or ``"weight"`` --
        admission pops the biggest-weight waiting job, the distributed
        analogue of BWF for the Section 7 weighted objective (this
        repository's extension; see
        :class:`repro.sim.queue.WeightedAdmissionQueue`).
    sampler:
        Optional :class:`repro.sim.sampling.SystemSampler` recording
        periodic snapshots of (busy workers, queue length, stealable
        deques, completions) for time-series diagnostics.  Snapshots are
        also recorded at every fast-forward boundary (entry and exit),
        so time series have no silent gaps across skipped spans.
    _fast_forward:
        Private.  ``False`` disables all three fast-forward modes and
        simulates every tick through the general path; used by the
        equivalence tests as a brute-force reference.  Scheduling
        decisions, completions, ``busy_steps`` and ``admissions`` are
        identical either way, but the *classification* of provably
        decision-free idle ticks differs: the system-empty fast-forward
        charges them to ``idle_steps``, while the brute-force path runs
        phase B and charges them as failed steal attempts.

    Returns
    -------
    ScheduleResult
        With work-stealing statistics: ``busy_steps`` (== total work),
        ``steal_attempts``, ``failed_steals``, ``admissions`` (== n),
        ``idle_steps`` (ticks idled while the whole system was empty),
        ``elapsed_ticks``, plus the observability counters
        ``admission_wait_ticks`` (summed release-to-admission latency),
        ``ff_skipped_ticks`` (ticks the fast-forwards skipped) and
        ``max_queue_depth`` (peak global-queue length).  All counters are
        maintained off the hot path, so they cost nothing measurable.
    """
    if m < 1:
        raise ValueError(f"need at least one worker, got m={m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    if k < 0:
        raise ValueError(f"steal-k-first requires k >= 0, got {k}")
    if steals_per_tick < 1:
        raise ValueError(
            f"steals_per_tick must be >= 1, got {steals_per_tick}"
        )
    if admission not in ("fifo", "weight"):
        raise ValueError(
            f"unknown admission policy {admission!r}; expected 'fifo' or 'weight'"
        )
    sigma = int(steals_per_tick)

    rng = make_rng(seed)
    n = len(jobset)
    arrivals = np.asarray(jobset.arrivals, dtype=np.float64)
    weights = np.asarray(jobset.weights, dtype=np.float64)
    completions = np.zeros(n, dtype=np.float64)
    label = _scheduler_label(k, victim_policy, steal_half, admission)
    recorded_seed = None if isinstance(seed, np.random.Generator) else seed

    if n == 0:
        # Nothing ever arrives: zero ticks elapse, no decisions exist.
        # Work-stealing fields are real zeros (the engine *did* measure
        # them), unlike the None of engines that cannot.
        return ScheduleResult(
            scheduler=label,
            m=m,
            speed=speed,
            arrivals=arrivals,
            completions=completions,
            weights=weights,
            stats=SimulationStats(
                steal_attempts=0,
                failed_steals=0,
                admissions=0,
                admission_wait_ticks=0,
                ff_skipped_ticks=0,
                max_queue_depth=0,
            ),
            seed=recorded_seed,
        )

    # Tick at whose start each job is present in the global queue; kept as
    # plain Python ints -- the hot loop compares them every tick and numpy
    # scalar comparisons cost ~4x a native int compare.
    arr_ticks: List[int] = [
        int(v) for v in np.ceil(arrivals * speed - 1e-9).astype(np.int64)
    ]

    if max_ticks is None:
        # Loose feasibility bound: all work serialized + per-job overhead
        # (admission + k failed steals each) + the arrival horizon itself.
        max_ticks = int(
            jobset.total_work + (k + 2) * n + arr_ticks[-1] + 64 * m + 64
        ) * 4

    state = WorkerArrays(m)
    # Hot-loop locals: every per-worker array bound once (attribute and
    # even global lookups cost real time at ~1e7 touches per run).
    cur = state.current
    rem = state.remaining
    starts = state.start_tick
    deques = state.deques
    fails = state.failed_steals
    wbusy = state.busy_steps
    wsteal = state.steal_steps
    wadmit = state.admit_steps

    if admission == "fifo":
        queue: GlobalAdmissionQueue[JobExecution] = GlobalAdmissionQueue()
    else:
        queue = WeightedAdmissionQueue()  # type: ignore[assignment]
    queue_release = queue.release
    queue_admit = queue.admit
    victims = make_victim_policy(victim_policy, rng, m) if m > 1 else None
    choose = victims.choose if victims is not None else None
    stats = SimulationStats()

    pending = jobset.jobs
    next_arr = 0
    next_at = arr_ticks[0]  # tick of the next unreleased arrival
    completed = 0
    t = next_at  # nothing can happen before the first arrival

    n_busy = 0  # number of workers with a current node
    stealable = 0  # number of non-empty deques
    # Aggregate counters as local ints, flushed into `stats` at the end.
    st_busy = 0
    st_att = 0
    st_fail = 0
    st_idle = 0
    st_adm = 0
    # Observability counters (ISSUE 3).  None lives in the per-tick hot
    # path: queue depth is sampled only when arrivals were just released
    # (the only place the queue grows), admission wait only per admission,
    # fast-forward savings only inside the fast-forward branches.
    st_admwait = 0  # summed release->admission latency, in ticks
    st_ff = 0  # ticks skipped by the lossless fast-forwards
    st_maxq = 0  # peak global-queue depth

    ff = _fast_forward
    boundary = False  # force a sampler snapshot at the next loop top

    def _complete(i: int, end_tick: int) -> None:
        """Finish worker ``i``'s current node at the end of ``end_tick``.

        Settles the node's busy accounting, enables successors, continues
        depth-first with the first enabled child (pushing the rest), else
        pops the worker's own deque; these transitions are free, as only
        steals cost time in the model.  Phase A of the general tick keeps
        an inlined copy of this body (the one measured hot site); keep
        the two in sync.
        """
        nonlocal completed, n_busy, stealable, st_busy
        entry = cur[i]
        je, node = entry[0], entry[1]
        if trace is not None:
            trace.record(
                i, je.job.job_id, node, starts[i] / speed, (end_tick + 1) / speed
            )
        work = je.works[node]
        wbusy[i] += work
        st_busy += work
        u = je.unfinished - 1
        je.unfinished = u
        preds = je.remaining_preds
        enabled: List[int] = []
        for succ in je.succs[node]:
            p = preds[succ] - 1
            preds[succ] = p
            if p == 0:
                enabled.append(succ)
        if u == 0:
            c = (end_tick + 1) / speed
            je.completion = c
            completions[je.job.job_id] = c
            completed += 1
        nt = end_tick + 1
        if enabled:
            # Children become legal to execute from tick end_tick + 1.
            cur[i] = (je, enabled[0], nt)
            rem[i] = je.works[enabled[0]]
            starts[i] = nt
            fails[i] = 0
            if len(enabled) > 1:
                dq = deques[i]
                if not dq:
                    stealable += 1
                for u2 in enabled[1:]:
                    dq.append((je, u2, nt))
        else:
            dq = deques[i]
            if dq:
                nxt = dq.pop()
                if not dq:
                    stealable -= 1
                cur[i] = nxt
                rem[i] = nxt[0].works[nxt[1]]
                starts[i] = nt
                fails[i] = 0
            else:
                cur[i] = None
                rem[i] = IDLE
                n_busy -= 1

    while completed < n:
        # ---- release arrivals due at or before the current tick ---------
        if next_at <= t:
            while next_arr < n and arr_ticks[next_arr] <= t:
                queue_release(JobExecution(pending[next_arr]))
                next_arr += 1
            next_at = arr_ticks[next_arr] if next_arr < n else max_ticks + 1
            # The queue only ever grows here (admissions pop), so its
            # peak is always observed right after a release batch.
            ql = len(queue)
            if ql > st_maxq:
                st_maxq = ql

        if t >= max_ticks:
            raise RuntimeError(
                f"work-stealing run exceeded max_ticks={max_ticks} "
                f"({completed}/{n} jobs complete) -- instance may be overloaded"
            )

        if sampler is not None:
            if boundary:
                sampler.record_boundary(t, n_busy, len(queue), stealable, completed)
                boundary = False
            else:
                sampler.maybe_record(t, n_busy, len(queue), stealable, completed)

        if ff:
            # ---- fast-forward: whole system empty -----------------------
            if n_busy == 0 and not queue:
                # No work anywhere; jump to the next arrival.  Idle workers
                # would spend the gap failing steals, so saturate their
                # admission counters and account the gap as idle time.
                gap = next_at - t
                for i in range(m):
                    f = fails[i] + gap * sigma
                    fails[i] = f if f < k else k
                st_idle += gap * m
                st_ff += gap
                if sampler is not None:
                    sampler.record_boundary(t, 0, 0, stealable, completed)
                    boundary = True
                t += gap
                continue

            # ---- fast-forward: every worker busy ------------------------
            if n_busy == m:
                # Blind-skip to one tick before the earliest completion and
                # let the general path run the completion tick itself; no
                # cap at arrivals (no idle worker can react to the queue).
                blind = min(rem) - 1
                if blind > 0:
                    st_ff += blind
                    for i in range(m):
                        rem[i] -= blind
                    if sampler is not None:
                        sampler.record_boundary(
                            t, n_busy, len(queue), stealable, completed
                        )
                        boundary = True
                    t += blind
                    continue
                # blind == 0: the completion tick; fall through.

            # ---- fast-forward: nothing stealable, nothing admissible ----
            # While every deque and the queue are empty, idle workers can
            # only fail steals -- but the *final* tick before the next
            # completion (or arrival) must run through the general path,
            # because a completion in phase A publishes stealable work
            # that phase B thieves may take within the same tick.  So we
            # blind-skip only delta - 1 ticks, during which provably
            # nothing completes.  (`min(rem)` is the busy-worker minimum:
            # idle workers hold the IDLE sentinel.)
            elif stealable == 0 and n_busy > 0 and not queue:
                delta = min(rem)
                if next_arr < n and next_at - t < delta:
                    delta = next_at - t
                blind = delta - 1
                if blind >= 1:
                    n_idle = m - n_busy
                    for i in range(m):
                        if cur[i] is not None:
                            rem[i] -= blind
                        else:
                            f = fails[i] + blind * sigma
                            fails[i] = f if f < k else k
                            wsteal[i] += blind
                    st_att += blind * n_idle * sigma
                    st_fail += blind * n_idle * sigma
                    st_ff += blind
                    if sampler is not None:
                        sampler.record_boundary(
                            t, n_busy, 0, 0, completed
                        )
                        boundary = True
                    t += blind
                    continue
                # delta == 1: fall through to the general tick.

        # ---- general tick -------------------------------------------------
        # Phase A: workers busy at the start of the tick execute one unit.
        # The completion cascade is an inlined copy of _complete() above
        # (the call overhead is measurable at ~1e4 completions per run);
        # keep the two in sync.
        idle_at_start: List[int] = []
        for i in range(m):
            if cur[i] is None:
                idle_at_start.append(i)
                continue
            r = rem[i] - 1
            rem[i] = r
            if r == 0:
                entry = cur[i]
                je, node = entry[0], entry[1]
                if trace is not None:
                    trace.record(
                        i, je.job.job_id, node, starts[i] / speed, (t + 1) / speed
                    )
                work = je.works[node]
                wbusy[i] += work
                st_busy += work
                u = je.unfinished - 1
                je.unfinished = u
                preds = je.remaining_preds
                enabled: List[int] = []
                for succ in je.succs[node]:
                    p = preds[succ] - 1
                    preds[succ] = p
                    if p == 0:
                        enabled.append(succ)
                if u == 0:
                    c = (t + 1) / speed
                    je.completion = c
                    completions[je.job.job_id] = c
                    completed += 1
                if enabled:
                    cur[i] = (je, enabled[0], t + 1)
                    rem[i] = je.works[enabled[0]]
                    starts[i] = t + 1
                    fails[i] = 0
                    if len(enabled) > 1:
                        dq = deques[i]
                        if not dq:
                            stealable += 1
                        nt = t + 1
                        for u2 in enabled[1:]:
                            dq.append((je, u2, nt))
                else:
                    dq = deques[i]
                    if dq:
                        nxt = dq.pop()
                        if not dq:
                            stealable -= 1
                        cur[i] = nxt
                        rem[i] = nxt[0].works[nxt[1]]
                        starts[i] = t + 1
                        fails[i] = 0
                    else:
                        cur[i] = None
                        rem[i] = IDLE
                        n_busy -= 1

        # Phase B: workers idle at the start of the tick acquire.  Each
        # performs up to `sigma` acquisition actions and starts at most
        # one node.  In the theoretical model (sigma == 1) the
        # acquisition consumes the whole tick and work begins next tick;
        # in the practical model (sigma > 1) acquisitions are sub-tick
        # actions, so the acquired node executes its first unit within
        # the same tick.
        for i in idle_at_start:
            budget = sigma
            admitted = False
            while budget > 0:
                if fails[i] >= k and queue:
                    # Admit the head-of-line job: take its first root,
                    # push the rest (ready since the arrival tick <= t).
                    je = queue_admit()
                    roots = je.job.dag.roots
                    cur[i] = (je, roots[0], t)
                    rem[i] = je.works[roots[0]]
                    starts[i] = t + 1
                    fails[i] = 0
                    if len(roots) > 1:
                        dq = deques[i]
                        if not dq:
                            stealable += 1
                        for rt in roots[1:]:
                            dq.append((je, rt, t))
                    n_busy += 1
                    wadmit[i] += 1
                    st_adm += 1
                    # Admission latency: the job was present in the queue
                    # from its release tick (job ids are dense, so the
                    # arrival array indexes directly).
                    st_admwait += t - arr_ticks[je.job.job_id]
                    admitted = True
                    if sigma > 1:
                        # Sub-tick admission: execute one unit this tick.
                        starts[i] = t
                        r = rem[i] - 1
                        rem[i] = r
                        if r == 0:
                            _complete(i, t)
                    break  # admission consumes the rest of the tick
                if stealable == 0:
                    # No deque can satisfy a steal, and later workers in
                    # this phase can only *remove* stealable entries, so
                    # every remaining attempt this tick fails.  When the
                    # queue is non-empty, burn just enough failures to
                    # unlock admission; otherwise burn the whole budget.
                    if queue and k - fails[i] <= budget:
                        burned = k - fails[i]
                    else:
                        burned = budget
                    f = fails[i] + burned
                    fails[i] = f if f < k else k
                    st_att += burned
                    st_fail += burned
                    budget -= burned
                    if budget > 0:
                        continue  # unlocked admission; loop admits next
                    break
                # A live steal attempt against a chosen victim.
                st_att += 1
                budget -= 1
                vdq = deques[choose(i, deques)]
                if vdq:
                    entry = vdq.popleft()
                    if steal_half:
                        # Take the rest of the top half: the victim held
                        # L0 entries, the thief takes ceil(L0/2) total --
                        # the first is `entry`, leaving len//2 extras to
                        # move (oldest first) onto the thief's own deque.
                        extra = len(vdq) // 2
                        if extra > 0:
                            dq = deques[i]
                            for _ in range(extra):
                                dq.append(vdq.popleft())
                            stealable += 1  # thief's deque was empty
                    if not vdq:
                        stealable -= 1
                    cur[i] = entry
                    rem[i] = entry[0].works[entry[1]]
                    starts[i] = t + 1
                    fails[i] = 0
                    n_busy += 1
                    # Same-tick execution only if the node was already
                    # ready at the start of this tick (entry[2] <= t);
                    # otherwise its predecessor finished within this very
                    # tick and starting now would violate precedence at
                    # trace granularity.
                    if sigma > 1 and entry[2] <= t:
                        starts[i] = t
                        r = rem[i] - 1
                        rem[i] = r
                        if r == 0:
                            _complete(i, t)
                    break  # the steal consumes the rest of the tick
                fails[i] += 1
                st_fail += 1
            if not admitted:
                wsteal[i] += 1  # the tick went to (possibly failed) steals

        t += 1

    stats.busy_steps = st_busy
    stats.steal_attempts = st_att
    stats.failed_steals = st_fail
    stats.admissions = st_adm
    stats.idle_steps = st_idle
    stats.elapsed_ticks = t
    stats.admission_wait_ticks = st_admwait
    stats.ff_skipped_ticks = st_ff
    stats.max_queue_depth = st_maxq
    return ScheduleResult(
        scheduler=label,
        m=m,
        speed=speed,
        arrivals=arrivals,
        completions=completions,
        weights=weights,
        stats=stats,
        seed=recorded_seed,
    )


def run_work_stealing(*args, **kwargs) -> ScheduleResult:
    """Deprecated alias of the tick engine; use :func:`repro.run`.

    Forwards every argument unchanged to the private implementation, so
    results stay bit-identical; emits one :class:`DeprecationWarning`
    per process.  Schedulers should be run through :func:`repro.run`
    (or :meth:`repro.core.base.Scheduler.run`), which also accepts
    ``telemetry=``.
    """
    from repro._deprecation import warn_once

    warn_once("repro.sim.engine.run_work_stealing", "repro.run")
    return _run_work_stealing(*args, **kwargs)
