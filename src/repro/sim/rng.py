"""Deterministic random-number plumbing.

Every randomized component in the repository (victim selection in work
stealing, workload sampling, random DAG construction) takes either an
explicit :class:`numpy.random.Generator` or an integer seed.  No module
ever touches numpy's or Python's global RNG state, so any run is exactly
reproducible from its recorded seed -- the determinism rule in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce a seed-like value into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned as-is), an integer seed, or
    ``None`` (fresh OS entropy -- only appropriate for exploratory use;
    experiments always pass explicit seeds).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used when one experiment seed must fan out to several independent
    consumers (e.g. the workload sampler and each scheduler's victim
    RNG) without any consumer's draw count perturbing the others --
    essential for paired comparisons across schedulers on the same
    workload.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    root = make_rng(seed)
    # numpy exposes the generator's seed sequence as `seed_seq` from 1.24
    # and as `_seed_seq` before that; fall back for older installs.
    bg = root.bit_generator
    seq = getattr(bg, "seed_seq", None) or getattr(bg, "_seed_seq")
    return [np.random.default_rng(s) for s in seq.spawn(n)]


def derive_seed(seed: Optional[int], *components: int) -> int:
    """Mix an experiment seed with run coordinates into a child seed.

    Deterministic and collision-resistant enough for experiment sweeps:
    ``derive_seed(base, rep, qps)`` gives each (repetition, load) cell its
    own stream while remaining reproducible from the base seed alone.
    """
    ss = np.random.SeedSequence(
        entropy=seed if seed is not None else 0,
        spawn_key=tuple(int(c) for c in components),
    )
    return int(ss.generate_state(1, dtype=np.uint64)[0])
