"""Event-driven engine for centralized preemptive schedulers.

FIFO (Section 3), BWF (Section 7) and the list-scheduling baselines all
share one structure: at every instant, order the active jobs by a static
priority, then hand processors to ready nodes job-by-job in that order
until processors or ready nodes run out.  Because the priority of a job
never changes while it is alive, the processor assignment can only change
at a *job arrival* or a *node completion* -- so the engine jumps directly
between those events instead of stepping time, which is exact and keeps
the run cost proportional to the number of nodes, not the schedule length.

The engine enforces non-clairvoyance structurally: the priority key sees
only arrival metadata (id, arrival time, weight) unless a policy opts into
clairvoyance explicitly (see :mod:`repro.core.greedy`).
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.dag.job import JobSet
from repro.sim.jobstate import JobExecution
from repro.sim.result import ScheduleResult, SimulationStats
from repro.sim.trace import TraceRecorder

#: Comparison tolerance for event times and remaining work, in work units.
#: Node works are integers and speeds are small rationals, so genuine
#: event-time gaps are never this small.
EPS = 1e-9

PriorityKey = Callable[[JobExecution], Tuple]


def run_centralized(
    jobset: JobSet,
    m: int,
    speed: float = 1.0,
    priority_key: Optional[PriorityKey] = None,
    scheduler_name: str = "centralized",
    trace: Optional[TraceRecorder] = None,
    dynamic: bool = False,
) -> ScheduleResult:
    """Simulate a centralized priority scheduler exactly.

    Parameters
    ----------
    jobset:
        The instance (jobs in arrival order).
    m:
        Number of identical processors.
    speed:
        Processor speed ``s >= 1`` (resource augmentation).  A node of
        work ``w`` occupies one processor for ``w / s`` time units.
    priority_key:
        Maps a :class:`JobExecution` to a sortable tuple; *lower sorts
        first* and is served first.  Must be static over a job's lifetime
        (the engine sorts at insertion only).  Defaults to FIFO order
        ``(arrival, job_id)``.
    scheduler_name:
        Label stored on the result.
    trace:
        Optional :class:`TraceRecorder`; when given, every contiguous
        (node, processor-slot) execution segment is recorded for
        invariant auditing.  Tracing roughly doubles run time.
    dynamic:
        Set to True when ``priority_key`` can change over a job's
        lifetime (e.g. least-attained-service reads
        ``JobExecution.attained``, SRPT reads remaining work).  The
        engine then re-sorts the active set at every event instead of
        maintaining a static insertion order, and caps the inter-event
        step at a one-work-unit scheduling quantum: continuously
        drifting priorities (LAS) can cross *between* completions, and
        the quantum bounds how stale an assignment can get -- the
        standard discrete approximation of processor-sharing-style
        policies.

    Returns
    -------
    ScheduleResult
        Per-job completion times and aggregate statistics
        (``stats.n_events`` counts scheduling events processed,
        ``stats.busy_steps`` the total work executed).

    Notes
    -----
    Within a job, ready nodes are assigned deterministically: nodes with
    partial progress first (avoiding gratuitous preemption churn), then by
    node id.  The paper allows an arbitrary choice here (Section 3), so
    any fixed rule reproduces the analyzed algorithm.
    """
    if m < 1:
        raise ValueError(f"need at least one processor, got m={m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    if priority_key is None:
        priority_key = lambda je: (je.arrival, je.job_id)  # noqa: E731 - FIFO

    n = len(jobset)
    completions = np.zeros(n, dtype=np.float64)
    arrivals = np.asarray(jobset.arrivals, dtype=np.float64)
    weights = np.asarray(jobset.weights, dtype=np.float64)
    stats = SimulationStats()

    # Active jobs, kept sorted by (priority_key, job_id); priorities are
    # static so sorting happens once per arrival via insort.
    active: List[Tuple[Tuple, int, JobExecution]] = []
    pending = list(jobset.jobs)  # already in arrival order
    next_arrival_idx = 0
    remaining_jobs = n

    t = pending[0].arrival if pending else 0.0
    busy_work = 0.0  # total work units executed, for the conservation audit

    while remaining_jobs > 0:
        # Release arrivals due at (or epsilon-before) the current time.
        while next_arrival_idx < n and pending[next_arrival_idx].arrival <= t + EPS:
            je = JobExecution(pending[next_arrival_idx])
            if dynamic:
                active.append(((), je.job_id, je))  # key recomputed below
            else:
                insort(active, (priority_key(je), je.job_id, je))
            next_arrival_idx += 1

        if not active:
            # System empty: jump to the next arrival.
            t = pending[next_arrival_idx].arrival
            continue

        if dynamic:
            # Mutable priorities: recompute and re-sort at every event.
            active.sort(key=lambda item: (priority_key(item[2]), item[1]))

        # ---- assignment: serve jobs in priority order ------------------
        assigned: List[Tuple[JobExecution, int]] = []
        avail = m
        for _, _, je in active:
            if avail == 0:
                break
            ready = je.ready
            if len(ready) > avail:
                # Prefer nodes with partial progress, then lowest id; the
                # sort is tiny (ready lists are short) and deterministic.
                works = je.job.dag.works
                rem = je.remaining_work
                chosen = sorted(ready, key=lambda v: (rem[v] >= works[v], v))[:avail]
            else:
                chosen = ready
            for v in chosen:
                assigned.append((je, v))
            avail -= len(chosen)

        # ---- next event time -------------------------------------------
        dt = min(je.remaining_work[v] for je, v in assigned) / speed
        if next_arrival_idx < n:
            dt_arrival = pending[next_arrival_idx].arrival - t
            if dt_arrival < dt:
                dt = dt_arrival
        if dynamic and dt > 1.0 / speed:
            # Scheduling quantum: bound assignment staleness for
            # continuously drifting priorities (see the docstring).
            dt = 1.0 / speed
        if dt < 0.0:
            dt = 0.0

        # ---- advance ----------------------------------------------------
        t_next = t + dt
        delta_work = speed * dt
        busy_work += delta_work * len(assigned)
        if trace is not None and dt > 0.0:
            for slot, (je, v) in enumerate(assigned):
                trace.record(slot, je.job_id, v, t, t_next)
        for je, v in assigned:
            je.remaining_work[v] -= delta_work
            je.attained += delta_work

        # ---- node completions -------------------------------------------
        finished_jobs: List[JobExecution] = []
        for je, v in assigned:
            if je.remaining_work[v] <= EPS and je.remaining_preds[v] == 0:
                # remaining_preds check guards the (impossible by
                # construction, but cheap to assert) double-finish case.
                je.remaining_work[v] = 0.0
                je.ready.remove(v)
                je.remaining_preds[v] = -1  # sentinel: node complete
                enabled = je.finish_node(v)
                je.ready.extend(enabled)
                if je.done:
                    je.completion = t_next
                    finished_jobs.append(je)

        for je in finished_jobs:
            completions[je.job_id] = je.completion
            # Linear scan removal: job completions are rare relative to
            # node completions, and `active` stays modest in practice.
            for i, (_, jid, cand) in enumerate(active):
                if cand is je:
                    del active[i]
                    break
            remaining_jobs -= 1

        stats.n_events += 1
        t = t_next

    stats.busy_steps = int(round(busy_work))
    return ScheduleResult(
        scheduler=scheduler_name,
        m=m,
        speed=speed,
        arrivals=arrivals,
        completions=completions,
        weights=weights,
        stats=stats,
    )
