"""Per-worker state for the work-stealing engine.

Each of the ``m`` workers owns a :class:`~repro.sim.deque.WorkStealingDeque`
and executes at most one node at a time.  A worker is in exactly one of
two modes each tick:

* **working** -- it has a current node and consumes one work unit of it;
* **acquiring** -- it has no current node and spends the tick on one
  acquisition action (a random steal attempt, or an admission from the
  global FIFO queue, per the steal-k-first policy).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.deque import WorkStealingDeque
from repro.sim.jobstate import JobExecution

#: A deque/steal entry: (job execution state, node id, ready tick).
#: ``ready tick`` is the first tick at whose start the node may legally
#: execute (its enabling predecessor finished at that tick boundary); the
#: engine's practical cost model consults it to decide whether a freshly
#: stolen node may run a unit within the acquisition tick.
NodeRef = Tuple[JobExecution, int, int]


class WorkerState:
    """Mutable state of one simulated worker thread.

    Attributes
    ----------
    index:
        Worker id in ``[0, m)``.
    current:
        The node being executed, or ``None`` while acquiring.
    remaining:
        Integer work units left on the current node (meaningless when
        ``current is None``).
    start_tick:
        Tick index at which the current node began executing, kept for
        trace recording.
    deque:
        The worker's own work-stealing deque of ready nodes.
    failed_steals:
        Consecutive failed steal attempts since the last successful
        acquisition; steal-k-first admits from the global queue once this
        reaches ``k``.
    busy_steps / steal_steps / admit_steps:
        Lifetime accounting (ticks spent working / stealing / admitting).
    """

    __slots__ = (
        "index",
        "current",
        "remaining",
        "start_tick",
        "deque",
        "failed_steals",
        "busy_steps",
        "steal_steps",
        "admit_steps",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.current: Optional[NodeRef] = None
        self.remaining: int = 0
        self.start_tick: int = 0
        self.deque: WorkStealingDeque[NodeRef] = WorkStealingDeque()
        self.failed_steals: int = 0
        self.busy_steps: int = 0
        self.steal_steps: int = 0
        self.admit_steps: int = 0

    @property
    def busy(self) -> bool:
        """True when the worker is executing a node."""
        return self.current is not None

    def assign(self, entry: NodeRef, next_tick: int) -> None:
        """Make ``entry`` the current node, starting at ``next_tick``.

        Resets the failed-steal counter: any successful acquisition ends
        the consecutive-failure streak that gates admission.
        """
        je, node = entry[0], entry[1]
        self.current = entry
        self.remaining = je.job.dag.works[node]
        self.start_tick = next_tick
        self.failed_steals = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cur = (
            f"job{self.current[0].job_id}/n{self.current[1]}(rem={self.remaining})"
            if self.current
            else "idle"
        )
        return f"WorkerState(#{self.index}, {cur}, deque={len(self.deque)})"
