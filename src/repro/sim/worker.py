"""Per-worker state for the work-stealing engine, in structure-of-arrays
layout.

Each of the ``m`` workers owns a work-stealing deque and executes at most
one node at a time.  A worker is in exactly one of two modes each tick:

* **working** -- it has a current node and consumes one work unit of it;
* **acquiring** -- it has no current node and spends the tick on
  acquisition actions (random steal attempts, or an admission from the
  global queue, per the steal-k-first policy).

Layout
------
:class:`WorkerArrays` stores every per-worker field as a parallel array
indexed by worker id instead of one attribute-bag object per worker.
The tick engine's general path touches these fields millions of times
per run, and the layout was chosen by measurement (CPython 3.12, m=16):

* plain-list indexing (``rem[i] -= 1``) is ~2x faster than attribute
  access on ``__slots__`` objects once the list is bound to a local, and
  ~4x faster than ``numpy`` scalar indexing (``arr[i] -= 1`` pays the
  scalar-boxing toll on every element access);
* whole-vector numpy operations only win when the engine touches *all*
  workers at once, which happens in the (rare) fast-forward events, not
  in the per-tick general path.

The arrays therefore live as plain Python lists of ints, with
:meth:`remaining_array` / :meth:`busy_steps_array` exporting numpy
``int64`` vectors for analysis and tests.  Idle workers hold the
:data:`IDLE` sentinel in ``remaining`` so that ``min(remaining)`` over
the whole list is exactly the busy-worker minimum -- the scan the
engine's fast-forward triggers use.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.sim.jobstate import JobExecution

#: A deque/steal entry: (job execution state, node id, ready tick).
#: ``ready tick`` is the first tick at whose start the node may legally
#: execute (its enabling predecessor finished at that tick boundary); the
#: engine's practical cost model consults it to decide whether a freshly
#: stolen node may run a unit within the acquisition tick.
NodeRef = Tuple[JobExecution, int, int]

#: Sentinel stored in ``WorkerArrays.remaining`` for idle workers; larger
#: than any feasible remaining work, so busy-only minimum scans can run
#: over the whole array without filtering.
IDLE = 1 << 62


class WorkerArrays:
    """Structure-of-arrays state of the ``m`` simulated worker threads.

    Attributes
    ----------
    m:
        Number of workers; every array below has this length.
    current:
        Per-worker executing :data:`NodeRef`, or ``None`` while acquiring.
    remaining:
        Integer work units left on the current node; :data:`IDLE` while
        the worker has none, so ``min(remaining)`` is the busy-worker
        minimum whenever at least one worker is busy.
    start_tick:
        Tick at which the current node began executing (trace recording).
    deques:
        Per-worker ready-node deques (see :mod:`repro.sim.deque` for the
        end semantics: the owner pushes/pops the *bottom* via
        ``append``/``pop``, thieves steal the *top* via ``popleft``).
        Raw :class:`collections.deque` objects -- the engine inlines the
        operations instead of paying a method call per push/pop.
    failed_steals:
        Consecutive failed steal attempts since the last successful
        acquisition; steal-k-first admits once this reaches ``k``.
    busy_steps / steal_steps / admit_steps:
        Lifetime accounting (ticks spent working / stealing / admitting).
        ``busy_steps`` is settled at node completion (a node executes
        entirely on one worker), not per tick.
    """

    __slots__ = (
        "m",
        "current",
        "remaining",
        "start_tick",
        "deques",
        "failed_steals",
        "busy_steps",
        "steal_steps",
        "admit_steps",
    )

    def __init__(self, m: int) -> None:
        self.m = m
        self.current: List[Optional[NodeRef]] = [None] * m
        self.remaining: List[int] = [IDLE] * m
        self.start_tick: List[int] = [0] * m
        self.deques: List[Deque[NodeRef]] = [deque() for _ in range(m)]
        self.failed_steals: List[int] = [0] * m
        self.busy_steps: List[int] = [0] * m
        self.steal_steps: List[int] = [0] * m
        self.admit_steps: List[int] = [0] * m

    def remaining_array(self) -> np.ndarray:
        """Remaining work per worker as an ``int64`` vector (0 when idle)."""
        return np.array(
            [0 if c is None else r for c, r in zip(self.current, self.remaining)],
            dtype=np.int64,
        )

    def busy_steps_array(self) -> np.ndarray:
        """Lifetime busy ticks per worker as an ``int64`` vector."""
        return np.asarray(self.busy_steps, dtype=np.int64)

    def n_busy(self) -> int:
        """Number of workers currently executing a node."""
        return sum(1 for c in self.current if c is not None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        busy = self.n_busy()
        queued = sum(len(d) for d in self.deques)
        return f"WorkerArrays(m={self.m}, busy={busy}, queued={queued})"
