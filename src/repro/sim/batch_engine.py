"""Rep-batched execution: one kernel arena for R replicates (ISSUE 10).

Every experiment layer above the simulator -- figure sweeps,
:func:`repro.sweep`, successive-halving rounds in :func:`repro.search`,
ablation deltas -- evaluates *many replicate instances of the same
cell*.  The flat kernel (:mod:`repro.sim.flat_engine`) processes one
instance per call, paying the Python tick-loop cost R times over.  This
module batches the replicates instead:

* :func:`run_batch` concatenates R :class:`~repro.dag.flat.FlatInstance`
  replicates into one block-structured SoA arena -- node/job/edge
  arrays rebased onto a shared id space in a single vectorized pass,
  worker state at rep-offset ``r * m``, one 4096-slot victim-draw block
  per rep -- and executes each replicate's tick loop in the compiled C
  kernel (:mod:`repro.sim._cext`).  Per-rep clocks are fully
  independent: each replicate fast-forwards on its own schedule, and
  the arena exists so the *fixed* per-run Python cost (table builds,
  dispatch, allocation) is paid once for the whole batch.
* **RNG fidelity.**  Each replicate owns a Generator seeded exactly as
  the serial run would seed it.  The C kernel never generates a random
  number: when a draw block is exhausted it calls back into Python,
  which refills the block with the same ``rng.integers(0, m - 1,
  size=4096)`` call (same cadence) the flat kernel would make -- so the
  post-run ``PCG64`` state is bit-identical to serial execution, not
  merely the victim sequence.
* **Bit-identity.**  Results are identical per rep to running
  ``engine="flat"`` R times: same completions, same
  :class:`~repro.sim.result.SimulationStats`, same RNG post-state
  (``tests/sim/test_batch_engine.py`` fuzzes this).  Configurations
  outside the kernel's native scope -- non-uniform victim policies,
  ``steal_half``, weighted admission, ``trace``, samplers,
  ``_fast_forward=False``, unsorted hand-built arrivals -- fall back to
  the per-replicate flat kernel (which itself delegates to the
  reference engine where needed), as does any host without a C
  compiler or with ``REPRO_CEXT=0``.
* :func:`batch_options` is the eligibility probe the sweep layer uses
  to decide whether a scheduler's (cell, rep) tasks may be fused into
  one batched task (see :mod:`repro.experiments.sweep`).

Telemetry: with a sink attached, :func:`run_batch` emits
``batch.start`` (plan: rep count, kernel path), per-replicate
``batch.flush`` (wall time as each rep's results materialize) and
``batch.done``.  Telemetry never changes results.
"""

from __future__ import annotations

import ctypes
import time
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.dag.flat import FlatInstance, flatten_jobset
from repro.dag.job import JobSet
from repro.sim._cext import BLOCK, REFILL_CFUNC, resolve_batch_kernel
from repro.sim.engine import _scheduler_label
from repro.sim.flat_engine import _IDLE_AT, _run_flat
from repro.sim.result import ScheduleResult, SimulationStats
from repro.sim.rng import SeedLike, make_rng

__all__ = ["run_batch", "batch_options"]


class _BatchTables:
    """Immutable union tables for one tuple of replicate instances.

    Everything is derived in one vectorized numpy pass over the
    concatenation of the replicates' CSR arrays, on a shared global id
    space (node ids offset by ``node_off[r]``, edge targets rebased, a
    job's roots contiguous in the global ascending root list).  Cached
    on the first instance of the tuple, so a sweep evaluating many grid
    points over the same R replicates builds the arena once.
    """

    __slots__ = (
        "flats",
        "node_off",
        "job_off",
        "works",
        "eo",
        "et",
        "chain",
        "job_of",
        "jro",
        "roots",
        "preds_master",
        "unfin_master",
        "total_works",
        "n_jobs",
        "sorted_ok",
        "arr_cache",
    )

    def __init__(self, flats: Sequence[FlatInstance]) -> None:
        reps = len(flats)
        n_nodes = np.array([f.n_nodes for f in flats], dtype=np.int64)
        n_jobs = np.array([f.n_jobs for f in flats], dtype=np.int64)
        n_edges = np.array([f.n_edges for f in flats], dtype=np.int64)
        node_off = np.zeros(reps + 1, dtype=np.int64)
        job_off = np.zeros(reps + 1, dtype=np.int64)
        edge_off = np.zeros(reps + 1, dtype=np.int64)
        np.cumsum(n_nodes, out=node_off[1:])
        np.cumsum(n_jobs, out=job_off[1:])
        np.cumsum(n_edges, out=edge_off[1:])
        total_nodes = int(node_off[-1])
        total_jobs = int(job_off[-1])
        total_edges = int(edge_off[-1])

        works = np.concatenate(
            [f.node_works for f in flats] or [np.zeros(0, np.int64)]
        ).astype(np.int64, copy=False)
        eo = np.empty(total_nodes + 1, dtype=np.int64)
        eo[-1] = total_edges
        for r, f in enumerate(flats):
            eo[node_off[r] : node_off[r + 1]] = (
                f.edge_offsets[:-1] + edge_off[r]
            )
        et = np.empty(total_edges, dtype=np.int64)
        for r, f in enumerate(flats):
            et[edge_off[r] : edge_off[r + 1]] = f.edge_targets + node_off[r]
        jno = np.empty(total_jobs + 1, dtype=np.int64)
        jno[-1] = total_nodes
        for r, f in enumerate(flats):
            jno[job_off[r] : job_off[r + 1]] = (
                f.job_node_offsets[:-1] + node_off[r]
            )

        # Derived tables, one vectorized pass over the union -- the
        # exact computation _KernelTables does per instance.
        indeg = np.bincount(et, minlength=total_nodes).astype(
            np.int64, copy=False
        )
        outdeg = np.diff(eo)
        chain = np.full(total_nodes, -1, dtype=np.int64)
        cand = np.flatnonzero(outdeg == 1)
        if cand.size:
            tgt = et[eo[cand]]
            ok = indeg[tgt] == 1
            chain[cand[ok]] = tgt[ok]
        roots = np.flatnonzero(indeg == 0).astype(np.int64, copy=False)
        job_sizes = np.diff(jno)

        self.flats = tuple(flats)
        self.node_off = node_off
        self.job_off = job_off
        self.works = np.ascontiguousarray(works)
        self.eo = eo
        self.et = et
        self.chain = chain
        self.job_of = np.repeat(
            np.arange(total_jobs, dtype=np.int64), job_sizes
        )
        self.jro = np.searchsorted(roots, jno).astype(np.int64, copy=False)
        self.roots = roots
        self.preds_master = indeg
        self.unfin_master = job_sizes.astype(np.int64, copy=False)
        self.total_works = [int(f.node_works.sum()) for f in flats]
        self.n_jobs = [int(x) for x in n_jobs]
        # The flat kernel's delegation predicate, per replicate: a
        # hand-built FlatInstance with unsorted arrivals only has
        # reference-engine semantics.
        self.sorted_ok = [
            bool(np.all(f.arrivals[1:] >= f.arrivals[:-1])) for f in flats
        ]
        #: speed -> global arrival-tick array (same rounding as the
        #: flat kernel's per-instance arr_ticks).
        self.arr_cache: Dict[float, np.ndarray] = {}

    def arr_ticks(self, speed: float) -> np.ndarray:
        ticks = self.arr_cache.get(speed)
        if ticks is None:
            arr = np.concatenate(
                [np.asarray(f.arrivals, dtype=np.float64) for f in self.flats]
                or [np.zeros(0, np.float64)]
            )
            ticks = np.ceil(arr * speed - 1e-9).astype(np.int64)
            self.arr_cache[speed] = ticks
        return ticks


def _batch_tables(flats: Sequence[FlatInstance]) -> _BatchTables:
    """Cached :class:`_BatchTables` for this exact replicate tuple.

    Attached to the first instance (like the flat kernel's per-instance
    table cache); the entry holds strong references to every member, so
    the id-tuple key cannot alias a recycled object.
    """
    key = tuple(id(f) for f in flats)
    anchor = flats[0]
    cached = getattr(anchor, "_batch_tables_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    tables = _BatchTables(flats)
    object.__setattr__(anchor, "_batch_tables_cache", (key, tables))
    return tables


def _ptr(arr: np.ndarray, offset: int = 0) -> ctypes.c_void_p:
    """A C pointer to ``arr[offset]`` (8-byte elements only)."""
    return ctypes.c_void_p(arr.ctypes.data + 8 * int(offset))


def _empty_result(
    flat: FlatInstance,
    label: str,
    m: int,
    speed: float,
    recorded_seed: Any,
) -> ScheduleResult:
    """The n == 0 early return, mirroring the flat kernel exactly."""
    return ScheduleResult(
        scheduler=label,
        m=m,
        speed=speed,
        arrivals=np.asarray(flat.arrivals, dtype=np.float64),
        completions=np.zeros(0, dtype=np.float64),
        weights=np.asarray(flat.weights, dtype=np.float64),
        stats=SimulationStats(
            steal_attempts=0,
            failed_steals=0,
            admissions=0,
            admission_wait_ticks=0,
            ff_skipped_ticks=0,
            max_queue_depth=0,
        ),
        seed=recorded_seed,
    )


def run_batch(
    instances: Sequence[Union[FlatInstance, JobSet]],
    m: int,
    speed: float = 1.0,
    k: int = 0,
    seeds: Optional[Sequence[SeedLike]] = None,
    trace: Optional[Any] = None,
    max_ticks: Optional[int] = None,
    steals_per_tick: int = 1,
    victim_policy: str = "uniform",
    steal_half: bool = False,
    admission: str = "fifo",
    sampler: Optional[Any] = None,
    telemetry: Optional[Any] = None,
    _fast_forward: bool = True,
) -> List[ScheduleResult]:
    """Run steal-k-first work stealing on R replicates in one arena.

    ``instances[r]`` is evaluated with seed ``seeds[r]`` (``seeds`` may
    be omitted for fresh-entropy runs, else must have one entry per
    instance; Generators are honored and advanced exactly as the serial
    flat kernel would advance them).  All other parameters are shared
    across the batch and have the semantics of
    :func:`repro.sim.flat_engine._run_flat`.  Returns one
    :class:`ScheduleResult` per instance, in order, **bit-identical**
    to ``[_run_flat(instances[r], ..., seed=seeds[r]) for r]``.
    """
    # Argument validation mirrors the flat/reference engines verbatim.
    if m < 1:
        raise ValueError(f"need at least one worker, got m={m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    if k < 0:
        raise ValueError(f"steal-k-first requires k >= 0, got {k}")
    if steals_per_tick < 1:
        raise ValueError(
            f"steals_per_tick must be >= 1, got {steals_per_tick}"
        )
    if admission not in ("fifo", "weight"):
        raise ValueError(
            f"unknown admission policy {admission!r}; expected 'fifo' or 'weight'"
        )
    reps = len(instances)
    if seeds is None:
        seeds = [None] * reps
    elif len(seeds) != reps:
        raise ValueError(
            f"need one seed per instance: got {len(seeds)} seeds for "
            f"{reps} instances"
        )
    if reps == 0:
        return []
    sigma = int(steals_per_tick)

    flats: List[FlatInstance] = [
        inst if isinstance(inst, FlatInstance) else flatten_jobset(inst)
        for inst in instances
    ]

    kernel = resolve_batch_kernel()
    native = (
        kernel is not None
        and victim_policy == "uniform"
        and not steal_half
        and admission == "fifo"
        and trace is None
        and sampler is None
        and _fast_forward
    )

    def fallback(r: int) -> ScheduleResult:
        return _run_flat(
            flats[r],
            m,
            speed=speed,
            k=k,
            seed=seeds[r],
            trace=trace,
            max_ticks=max_ticks,
            steals_per_tick=steals_per_tick,
            victim_policy=victim_policy,
            steal_half=steal_half,
            admission=admission,
            sampler=sampler,
            _fast_forward=_fast_forward,
        )

    t_start = time.perf_counter()
    if telemetry is not None:
        telemetry.emit(
            "batch.start",
            n_reps=reps,
            m=m,
            k=k,
            steals_per_tick=sigma,
            kernel="cext" if native else "flat-fallback",
        )

    if not native:
        out: List[ScheduleResult] = []
        for r in range(reps):
            t0 = time.perf_counter()
            out.append(fallback(r))
            if telemetry is not None:
                telemetry.emit(
                    "batch.flush",
                    rep=r,
                    wall_s=round(time.perf_counter() - t0, 6),
                )
        if telemetry is not None:
            telemetry.emit(
                "batch.done",
                n_reps=reps,
                wall_s=round(time.perf_counter() - t_start, 6),
                kernel="flat-fallback",
            )
        return out

    tables = _batch_tables(flats)
    label = _scheduler_label(k, victim_policy, steal_half, admission)
    arr_ticks = tables.arr_ticks(speed)
    node_off = tables.node_off
    job_off = tables.job_off
    total_nodes = int(node_off[-1])
    total_jobs = int(job_off[-1])

    # Mutable run state, allocated fresh per call (the immutable tables
    # above are the cached part).  Worker state is rep-blocked at
    # r * m; node/job state is indexed by global arena ids.
    preds = tables.preds_master.copy()
    unfin = tables.unfin_master.copy()
    completions = np.zeros(total_jobs, dtype=np.float64)
    cur = np.full(reps * m, -1, dtype=np.int64)
    fin = np.full(reps * m, _IDLE_AT, dtype=np.int64)
    fails = np.zeros(reps * m, dtype=np.int64)
    idles = np.empty(reps * m, dtype=np.int64)
    dq_head = np.full(reps * m, -1, dtype=np.int64)
    dq_tail = np.full(reps * m, -1, dtype=np.int64)
    dq_next = np.empty(max(1, total_nodes), dtype=np.int64)
    dq_prev = np.empty(max(1, total_nodes), dtype=np.int64)
    rdy = np.empty(max(1, total_nodes), dtype=np.int64)
    raw = np.zeros((reps, BLOCK), dtype=np.int64)
    io = np.zeros((reps, 8), dtype=np.int64)

    results: List[Optional[ScheduleResult]] = [None] * reps
    for r in range(reps):
        t0 = time.perf_counter()
        n_r = tables.n_jobs[r]
        recorded_seed = (
            None if isinstance(seeds[r], np.random.Generator) else seeds[r]
        )
        if n_r == 0:
            results[r] = _empty_result(
                flats[r], label, m, speed, recorded_seed
            )
        elif not tables.sorted_ok[r]:
            # Unsorted hand-built arrivals: only the reference engine
            # defines the semantics; the flat kernel delegates, and so
            # do we -- per replicate, identically.
            results[r] = fallback(r)
        else:
            rng = make_rng(seeds[r])
            row = raw[r]
            if m > 1:
                # Same up-front first block as UniformVictim / the flat
                # kernel; refills happen lazily from C via the callback.
                row[:] = rng.integers(0, m - 1, size=BLOCK)

            def _refill(rep: int, _rng=rng, _row=row) -> None:
                _row[:] = _rng.integers(0, m - 1, size=BLOCK)

            cb = REFILL_CFUNC(_refill)
            if max_ticks is None:
                # Same loose feasibility bound as the serial engines,
                # from this replicate's own totals.
                last_arr = int(arr_ticks[job_off[r + 1] - 1])
                rep_max_ticks = int(
                    tables.total_works[r] + (k + 2) * n_r + last_arr
                    + 64 * m + 64
                ) * 4
            else:
                rep_max_ticks = max_ticks
            rc = kernel(
                _ptr(tables.works),
                _ptr(tables.eo),
                _ptr(tables.et),
                _ptr(tables.chain),
                _ptr(tables.job_of),
                _ptr(tables.jro, job_off[r]),
                _ptr(tables.roots),
                _ptr(arr_ticks, job_off[r]),
                _ptr(preds),
                _ptr(unfin),
                _ptr(completions),
                _ptr(cur, r * m),
                _ptr(fin, r * m),
                _ptr(fails, r * m),
                _ptr(idles, r * m),
                _ptr(dq_head, r * m),
                _ptr(dq_tail, r * m),
                _ptr(dq_next),
                _ptr(dq_prev),
                _ptr(rdy),
                _ptr(row),
                n_r,
                m,
                int(k),
                sigma,
                rep_max_ticks,
                float(speed),
                _ptr(io, r * 8),
                cb,
                r,
            )
            if rc != 0:
                raise RuntimeError(
                    f"work-stealing run exceeded max_ticks={rep_max_ticks} "
                    f"({int(io[r, 7])}/{n_r} jobs complete) -- instance "
                    f"may be overloaded"
                )
            stats = SimulationStats()
            stats.busy_steps = tables.total_works[r]
            stats.steal_attempts = int(io[r, 0])
            stats.failed_steals = int(io[r, 1])
            stats.admissions = n_r
            stats.idle_steps = int(io[r, 2])
            stats.elapsed_ticks = int(io[r, 6])
            stats.admission_wait_ticks = int(io[r, 3])
            stats.ff_skipped_ticks = int(io[r, 4])
            stats.max_queue_depth = int(io[r, 5])
            results[r] = ScheduleResult(
                scheduler=label,
                m=m,
                speed=speed,
                arrivals=np.asarray(flats[r].arrivals, dtype=np.float64),
                completions=completions[job_off[r] : job_off[r + 1]],
                weights=np.asarray(flats[r].weights, dtype=np.float64),
                stats=stats,
                seed=recorded_seed,
            )
        if telemetry is not None:
            telemetry.emit(
                "batch.flush",
                rep=r,
                wall_s=round(time.perf_counter() - t0, 6),
            )
    if telemetry is not None:
        telemetry.emit(
            "batch.done",
            n_reps=reps,
            wall_s=round(time.perf_counter() - t_start, 6),
            kernel="cext",
        )
    return results  # type: ignore[return-value]


def batch_options(scheduler: Any) -> Optional[Dict[str, Any]]:
    """Engine kwargs for :func:`run_batch` if ``scheduler`` is batchable.

    The sweep layer calls this on one probe instance per grid point to
    decide whether that cell's (rep) tasks may be fused into a single
    batched task.  Batchable means the scheduler is a plain engine
    adapter (``repro.run``'s ``work-stealing`` / ``flat`` / ``batch``
    engines) or an unmodified
    :class:`~repro.core.work_stealing.WorkStealingScheduler`, with every
    knob inside the batch kernel's native scope -- for those, all three
    execution paths (reference, flat, batch) are pinned bit-identical,
    so fusing reps cannot change any number.  Returns ``None`` for
    anything else (custom schedulers, subclasses overriding ``run``,
    weighted admission, non-uniform victim policies, ``steal_half``,
    traces, samplers).
    """
    engine = getattr(scheduler, "engine", None)
    if engine in ("work-stealing", "flat", "batch"):
        kwargs = dict(getattr(scheduler, "engine_kwargs", None) or {})
    else:
        from repro.core.work_stealing import WorkStealingScheduler

        if (
            isinstance(scheduler, WorkStealingScheduler)
            and type(scheduler).run is WorkStealingScheduler.run
        ):
            kwargs = {
                "k": scheduler.k,
                "steals_per_tick": scheduler.steals_per_tick,
                "victim_policy": scheduler.victim_policy,
                "steal_half": scheduler.steal_half,
                "admission": scheduler.admission,
            }
        else:
            return None
    if (
        kwargs.get("victim_policy", "uniform") != "uniform"
        or kwargs.get("steal_half", False)
        or kwargs.get("admission", "fifo") != "fifo"
        or kwargs.get("trace") is not None
        or kwargs.get("sampler") is not None
        or not kwargs.get("_fast_forward", True)
    ):
        return None
    return kwargs
