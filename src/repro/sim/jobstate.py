"""Mutable per-job execution state.

:class:`JobExecution` is the engines' working copy of a job: which nodes
are ready, how much of each in-flight node remains, how many nodes are
still unfinished.  The immutable :class:`~repro.dag.graph.JobDag` is never
modified, so one DAG can back many simultaneous simulations.

This class is also the **non-clairvoyance boundary**: scheduling policies
receive only the interface below -- the currently ready frontier and
arrival metadata -- and the engines never let a policy peek at unreleased
structure, remaining work, total work or span (the clairvoyant baselines
in :mod:`repro.core.greedy` are explicitly documented exceptions that read
``job.dag`` directly).
"""

from __future__ import annotations

from typing import List, Optional

from repro.dag.job import Job


class JobExecution:
    """Execution state of one job inside an engine.

    Attributes
    ----------
    job:
        The immutable job (dag, arrival, weight, id).
    remaining_preds:
        Per-node count of not-yet-finished predecessors; a node is *ready*
        when its count reaches zero and it has not completed.
    remaining_work:
        Per-node remaining processing in work units.  The event engine
        stores fractional progress here (floats); the tick engine keeps
        integers.
    ready:
        Node ids that are ready and not currently finished.  The event
        engine maintains this list directly; the tick engine instead
        routes ready nodes through worker deques, so it leaves this empty.
    unfinished:
        Count of nodes not yet completed; the job is done at zero.
    completion:
        Completion time in time units, set exactly once by the engine.
    works / succs:
        The DAG's per-node work and successor tuples, cached at
        construction.  The tick engine's completion cascade reads them
        once per executed node; going through ``self.job.dag.works``
        would cost two attribute hops plus a property call each time.
    """

    __slots__ = (
        "job",
        "remaining_preds",
        "remaining_work",
        "ready",
        "unfinished",
        "completion",
        "attained",
        "works",
        "succs",
    )

    def __init__(self, job: Job) -> None:
        self.job = job
        dag = job.dag
        self.remaining_preds: List[int] = list(dag.predecessor_counts)
        self.remaining_work: List[float] = [float(w) for w in dag.works]
        self.ready: List[int] = list(dag.roots)
        self.unfinished: int = dag.n_nodes
        self.completion: Optional[float] = None
        #: Work units executed so far, maintained by the event engine;
        #: dynamic policies (least-attained-service) read it.
        self.attained: float = 0.0
        self.works = dag.works
        self.succs = dag.successors

    # -- identity / metadata --------------------------------------------

    @property
    def job_id(self) -> int:
        """Dense id of the underlying job."""
        return self.job.job_id

    @property
    def arrival(self) -> float:
        """Release time of the underlying job."""
        return self.job.arrival

    @property
    def weight(self) -> float:
        """Weight of the underlying job."""
        return self.job.weight

    @property
    def done(self) -> bool:
        """True when every node of the job has finished."""
        return self.unfinished == 0

    # -- engine operations ------------------------------------------------

    def finish_node(self, node: int) -> List[int]:
        """Mark ``node`` complete; return the node ids it newly enables.

        The caller is responsible for having driven the node's remaining
        work to zero and for removing it from whatever ready structure
        (this object's ``ready`` list or a worker deque) held it.
        """
        if self.unfinished <= 0:
            raise RuntimeError(
                f"job {self.job_id}: finish_node({node}) called after completion"
            )
        self.unfinished -= 1
        enabled: List[int] = []
        for succ in self.job.dag.successors[node]:
            self.remaining_preds[succ] -= 1
            if self.remaining_preds[succ] == 0:
                enabled.append(succ)
        return enabled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobExecution(job={self.job_id}, unfinished={self.unfinished}/"
            f"{self.job.dag.n_nodes}, completion={self.completion})"
        )
