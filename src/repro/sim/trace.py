"""Execution tracing and schedule-validity audits.

A :class:`TraceRecorder` collects every contiguous execution segment of a
run as ``(worker, job, node, start, end)`` intervals.  The
:func:`audit_trace` function then re-derives, from the trace alone, that
the schedule was *feasible*:

1. no processor runs two nodes at once,
2. at most ``m`` processors run at any instant,
3. a node runs on at most one processor at a time,
4. every node receives exactly its processing time (scaled by speed),
5. no node starts before all its predecessors finish,
6. no node starts before its job arrives.

Tests run audits on small instances of every scheduler; the engines
themselves never rely on the trace, so auditing is a genuinely
independent check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dag.job import JobSet

#: Tolerance for interval arithmetic in time units.
_EPS = 1e-6


@dataclass(frozen=True)
class TraceInterval:
    """One contiguous execution segment of one node on one processor."""

    worker: int
    job_id: int
    node: int
    start: float
    end: float


class TraceRecorder:
    """Accumulates execution intervals during a simulated run.

    Recording is append-only; engines call :meth:`record` once per
    contiguous segment.  Zero-length segments are ignored.
    """

    def __init__(self) -> None:
        self._intervals: List[TraceInterval] = []

    def record(
        self, worker: int, job_id: int, node: int, start: float, end: float
    ) -> None:
        """Record that ``worker`` ran ``(job_id, node)`` over ``[start, end)``."""
        if end - start <= 0.0:
            return
        self._intervals.append(TraceInterval(worker, job_id, node, start, end))

    @property
    def intervals(self) -> List[TraceInterval]:
        """All recorded segments, in recording order."""
        return self._intervals

    def intervals_of(self, job_id: int, node: int) -> List[TraceInterval]:
        """Segments of a particular node, sorted by start time."""
        return sorted(
            (iv for iv in self._intervals if iv.job_id == job_id and iv.node == node),
            key=lambda iv: iv.start,
        )

    def busy_time(self) -> float:
        """Total processor-time spent executing (sum of segment lengths)."""
        return sum(iv.end - iv.start for iv in self._intervals)


def _check_disjoint(
    intervals: List[Tuple[float, float]], label: str
) -> None:
    """Assert a set of intervals is pairwise non-overlapping."""
    intervals.sort()
    for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1 - _EPS, (
            f"{label}: interval starting {s2} overlaps one ending {e1}"
        )


def audit_trace(
    trace: TraceRecorder,
    jobset: JobSet,
    m: int,
    speed: float,
) -> None:
    """Verify feasibility of a traced schedule; raises ``AssertionError``.

    See the module docstring for the list of checks.  The audit assumes
    the run completed (every node of every job appears in the trace).
    """
    ivs = trace.intervals

    # (1) per-processor exclusivity
    by_worker: Dict[int, List[Tuple[float, float]]] = {}
    for iv in ivs:
        by_worker.setdefault(iv.worker, []).append((iv.start, iv.end))
    for w, spans in by_worker.items():
        _check_disjoint(spans, f"worker {w}")

    # (2) global concurrency bound: sweep over start/end events
    events: List[Tuple[float, int]] = []
    for iv in ivs:
        events.append((iv.start, 1))
        events.append((iv.end, -1))
    events.sort(key=lambda e: (e[0], e[1]))  # ends before starts at ties
    running = 0
    for _t, delta in events:
        running += delta
        assert running <= m, f"more than m={m} processors busy simultaneously"

    # (3)+(4) per-node: exclusivity and exact service
    per_node: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
    for iv in ivs:
        per_node.setdefault((iv.job_id, iv.node), []).append((iv.start, iv.end))

    node_first_start: Dict[Tuple[int, int], float] = {}
    node_last_end: Dict[Tuple[int, int], float] = {}
    for key, spans in per_node.items():
        _check_disjoint(spans, f"node {key}")
        node_first_start[key] = min(s for s, _ in spans)
        node_last_end[key] = max(e for _, e in spans)
        job_id, node = key
        want = jobset[job_id].dag.works[node] / speed
        got = sum(e - s for s, e in spans)
        assert abs(got - want) <= _EPS * max(1.0, want), (
            f"node {key} received {got} time units of service, expected {want}"
        )

    # completeness: every node of every job must appear
    for job in jobset:
        for v in range(job.dag.n_nodes):
            assert (job.job_id, v) in per_node, (
                f"node ({job.job_id}, {v}) never executed"
            )

    # (5) precedence and (6) release times
    for job in jobset:
        for v in range(job.dag.n_nodes):
            start = node_first_start[(job.job_id, v)]
            assert start >= job.arrival - _EPS, (
                f"node ({job.job_id}, {v}) started at {start} before "
                f"arrival {job.arrival}"
            )
            for u in job.dag.successors[v]:
                pred_end = node_last_end[(job.job_id, v)]
                succ_start = node_first_start[(job.job_id, u)]
                assert succ_start >= pred_end - _EPS, (
                    f"node ({job.job_id}, {u}) started at {succ_start} "
                    f"before predecessor {v} finished at {pred_end}"
                )
