"""System-state sampling for the work-stealing engine.

A :class:`SystemSampler` passed to
:func:`repro.sim.engine.run_work_stealing` snapshots the scheduler's
internal state -- busy workers, global-queue length, stealable deques,
completed jobs -- at (approximately) regular tick intervals.  This is
the instrumentation behind the Section 6 narrative: under admit-first at
load, snapshots show many busy workers but *zero stealable deques*
(each worker grinding its own job sequentially), while steal-k-first
shows few open jobs with stealable work spread across deques.

Sampling semantics: the engine records a snapshot at the first decision
boundary at or after each sampling tick.  Fast-forwarded spans (where no
decision happens) therefore contribute one snapshot, not many -- the
state was provably constant inside them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class SystemSample:
    """One snapshot of engine state.

    Attributes
    ----------
    tick:
        Tick index of the snapshot (time = tick / speed).
    n_busy:
        Workers executing a node.
    queue_length:
        Jobs waiting in the global admission queue.
    stealable_deques:
        Worker deques holding at least one ready node.
    completed:
        Jobs fully finished so far.
    """

    tick: int
    n_busy: int
    queue_length: int
    stealable_deques: int
    completed: int


class SystemSampler:
    """Collects :class:`SystemSample` rows every ``every`` ticks."""

    def __init__(self, every: int = 64) -> None:
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every}")
        self.every = int(every)
        self.samples: List[SystemSample] = []
        self._next_tick = 0

    def maybe_record(
        self,
        tick: int,
        n_busy: int,
        queue_length: int,
        stealable_deques: int,
        completed: int,
    ) -> None:
        """Record a snapshot if the sampling tick has been reached."""
        if tick < self._next_tick:
            return
        self.samples.append(
            SystemSample(tick, n_busy, queue_length, stealable_deques, completed)
        )
        # One sample per crossing, even after a long fast-forward.
        self._next_tick = tick + self.every

    # -- column views ------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """One field across all samples, as an array (for plotting/tests)."""
        return np.array([getattr(s, name) for s in self.samples])

    def mean_busy(self) -> float:
        """Average busy-worker count across samples."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return float(self.column("n_busy").mean())

    def peak_queue_length(self) -> int:
        """High-water mark of the admission queue across samples."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return int(self.column("queue_length").max())
