"""System-state sampling for the work-stealing engine.

A :class:`SystemSampler` passed to
:func:`repro.sim.engine.run_work_stealing` snapshots the scheduler's
internal state -- busy workers, global-queue length, stealable deques,
completed jobs -- at (approximately) regular tick intervals.  This is
the instrumentation behind the Section 6 narrative: under admit-first at
load, snapshots show many busy workers but *zero stealable deques*
(each worker grinding its own job sequentially), while steal-k-first
shows few open jobs with stealable work spread across deques.

Sampling granularity
--------------------
The engine records a snapshot at the first decision boundary at or after
each sampling tick (:meth:`SystemSampler.maybe_record`), *plus* one
snapshot at the entry and exit tick of every fast-forwarded span
(:meth:`SystemSampler.record_boundary`).  A fast-forwarded span is one
in which the engine proved no scheduling decision can occur, so the
state is constant inside it: the entry snapshot captures that constant
state and the exit snapshot captures the first tick where decisions
resume.  Time series therefore have no silent gaps across skipped spans
-- a long idle or all-busy stretch contributes exactly its two boundary
rows rather than nothing at all.  Ticks are strictly increasing across
the combined stream (same-tick duplicates are dropped), and a boundary
snapshot restarts the periodic cadence, so consecutive samples are never
more than one fast-forward span plus ``every`` ticks apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class SystemSample:
    """One snapshot of engine state.

    Attributes
    ----------
    tick:
        Tick index of the snapshot (time = tick / speed).
    n_busy:
        Workers executing a node.
    queue_length:
        Jobs waiting in the global admission queue.
    stealable_deques:
        Worker deques holding at least one ready node.
    completed:
        Jobs fully finished so far.
    """

    tick: int
    n_busy: int
    queue_length: int
    stealable_deques: int
    completed: int


class SystemSampler:
    """Collects :class:`SystemSample` rows every ``every`` ticks."""

    def __init__(self, every: int = 64) -> None:
        if every < 1:
            raise ValueError(f"sampling interval must be >= 1, got {every}")
        self.every = int(every)
        self.samples: List[SystemSample] = []
        self._next_tick = 0

    def maybe_record(
        self,
        tick: int,
        n_busy: int,
        queue_length: int,
        stealable_deques: int,
        completed: int,
    ) -> None:
        """Record a snapshot if the sampling tick has been reached."""
        if tick < self._next_tick:
            return
        samples = self.samples
        if samples and tick <= samples[-1].tick:
            return  # a boundary snapshot already covers this tick
        samples.append(
            SystemSample(tick, n_busy, queue_length, stealable_deques, completed)
        )
        # One sample per crossing, even after a long fast-forward.
        self._next_tick = tick + self.every

    def record_boundary(
        self,
        tick: int,
        n_busy: int,
        queue_length: int,
        stealable_deques: int,
        completed: int,
    ) -> None:
        """Record a snapshot at a fast-forward boundary, unconditionally.

        Called by the engine at the entry and exit tick of each
        fast-forwarded span regardless of the periodic cadence, so the
        constant state inside the span (and the state right after it) is
        visible in the time series.  Same-tick duplicates are dropped to
        keep sample ticks strictly increasing; a recorded boundary
        restarts the periodic cadence.
        """
        samples = self.samples
        if samples and tick <= samples[-1].tick:
            return
        samples.append(
            SystemSample(tick, n_busy, queue_length, stealable_deques, completed)
        )
        self._next_tick = tick + self.every

    # -- column views ------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """One field across all samples, as an array (for plotting/tests)."""
        return np.array([getattr(s, name) for s in self.samples])

    def mean_busy(self) -> float:
        """Average busy-worker count across samples."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return float(self.column("n_busy").mean())

    def peak_queue_length(self) -> int:
        """High-water mark of the admission queue across samples."""
        if not self.samples:
            raise ValueError("no samples recorded")
        return int(self.column("queue_length").max())
