"""Compile-on-demand loader for the batched C tick kernel.

The batch engine's hot loop (:mod:`repro.sim.batch_engine`) is a C
transcription of the flat kernel's native-scope semantics
(``src/repro/sim/_batch_kernel.c``).  Nothing is installed and no build
backend is required: the source ships with the package and is compiled
once per host with the system C compiler (``cc`` / ``gcc`` / ``clang``)
into a content-addressed shared object under a per-user cache
directory, then loaded with :mod:`ctypes`.  Hosts without a compiler --
or with ``REPRO_CEXT=0`` -- simply run the pure-Python flat kernel per
replicate instead; results are bit-identical either way, which is the
same optional-accelerator contract as the flat kernel's ``REPRO_NUMBA``
scanner.

Environment override ``REPRO_CEXT``: ``0`` disables the compiled kernel
even when a compiler exists, ``1`` requests it and emits a one-time
:class:`RuntimeWarning` when it cannot be built or loaded, unset tries
silently.  ``REPRO_CEXT_CACHE`` overrides the shared-object cache
directory (default: ``<tempdir>/repro-cext-<uid>``).

Resolution is cached per process, exactly like the numba scanner in
:mod:`repro.sim.flat_engine`; tests reset the module globals to probe
each path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import warnings
from pathlib import Path
from typing import Any, Optional

#: Victim-draw block size; must match flat_engine._BLOCK and the C
#: kernel's BLOCK constant (one block = one
#: ``rng.integers(0, m - 1, size=BLOCK)`` call).
BLOCK = 4096

#: The refill callback signature: C hands back the replicate index whose
#: draw block is exhausted; Python refills it in place from that rep's
#: Generator (keeping the PCG64 stream bit-identical to serial runs).
REFILL_CFUNC = ctypes.CFUNCTYPE(None, ctypes.c_int64)

_KERNEL_SOURCE = Path(__file__).with_name("_batch_kernel.c")

_cext_fn: Any = None
_cext_resolved = False
_cext_warned = False


def _cache_dir() -> Path:
    env = os.environ.get("REPRO_CEXT_CACHE")
    if env:
        return Path(env)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-cext-{uid}"


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _bind(lib: ctypes.CDLL) -> Any:
    """Attach argtypes/restype to the kernel entry point."""
    fn = lib.repro_batch_run_rep
    ptr = ctypes.c_void_p
    i64 = ctypes.c_int64
    # 21 array pointers, 5 int64 scalars, speed, io pointer, callback,
    # rep index -- the exact order of the C signature.
    fn.argtypes = (
        [ptr] * 21 + [i64] * 5 + [ctypes.c_double, ptr, REFILL_CFUNC, i64]
    )
    fn.restype = i64
    return fn


def _build_and_load() -> Any:
    """Compile (if not cached) and load the kernel; raises on failure."""
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    source = _KERNEL_SOURCE.read_bytes()
    digest = hashlib.sha256(source).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"batch_kernel-{digest}.so"
    if not so_path.exists():
        cache.mkdir(parents=True, exist_ok=True)
        # Compile to a unique temp name, then atomically rename: two
        # processes racing to build the same kernel both succeed.
        fd, tmp_name = tempfile.mkstemp(
            suffix=".so", prefix="batch_kernel-", dir=cache
        )
        os.close(fd)
        try:
            subprocess.run(
                [
                    compiler,
                    "-O2",
                    "-shared",
                    "-fPIC",
                    "-o",
                    tmp_name,
                    str(_KERNEL_SOURCE),
                ],
                check=True,
                capture_output=True,
            )
            os.replace(tmp_name, so_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    return _bind(ctypes.CDLL(str(so_path)))


def resolve_batch_kernel() -> Any:
    """The compiled kernel entry point, or ``None`` for the Python path.

    Resolution is cached per process.  ``REPRO_CEXT=0`` disables,
    ``REPRO_CEXT=1`` requests the compiled kernel and warns once
    (RuntimeWarning) when it cannot be built, unset auto-detects
    silently.
    """
    global _cext_fn, _cext_resolved, _cext_warned
    if _cext_resolved:
        return _cext_fn
    pref = os.environ.get("REPRO_CEXT", "").strip()
    if pref == "0":
        _cext_resolved = True
        return None
    try:
        _cext_fn = _build_and_load()
    except Exception as exc:
        if pref == "1" and not _cext_warned:
            _cext_warned = True
            warnings.warn(
                f"REPRO_CEXT=1 requested the compiled batch kernel, but "
                f"it could not be built or loaded "
                f"({type(exc).__name__}: {exc}); falling back to the "
                f"per-replicate flat kernel (results are identical, "
                f"only slower)",
                RuntimeWarning,
                stacklevel=3,
            )
        _cext_fn = None
    _cext_resolved = True
    return _cext_fn
