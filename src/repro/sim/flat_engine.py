"""Flat-CSR tick kernel: the ``engine="flat"`` backend (ISSUE 6).

Replays the reference tick engine (:func:`repro.sim.engine._run_work_stealing`)
bit-identically -- same completions, same :class:`SimulationStats`
counters, same victim-RNG draw sequence -- while advancing the
simulation over :class:`~repro.dag.flat.FlatInstance` CSR arrays instead
of the ``JobExecution`` object graph.  The kernel therefore consumes the
shared-memory wire format directly: sweep workers run it on attached
buffers with no ``to_jobset()`` round trip and no per-run object
construction.

Where the speed comes from
--------------------------
The reference engine's cost is dominated by per-tick per-worker
bookkeeping and per-attempt victim draws.  This kernel removes both:

* **Completion-driven phase A.**  Instead of decrementing a remaining
  counter for every busy worker every tick, each worker stores the
  absolute tick at whose end its current node finishes; phase A runs
  only on ticks where ``min(finish) == t``.  The all-busy and
  nothing-stealable fast-forwards become pure time jumps (no per-worker
  array sweeps), while still stopping at exactly the same per-node
  completion ticks as the reference, so ``ff_skipped_ticks`` matches.
* **Chain fast path.**  ``chain_next[v]`` is precomputed (vectorized over
  the CSR arrays) as the sole successor of ``v`` when ``outdeg(v) == 1``
  and that successor has in-degree 1.  Completing such a node continues
  the chain in O(1): no edge walk, no predecessor decrement (the
  finished node was the only predecessor), no deque interaction.  Every
  chain completion still occupies its own tick -- only the cascade work
  is shortcut, never the time accounting.
* **Batched steal resolution.**  The reference draws one victim per
  attempt from :class:`~repro.sim.policies.UniformVictim`'s buffered
  4096-draw blocks.  This kernel consumes the *same* blocks (same RNG,
  same refill cadence, hence the same stream) but resolves a burst of
  failed attempts at once: the positions of each candidate raw value in
  the current block are extracted lazily (one vectorized
  ``flatnonzero`` per value per block) and walked with monotone
  pointers, so a run of failed draws costs amortized O(1) per candidate
  victim instead of one Python iteration per draw.  Short bursts and
  draws against mostly-non-empty deques use a direct scan instead; all
  paths consume the identical draw count and pick the identical victim.
* **Analytic invariants.**  ``busy_steps == total work`` and
  ``admissions == n`` hold for every complete run (the test suite
  asserts the former for every engine), so neither is accumulated in
  the hot loop.

Per-worker state lives in plain Python lists, not numpy arrays: the
repository's measured doctrine (see :mod:`repro.sim.worker`) is that
numpy *scalar* indexing costs ~4x a list index at realistic ``m``.
numpy appears at the edges -- building the derived CSR tables
(in-degrees via ``bincount`` over ``edge_targets``, roots, chain links,
all vectorized) and drawing victim blocks -- where whole-array work wins.

Optional numba path
-------------------
When numba is importable the block scanner (the innermost "first
successful draw" search) is compiled with ``@njit``; the fallback is the
pure-Python scanner and results are identical either way.  Environment
override ``REPRO_NUMBA``: ``0`` disables numba even if present, ``1``
requests it and emits a one-time :class:`RuntimeWarning` if it cannot be
imported, unset tries silently.

Scope and delegation
--------------------
The kernel natively supports the paper's analyzed configuration space:
uniform victim selection, FIFO admission, single-entry steals, any
``k`` / ``steals_per_tick`` / ``speed`` / ``m`` / seed, samplers, and the
``_fast_forward=False`` brute-force mode.  The ablation knobs outside
that space (``victim_policy != "uniform"``, ``steal_half``, weighted
admission, trace recording) delegate to the reference engine, which is
bit-identical by definition; so is a hand-built ``FlatInstance`` whose
arrivals are not sorted (a :class:`~repro.dag.job.JobSet` re-sorts, so
the flat job order would not match the reference's job ids).
"""

from __future__ import annotations

import gc
import os
import warnings
from collections import deque
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.dag.flat import FlatInstance, flatten_jobset, to_jobset
from repro.dag.job import JobSet
from repro.sim.engine import _run_work_stealing, _scheduler_label
from repro.sim.result import ScheduleResult, SimulationStats
from repro.sim.rng import SeedLike, make_rng
from repro.sim.sampling import SystemSampler

#: Victim-draw block size; must equal UniformVictim's default block so the
#: kernel consumes the identical RNG stream (one block = one
#: ``rng.integers(0, m - 1, size=_BLOCK)`` call, refilled lazily).
_BLOCK = 4096

#: Absolute-finish-tick sentinel for idle workers (cf. worker.IDLE, which
#: is a *remaining-work* sentinel; this one is compared against ticks).
_IDLE_AT = 1 << 62

#: Live-attempt bursts shorter than this scan the draw list directly;
#: longer bursts amortize the per-value position index (measured
#: crossover on the 500-job reference workload).
_SHORT_BURST = 8

# ----------------------------------------------------------------------
# Optional numba block scanner
# ----------------------------------------------------------------------

_numba_scan: Any = None
_numba_resolved = False
_numba_warned = False


def _resolve_numba_scan() -> Any:
    """The compiled first-hit scanner, or ``None`` for the Python path.

    Resolution is cached per process.  ``REPRO_NUMBA=0`` disables,
    ``REPRO_NUMBA=1`` requests numba and warns once (RuntimeWarning) if
    it is not importable, unset auto-detects silently.
    """
    global _numba_scan, _numba_resolved, _numba_warned
    if _numba_resolved:
        return _numba_scan
    pref = os.environ.get("REPRO_NUMBA", "").strip()
    if pref == "0":
        _numba_resolved = True
        return None
    try:
        from numba import njit  # type: ignore[import-not-found]
    except ImportError:
        if pref == "1" and not _numba_warned:
            _numba_warned = True
            warnings.warn(
                "REPRO_NUMBA=1 requested the numba flat-kernel scanner, "
                "but numba is not importable; falling back to the pure "
                "numpy/list path (results are identical, only slower)",
                RuntimeWarning,
                stacklevel=3,
            )
        _numba_resolved = True
        return None

    @njit(cache=False, nogil=True)
    def _scan(raw, nonempty, start, stop, thief):  # pragma: no cover - needs numba
        for j in range(start, stop):
            v = raw[j]
            if v >= thief:
                v += 1
            if nonempty[v]:
                return j
        return -1

    _numba_scan = _scan
    _numba_resolved = True
    return _numba_scan


# ----------------------------------------------------------------------
# Slow-path visibility (ISSUE 10 satellite)
# ----------------------------------------------------------------------

_SLOW_PATH_WARNED = False


def _slow_path_reasons(
    victim_policy: str,
    steal_half: bool,
    admission: str,
    trace: Any,
) -> tuple:
    """The configuration knobs forcing delegation to the reference engine.

    Only *configuration* choices are listed (the things a caller can
    change); data-shape fallbacks such as unsorted hand-built arrivals
    are not counted -- they are a property of the instance, not of the
    config.
    """
    reasons = []
    if victim_policy != "uniform":
        reasons.append(f"victim_policy={victim_policy!r}")
    if steal_half:
        reasons.append("steal_half=True")
    if admission != "fifo":
        reasons.append(f"admission={admission!r}")
    if trace is not None:
        reasons.append("trace=<TraceRecorder>")
    return tuple(reasons)


def _warn_slow_path(reasons: tuple) -> None:
    """One-time RuntimeWarning when a config falls off the flat kernel.

    The reference engine is ~8x slower than the flat kernel; before
    this warning the fallback was silent and a sweep that looked
    mysteriously slow gave no hint why.  Warned once per process (like
    the REPRO_NUMBA resolution warning); the paired
    ``dispatch.slow_path`` telemetry event (emitted by the
    :func:`repro.run` facade and the sweep dispatcher) records every
    occurrence for machine consumption.
    """
    global _SLOW_PATH_WARNED
    if _SLOW_PATH_WARNED or not reasons:
        return
    _SLOW_PATH_WARNED = True
    warnings.warn(
        f"this configuration ({', '.join(reasons)}) is outside the flat "
        f"kernel's native scope and falls back to the ~8x-slower "
        f"reference engine; results are identical, only slower "
        f"(this warning is shown once per process)",
        RuntimeWarning,
        stacklevel=4,
    )


# ----------------------------------------------------------------------
# Derived CSR tables (cached per FlatInstance)
# ----------------------------------------------------------------------


class _KernelTables:
    """Immutable per-instance tables the kernel derives from the CSR arrays.

    Everything here is computed once per :class:`FlatInstance` with
    vectorized numpy (in-degrees via ``bincount`` over ``edge_targets``,
    roots, chain links) and then converted to plain lists for the scalar
    hot loop; repeated runs on the same instance -- a sweep repetition,
    a benchmark round -- reuse the cached tables and only copy the two
    mutable vectors (predecessor counts, per-job unfinished counts).
    """

    __slots__ = (
        "works",
        "eo",
        "et",
        "chain",
        "job_of",
        "jro",
        "roots",
        "preds_master",
        "unfin_master",
        "total_work",
        "arr_cache",
    )

    def __init__(self, flat: FlatInstance) -> None:
        eo_np = flat.edge_offsets
        et_np = flat.edge_targets
        jno_np = flat.job_node_offsets
        n_nodes = flat.n_nodes
        n_jobs = flat.n_jobs

        indeg = np.bincount(et_np, minlength=n_nodes)
        outdeg = np.diff(eo_np)
        chain_np = np.full(n_nodes, -1, dtype=np.int64)
        cand = np.flatnonzero(outdeg == 1)
        if cand.size:
            tgt = et_np[eo_np[cand]]
            ok = indeg[tgt] == 1
            chain_np[cand[ok]] = tgt[ok]
        roots_np = np.flatnonzero(indeg == 0)
        job_sizes = np.diff(jno_np)

        self.works: List[int] = flat.node_works.tolist()
        self.eo: List[int] = eo_np.tolist()
        self.et: List[int] = et_np.tolist()
        self.chain: List[int] = chain_np.tolist()
        self.job_of: List[int] = np.repeat(
            np.arange(n_jobs, dtype=np.int64), job_sizes
        ).tolist()
        self.jro: List[int] = np.searchsorted(roots_np, jno_np).tolist()
        self.roots: List[int] = roots_np.tolist()
        self.preds_master: List[int] = indeg.tolist()
        self.unfin_master: List[int] = job_sizes.tolist()
        self.total_work = int(flat.node_works.sum())
        #: speed -> arrival-tick list (the reference's ``arr_ticks``).
        self.arr_cache: Dict[float, List[int]] = {}

    def arr_ticks(self, arrivals: np.ndarray, speed: float) -> List[int]:
        ticks = self.arr_cache.get(speed)
        if ticks is None:
            ticks = [
                int(v)
                for v in np.ceil(arrivals * speed - 1e-9).astype(np.int64)
            ]
            self.arr_cache[speed] = ticks
        return ticks


def _kernel_tables(flat: FlatInstance) -> _KernelTables:
    """Cached :class:`_KernelTables` for ``flat`` (attached to the instance)."""
    tables = getattr(flat, "_kernel_tables_cache", None)
    if tables is None:
        # The build materializes tens of millions of acyclic objects
        # (ints inside lists); with the collector enabled, the gen-2
        # passes it triggers walk the growing tables repeatedly, which
        # can triple the build time at paper scale (100k jobs).
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            tables = _KernelTables(flat)
        finally:
            if was_enabled:
                gc.enable()
        # FlatInstance is a frozen dataclass; the cache is derived state,
        # not content, so attach it through object.__setattr__.
        object.__setattr__(flat, "_kernel_tables_cache", tables)
    return tables


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


def _run_flat(
    instance: Union[FlatInstance, JobSet],
    m: int,
    speed: float = 1.0,
    k: int = 0,
    seed: SeedLike = None,
    trace: Optional[Any] = None,
    max_ticks: Optional[int] = None,
    steals_per_tick: int = 1,
    victim_policy: str = "uniform",
    steal_half: bool = False,
    admission: str = "fifo",
    sampler: Optional[SystemSampler] = None,
    _fast_forward: bool = True,
) -> ScheduleResult:
    """Simulate steal-k-first work stealing on flat CSR state.

    Accepts either a :class:`FlatInstance` (the shared-memory / sweep
    path -- no object graph is ever built) or a :class:`JobSet` (which
    is flattened once and cached on the set).  Parameters, semantics and
    the returned :class:`ScheduleResult` are exactly those of
    :func:`repro.sim.engine._run_work_stealing`; the equivalence suite
    asserts bit-identity.  Knobs outside the kernel's native scope
    (non-uniform victim policies, ``steal_half``, weighted admission,
    ``trace``) delegate to the reference engine.
    """
    # Argument validation mirrors the reference engine verbatim (same
    # messages, same order) so callers cannot tell the engines apart.
    if m < 1:
        raise ValueError(f"need at least one worker, got m={m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    if k < 0:
        raise ValueError(f"steal-k-first requires k >= 0, got {k}")
    if steals_per_tick < 1:
        raise ValueError(
            f"steals_per_tick must be >= 1, got {steals_per_tick}"
        )
    if admission not in ("fifo", "weight"):
        raise ValueError(
            f"unknown admission policy {admission!r}; expected 'fifo' or 'weight'"
        )
    sigma = int(steals_per_tick)

    if isinstance(instance, FlatInstance):
        flat: Optional[FlatInstance] = instance
        jobset: Optional[JobSet] = None
        n = instance.n_jobs
        arrivals = np.asarray(instance.arrivals, dtype=np.float64)
        weights = np.asarray(instance.weights, dtype=np.float64)
    else:
        flat = None
        jobset = instance
        n = len(jobset)
        arrivals = np.asarray(jobset.arrivals, dtype=np.float64)
        weights = np.asarray(jobset.weights, dtype=np.float64)

    label = _scheduler_label(k, victim_policy, steal_half, admission)
    recorded_seed = None if isinstance(seed, np.random.Generator) else seed

    if n == 0:
        # Mirror of the reference early return: zero ticks, real zeros.
        return ScheduleResult(
            scheduler=label,
            m=m,
            speed=speed,
            arrivals=arrivals,
            completions=np.zeros(0, dtype=np.float64),
            weights=weights,
            stats=SimulationStats(
                steal_attempts=0,
                failed_steals=0,
                admissions=0,
                admission_wait_ticks=0,
                ff_skipped_ticks=0,
                max_queue_depth=0,
            ),
            seed=recorded_seed,
        )

    # A JobSet's arrivals are sorted by construction; a hand-built
    # FlatInstance's may not be, in which case to_jobset() would re-sort
    # and re-id, so only the reference engine defines the semantics.
    arrivals_sorted = jobset is not None or bool(
        np.all(arrivals[1:] >= arrivals[:-1])
    )
    if (
        victim_policy != "uniform"
        or steal_half
        or admission != "fifo"
        or trace is not None
        or not arrivals_sorted
    ):
        _warn_slow_path(
            _slow_path_reasons(victim_policy, steal_half, admission, trace)
        )
        return _run_work_stealing(
            jobset if jobset is not None else to_jobset(flat),
            m,
            speed=speed,
            k=k,
            seed=seed,
            trace=trace,
            max_ticks=max_ticks,
            steals_per_tick=steals_per_tick,
            victim_policy=victim_policy,
            steal_half=steal_half,
            admission=admission,
            sampler=sampler,
            _fast_forward=_fast_forward,
        )

    if flat is None:
        flat = flatten_jobset(jobset)
    tables = _kernel_tables(flat)

    rng = make_rng(seed)
    completions = np.zeros(n, dtype=np.float64)
    arr_ticks = tables.arr_ticks(arrivals, speed)

    if max_ticks is None:
        # Same loose feasibility bound as the reference engine.
        max_ticks = int(
            tables.total_work + (k + 2) * n + arr_ticks[-1] + 64 * m + 64
        ) * 4

    # -- immutable tables bound to locals (hot-loop lookups) ----------------
    works = tables.works
    eo = tables.eo
    et = tables.et
    chain = tables.chain
    job_of = tables.job_of
    jro = tables.jro
    roots_l = tables.roots

    # -- mutable run state --------------------------------------------------
    preds = tables.preds_master.copy()
    unfin = tables.unfin_master.copy()
    cur = [-1] * m  # current global node id, -1 when idle
    fin = [_IDLE_AT] * m  # absolute tick at whose END cur[i] completes
    fails = [0] * m  # consecutive failed steals (admission unlock)
    deques: List[deque] = [deque() for _ in range(m)]
    queue: deque = deque()  # global FIFO of waiting job ids
    ne: set = set()  # workers with a non-empty deque (== "stealable")

    scan_jit = _resolve_numba_scan() if m > 1 else None
    flags = np.zeros(m, dtype=np.bool_) if scan_jit is not None else None

    # Victim-draw block, consumed exactly like UniformVictim: the first
    # block is drawn up front (the policy draws at construction), refills
    # happen lazily when a live attempt needs a draw past the block end.
    if m > 1:
        raw_np = rng.integers(0, m - 1, size=_BLOCK)
        raw = raw_np.tolist()
    else:
        raw_np = None
        raw = None
    p = 0  # next unconsumed draw position in the current block
    # Lazy per-block position index for long bursts: pos_of[c] is
    # [ascending positions of raw value c (sentinel _BLOCK), cursor].
    # Cursors only ever advance (p is monotone within a block), so a
    # failed-draw burst costs amortized O(1) per candidate victim.
    pos_of: Dict[int, list] = {}

    next_arr = 0
    next_at = arr_ticks[0]
    completed = 0
    t = next_at  # nothing can happen before the first arrival
    n_busy = 0
    nf = _IDLE_AT  # min over busy workers of fin[i] ("next finish")

    st_att = 0
    st_fail = 0
    st_idle = 0
    st_admwait = 0
    st_ff = 0
    st_maxq = 0

    ff = _fast_forward
    boundary = False  # force a sampler snapshot at the next loop top

    # Workers idle at the start of a tick (the reference's
    # idle_at_start), rebuilt lazily: only ticks following an
    # acquisition or a go-idle transition re-scan the workers.
    idles: List[int] = []
    idles_dirty = True

    def _complete(
        i: int,
        end_tick: int,
        # Free variables rebound as defaults: LOAD_FAST instead of
        # LOAD_DEREF on every access -- measurable at ~1e4 calls/run.
        works=works,
        chain=chain,
        job_of=job_of,
        eo=eo,
        et=et,
        preds=preds,
        unfin=unfin,
        cur=cur,
        fin=fin,
        deques=deques,
        ne=ne,
        completions=completions,
        speed=speed,
    ) -> None:
        """Finish worker ``i``'s current node at the end of ``end_tick``.

        Exact flat transcription of the reference cascade: decrement the
        job's unfinished count, enable successors (first enabled child
        continues on this worker, the rest push onto its deque), else pop
        the worker's own deque LIFO, else go idle.  ``chain_next`` skips
        the successor walk when the outcome is forced.  Phase A inlines a
        copy of this body (minus the ``nf`` upkeep, which phase A
        recomputes wholesale); keep the two in sync.
        """
        nonlocal completed, n_busy, nf, idles_dirty
        g = cur[i]
        j = job_of[g]
        u = unfin[j] - 1
        unfin[j] = u
        cn = chain[g]
        if cn >= 0:
            # Sole successor with in-degree 1: it is enabled by exactly
            # this completion, so skip the decrement and continue the
            # chain on this worker.
            cur[i] = cn
            f = end_tick + works[cn]
            fin[i] = f
            if f < nf:
                nf = f
            return
        lo = eo[g]
        hi = eo[g + 1]
        if u == 0:
            completions[j] = (end_tick + 1) / speed
            completed += 1
        if lo != hi:
            if hi - lo == 1:
                # Single successor (but a join node): decrement without
                # materializing an edge slice.
                s2 = et[lo]
                pc = preds[s2] - 1
                preds[s2] = pc
                if pc == 0:
                    cur[i] = s2
                    f = end_tick + works[s2]
                    fin[i] = f
                    if f < nf:
                        nf = f
                    return
            else:
                first = -1
                extras = None
                for s2 in et[lo:hi]:
                    pc = preds[s2] - 1
                    preds[s2] = pc
                    if pc == 0:
                        if first < 0:
                            first = s2
                        elif extras is None:
                            extras = [s2]
                        else:
                            extras.append(s2)
                if first >= 0:
                    cur[i] = first
                    f = end_tick + works[first]
                    fin[i] = f
                    if f < nf:
                        nf = f
                    if extras is not None:
                        dq = deques[i]
                        if not dq:
                            ne.add(i)
                            if flags is not None:
                                flags[i] = True
                        nt = end_tick + 1
                        for s2 in extras:
                            dq.append((s2, nt))
                    return
        dq = deques[i]
        if dq:
            g2 = dq.pop()[0]
            if not dq:
                ne.discard(i)
                if flags is not None:
                    flags[i] = False
            cur[i] = g2
            f = end_tick + works[g2]
            fin[i] = f
            if f < nf:
                nf = f
        else:
            cur[i] = -1
            fin[i] = _IDLE_AT
            n_busy -= 1
            idles_dirty = True

    while completed < n:
        # ---- release arrivals due at or before the current tick ---------
        if next_at <= t:
            while next_arr < n and arr_ticks[next_arr] <= t:
                queue.append(next_arr)
                next_arr += 1
            next_at = arr_ticks[next_arr] if next_arr < n else max_ticks + 1
            ql = len(queue)
            if ql > st_maxq:
                st_maxq = ql

        if t >= max_ticks:
            raise RuntimeError(
                f"work-stealing run exceeded max_ticks={max_ticks} "
                f"({completed}/{n} jobs complete) -- instance may be overloaded"
            )

        if sampler is not None:
            if boundary:
                sampler.record_boundary(t, n_busy, len(queue), len(ne), completed)
                boundary = False
            else:
                sampler.maybe_record(t, n_busy, len(queue), len(ne), completed)

        if ff:
            # ---- fast-forward: whole system empty -----------------------
            if n_busy == 0 and not queue:
                gap = next_at - t
                for i in range(m):
                    f = fails[i] + gap * sigma
                    fails[i] = f if f < k else k
                st_idle += gap * m
                st_ff += gap
                if sampler is not None:
                    sampler.record_boundary(t, 0, 0, len(ne), completed)
                    boundary = True
                t += gap
                continue

            # ---- fast-forward: every worker busy ------------------------
            if n_busy == m:
                # min(remaining) - 1 == nf - t: jump straight to the
                # completion tick and let the general path run it.
                blind = nf - t
                if blind > 0:
                    st_ff += blind
                    if sampler is not None:
                        sampler.record_boundary(
                            t, n_busy, len(queue), len(ne), completed
                        )
                        boundary = True
                    t += blind
                    continue
                # blind == 0: the completion tick; fall through.

            # ---- fast-forward: nothing stealable, nothing admissible ----
            elif not ne and n_busy > 0 and not queue:
                delta = nf - t + 1  # == min(remaining) over busy workers
                if next_arr < n and next_at - t < delta:
                    delta = next_at - t
                blind = delta - 1
                if blind >= 1:
                    n_idle = m - n_busy
                    for i in range(m):
                        if cur[i] < 0:
                            f = fails[i] + blind * sigma
                            fails[i] = f if f < k else k
                    st_att += blind * n_idle * sigma
                    st_fail += blind * n_idle * sigma
                    st_ff += blind
                    if sampler is not None:
                        sampler.record_boundary(t, n_busy, 0, 0, completed)
                        boundary = True
                    t += blind
                    continue
                # delta == 1: fall through to the general tick.

        # ---- general tick -------------------------------------------------
        # Workers idle at the start of the tick act in phase B; phase A
        # only makes workers idle, never busy, so the snapshot before
        # phase A equals the reference's idle_at_start list.
        if idles_dirty:
            idles = []
            for i in range(m):
                if cur[i] < 0:
                    idles.append(i)
            idles_dirty = False

        # Phase A: runs only on completion ticks (fin[i] == t for some
        # busy worker, i.e. nf == t); on every other tick the reference's
        # per-worker decrement sweep has no observable effect.  The
        # cascade is an inlined copy of _complete() minus the nf upkeep
        # (nf is recomputed from scratch below); keep the two in sync.
        if nf == t:
            nt = t + 1
            nfi = _IDLE_AT
            for i in range(m):
                f = fin[i]
                if f == t:
                    g = cur[i]
                    j = job_of[g]
                    u = unfin[j] - 1
                    unfin[j] = u
                    cn = chain[g]
                    if cn >= 0:
                        cur[i] = cn
                        f = t + works[cn]
                        fin[i] = f
                        if f < nfi:
                            nfi = f
                        continue
                    lo = eo[g]
                    hi = eo[g + 1]
                    if u == 0:
                        completions[j] = nt / speed
                        completed += 1
                    if lo != hi:
                        if hi - lo == 1:
                            s2 = et[lo]
                            pc = preds[s2] - 1
                            preds[s2] = pc
                            if pc == 0:
                                cur[i] = s2
                                f = t + works[s2]
                                fin[i] = f
                                if f < nfi:
                                    nfi = f
                                continue
                        else:
                            first = -1
                            extras = None
                            for s2 in et[lo:hi]:
                                pc = preds[s2] - 1
                                preds[s2] = pc
                                if pc == 0:
                                    if first < 0:
                                        first = s2
                                    elif extras is None:
                                        extras = [s2]
                                    else:
                                        extras.append(s2)
                            if first >= 0:
                                cur[i] = first
                                f = t + works[first]
                                fin[i] = f
                                if f < nfi:
                                    nfi = f
                                if extras is not None:
                                    dq = deques[i]
                                    if not dq:
                                        ne.add(i)
                                        if flags is not None:
                                            flags[i] = True
                                    for s2 in extras:
                                        dq.append((s2, nt))
                                continue
                    dq = deques[i]
                    if dq:
                        g2 = dq.pop()[0]
                        if not dq:
                            ne.discard(i)
                            if flags is not None:
                                flags[i] = False
                        cur[i] = g2
                        f = t + works[g2]
                        fin[i] = f
                    else:
                        cur[i] = -1
                        f = _IDLE_AT
                        fin[i] = f
                        n_busy -= 1
                        idles_dirty = True
                if f < nfi:
                    nfi = f
            nf = nfi

        # Phase B: idle workers acquire work, exactly as the reference --
        # same admission/burn/live-attempt branch order, same RNG draw
        # count -- but failed live attempts are resolved in bulk against
        # the draw block instead of one Python iteration per draw.
        for i in idles:
            budget = sigma
            while budget > 0:
                fi = fails[i]
                if fi >= k and queue:
                    # Admit the head-of-line job: first root runs here,
                    # remaining roots (ready since arrival) are pushed.
                    jb = queue.popleft()
                    ro = jro[jb]
                    rhi = jro[jb + 1]
                    r0 = roots_l[ro]
                    cur[i] = r0
                    fails[i] = 0
                    n_busy += 1
                    idles_dirty = True
                    st_admwait += t - arr_ticks[jb]
                    if rhi - ro > 1:
                        dq = deques[i]
                        if not dq:
                            ne.add(i)
                            if flags is not None:
                                flags[i] = True
                        for x in range(ro + 1, rhi):
                            dq.append((roots_l[x], t))
                    if sigma > 1:
                        # Sub-tick admission: execute one unit this tick.
                        if works[r0] == 1:
                            _complete(i, t)
                        else:
                            f = t + works[r0] - 1
                            fin[i] = f
                            if f < nf:
                                nf = f
                    else:
                        f = t + works[r0]
                        fin[i] = f
                        if f < nf:
                            nf = f
                    break  # admission consumes the rest of the tick
                if not ne:
                    # Nothing stealable: every remaining attempt fails.
                    # Burn just enough to unlock admission when the queue
                    # is non-empty, else the whole budget -- no draws.
                    if queue and k - fi <= budget:
                        burned = k - fi
                    else:
                        burned = budget
                    f2 = fi + burned
                    fails[i] = f2 if f2 < k else k
                    st_att += burned
                    st_fail += burned
                    budget -= burned
                    if budget > 0:
                        continue  # unlocked admission; loop admits next
                    break
                # Live steal attempts: find the first draw in the block
                # that maps to a non-empty deque, within the allowance
                # (remaining budget, capped at the draws left before
                # admission unlocks when the queue is non-empty).
                allowed = budget
                if queue:
                    d = k - fi
                    if d < allowed:
                        allowed = d
                got = -1
                while True:
                    if p == _BLOCK:
                        # Same lazy refill cadence as UniformVictim.
                        raw_np = rng.integers(0, m - 1, size=_BLOCK)
                        raw = raw_np.tolist()
                        p = 0
                        pos_of = {}
                    stop = p + allowed
                    if stop > _BLOCK:
                        stop = _BLOCK
                    if scan_jit is not None:
                        got = int(scan_jit(raw_np, flags, p, stop, i))
                    elif allowed < _SHORT_BURST or 2 * len(ne) >= m - 1:
                        # Short burst, or most deques non-empty (a hit
                        # comes fast): scan the draws directly.
                        got = -1
                        for jdx in range(p, stop):
                            v = raw[jdx]
                            if v >= i:
                                v += 1
                            if deques[v]:
                                got = jdx
                                break
                    else:
                        # Long burst, few candidates: jump through each
                        # candidate's position list instead of iterating
                        # every failed draw.
                        best = stop
                        for s in ne:
                            if s == i:
                                continue
                            c = s if s < i else s - 1
                            entry = pos_of.get(c)
                            if entry is None:
                                lst = np.flatnonzero(raw_np == c).tolist()
                                lst.append(_BLOCK)
                                entry = [lst, 0]
                                pos_of[c] = entry
                            lst = entry[0]
                            q = entry[1]
                            pos = lst[q]
                            while pos < p:
                                q += 1
                                pos = lst[q]
                            entry[1] = q
                            if pos < best:
                                best = pos
                        got = best if best < stop else -1
                    if got >= 0:
                        n_failed = got - p
                        fails[i] += n_failed
                        st_att += n_failed + 1
                        st_fail += n_failed
                        budget -= n_failed + 1
                        p = got + 1
                        break
                    n_failed = stop - p
                    fails[i] += n_failed
                    st_att += n_failed
                    st_fail += n_failed
                    budget -= n_failed
                    allowed -= n_failed
                    p = stop
                    if allowed == 0:
                        break
                if got < 0:
                    continue  # budget spent, or admission just unlocked
                v = raw[got]
                victim = v + 1 if v >= i else v
                vdq = deques[victim]
                g2, rdy = vdq.popleft()
                if not vdq:
                    ne.discard(victim)
                    if flags is not None:
                        flags[victim] = False
                cur[i] = g2
                fails[i] = 0
                n_busy += 1
                idles_dirty = True
                # Same-tick execution only if the stolen node was ready
                # at the start of this tick (cf. the reference engine).
                if sigma > 1 and rdy <= t:
                    if works[g2] == 1:
                        _complete(i, t)
                    else:
                        f = t + works[g2] - 1
                        fin[i] = f
                        if f < nf:
                            nf = f
                else:
                    f = t + works[g2]
                    fin[i] = f
                    if f < nf:
                        nf = f
                break  # the steal consumes the rest of the tick

        t += 1

    stats = SimulationStats()
    # busy_steps == total work and admissions == n are invariants of any
    # complete run (asserted across the test suite), so the kernel does
    # not accumulate them tick by tick.
    stats.busy_steps = tables.total_work
    stats.steal_attempts = st_att
    stats.failed_steals = st_fail
    stats.admissions = n
    stats.idle_steps = st_idle
    stats.elapsed_ticks = t
    stats.admission_wait_ticks = st_admwait
    stats.ff_skipped_ticks = st_ff
    stats.max_queue_depth = st_maxq
    return ScheduleResult(
        scheduler=label,
        m=m,
        speed=speed,
        arrivals=arrivals,
        completions=completions,
        weights=weights,
        stats=stats,
        seed=recorded_seed,
    )
