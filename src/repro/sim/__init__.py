"""Multiprocessor execution substrate.

Two exact simulation engines drive every scheduler in :mod:`repro.core`:

* :func:`~repro.sim.events.run_centralized` -- an event-driven engine for
  centralized preemptive schedulers (FIFO, BWF, the list-scheduling
  baselines).  Processor assignment can only change at job arrivals and
  node completions, so the engine jumps between those events; this is
  exact and far faster than stepping time.

* :func:`~repro.sim.engine.run_work_stealing` -- a discrete-time engine
  for the randomized work-stealing schedulers (admit-first and
  steal-k-first, Section 4 of the paper).  The paper defines one *time
  step* as the time an ``s``-speed processor needs for one unit of work
  and charges one time step per steal attempt; the engine simulates in
  exactly those integer ticks, so runs are bit-reproducible for a given
  seed.

:mod:`repro.sim.flat_engine` (``repro.run(..., engine="flat")``) is a
vectorized reimplementation of the tick engine over
:class:`~repro.dag.flat.FlatInstance` CSR state -- bit-identical
results (the equivalence suite pins it), several times the throughput,
and it consumes attached shared-memory instances directly in sweep
workers.

:mod:`repro.sim.stream_engine` (``repro.run("flat", stream=...)``)
re-bases the flat kernel onto a sliding window over a lazy arrival
stream: bounded memory, online metrics, durable checkpoint/restore
(:mod:`repro.sim.checkpoint`) -- same max flow time, bit for bit.

:mod:`repro.sim.batch_engine` (:func:`~repro.sim.batch_engine.run_batch`,
``repro.run(..., engine="batch")``) evaluates R replicate instances in
one block-structured arena behind an optional on-demand-compiled C
kernel -- bit-identical per rep to R serial flat runs (same schedules,
stats, and RNG post-state); the sweep layer batches eligible multi-rep
cells through it automatically (``REPRO_BATCH`` / ``REPRO_CEXT``
override).

Shared pieces: :class:`~repro.sim.result.ScheduleResult` (the output of
every engine), :class:`~repro.sim.jobstate.JobExecution` (mutable per-job
execution state), :class:`~repro.sim.deque.WorkStealingDeque`,
:class:`~repro.sim.queue.GlobalAdmissionQueue`, and
:class:`~repro.sim.trace.TraceRecorder` (optional execution tracing with
invariant audits).
"""

from repro.sim.result import (
    ScheduleResult,
    SimulationStats,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)
from repro.sim.rng import derive_seed, make_rng, spawn_rngs
from repro.sim.worker import WorkerArrays
from repro.sim.deque import WorkStealingDeque
from repro.sim.queue import GlobalAdmissionQueue, WeightedAdmissionQueue
from repro.sim.jobstate import JobExecution
from repro.sim.events import run_centralized
from repro.sim.engine import run_work_stealing
from repro.sim.trace import TraceRecorder, TraceInterval, audit_trace
from repro.sim.policies import (
    MaxDequeVictim,
    RoundRobinVictim,
    UniformVictim,
    VictimPolicy,
    make_victim_policy,
)
from repro.sim.checkpoint import (
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.sampling import SystemSample, SystemSampler
from repro.sim.batch_engine import batch_options, run_batch
from repro.sim.stream_engine import StreamResult
from repro.sim.timeline import job_symbol, render_timeline, worker_utilization

__all__ = [
    "VictimPolicy",
    "UniformVictim",
    "RoundRobinVictim",
    "MaxDequeVictim",
    "make_victim_policy",
    "render_timeline",
    "worker_utilization",
    "job_symbol",
    "SystemSample",
    "SystemSampler",
    "StreamResult",
    "run_batch",
    "batch_options",
    "save_checkpoint",
    "load_checkpoint",
    "list_checkpoints",
    "latest_checkpoint",
    "ScheduleResult",
    "SimulationStats",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "derive_seed",
    "make_rng",
    "spawn_rngs",
    "WorkerArrays",
    "WorkStealingDeque",
    "GlobalAdmissionQueue",
    "WeightedAdmissionQueue",
    "JobExecution",
    "run_centralized",
    "run_work_stealing",
    "TraceRecorder",
    "TraceInterval",
    "audit_trace",
]
