"""The work-stealing deque.

Each worker owns one double-ended queue of ready-node entries (Section 4
of the paper, following Blumofe & Leiserson).  The owner pushes newly
enabled nodes onto the *bottom* and pops from the *bottom* (LIFO order,
which keeps the owner on its own job's depth-first frontier); thieves
steal from the *top* (the entry closest to the job's root, i.e. the one
with the most work hanging under it).

The simulator is single-threaded, so no synchronization is needed; the
class exists to pin down the end semantics (an easy thing to silently
flip) and to count owner/thief traffic for the utilization reports.

The tick engine's hot loop no longer goes through this wrapper: it
operates on raw :class:`collections.deque` objects held in
:class:`~repro.sim.worker.WorkerArrays`, inlining the same end semantics
(owner ``append``/``pop`` at the bottom, thief ``popleft`` at the top)
to avoid a method call per deque operation.  This class remains the
executable specification of those semantics -- ``tests/sim/test_deque.py``
pins them, and the equivalence tests pin the engine's inlined copy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, Tuple, TypeVar

T = TypeVar("T")


class WorkStealingDeque(Generic[T]):
    """A deque with explicitly named work-stealing end semantics.

    ``push_bottom``/``pop_bottom`` are the owner's operations;
    ``steal_top`` is the thief's.  ``peek_*`` variants exist for tests.
    """

    __slots__ = ("_items", "owner_pushes", "owner_pops", "steals")

    def __init__(self) -> None:
        self._items: Deque[T] = deque()
        #: number of owner pushes over the deque's lifetime
        self.owner_pushes = 0
        #: number of owner pops over the deque's lifetime
        self.owner_pops = 0
        #: number of successful steals suffered over the deque's lifetime
        self.steals = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push_bottom(self, item: T) -> None:
        """Owner pushes a newly enabled node onto the bottom."""
        self._items.append(item)
        self.owner_pushes += 1

    def pop_bottom(self) -> Optional[T]:
        """Owner pops the most recently pushed entry; ``None`` if empty."""
        if not self._items:
            return None
        self.owner_pops += 1
        return self._items.pop()

    def steal_top(self) -> Optional[T]:
        """Thief steals the oldest entry (top); ``None`` if empty."""
        if not self._items:
            return None
        self.steals += 1
        return self._items.popleft()

    def peek_bottom(self) -> Optional[T]:
        """Non-destructive view of the bottom entry; ``None`` if empty."""
        return self._items[-1] if self._items else None

    def peek_top(self) -> Optional[T]:
        """Non-destructive view of the top entry; ``None`` if empty."""
        return self._items[0] if self._items else None

    def snapshot(self) -> Tuple[T, ...]:
        """Top-to-bottom copy of the contents (for tests and traces)."""
        return tuple(self._items)
