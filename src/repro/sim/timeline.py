"""Text timeline (Gantt) rendering of execution traces.

Turns a :class:`~repro.sim.trace.TraceRecorder` into a terminal Gantt
chart -- one row per worker, one column per time slice, one symbol per
job -- plus per-worker utilization summaries.  Useful for eyeballing
*why* a schedule behaved as it did: admission delays, steal storms and
sequential phases are all visible at a glance (see
``examples/custom_dag_programs.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.trace import TraceRecorder

#: Symbols assigned to jobs round-robin; 62 distinct before cycling.
_SYMBOLS = (
    "0123456789"
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
)


def job_symbol(job_id: int) -> str:
    """The timeline symbol for a job id (cycles after 62 jobs)."""
    return _SYMBOLS[job_id % len(_SYMBOLS)]


def render_timeline(
    trace: TraceRecorder,
    m: int,
    width: int = 80,
    t_start: Optional[float] = None,
    t_end: Optional[float] = None,
    show_legend: bool = True,
) -> str:
    """Render the trace as an ASCII Gantt chart.

    Parameters
    ----------
    trace:
        A recorder filled by an engine run.
    m:
        Number of workers (rows); workers that never executed still get
        a row of idle marks.
    width:
        Number of time columns; each column covers
        ``(t_end - t_start) / width`` time units.
    t_start, t_end:
        Window to render; defaults to the trace's extent.
    show_legend:
        Append a job-id -> symbol legend (first 20 jobs).

    Notes
    -----
    A column shows the job occupying the *majority* of that worker's
    column span, or ``.`` when the worker is idle for most of it --
    coarse on purpose; use the raw trace for exact forensics.
    """
    ivs = trace.intervals
    if not ivs:
        return "(empty trace)"
    if t_start is None:
        t_start = min(iv.start for iv in ivs)
    if t_end is None:
        t_end = max(iv.end for iv in ivs)
    if t_end <= t_start:
        raise ValueError(f"need t_end > t_start, got [{t_start}, {t_end}]")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")

    col_span = (t_end - t_start) / width
    # busy[worker][col] accumulates (job_id -> covered time).
    busy: List[List[Dict[int, float]]] = [
        [dict() for _ in range(width)] for _ in range(m)
    ]
    for iv in ivs:
        if iv.worker >= m or iv.end <= t_start or iv.start >= t_end:
            continue
        first = max(0, int((iv.start - t_start) / col_span))
        last = min(width - 1, int((iv.end - t_start) / col_span))
        for col in range(first, last + 1):
            col_lo = t_start + col * col_span
            col_hi = col_lo + col_span
            overlap = min(iv.end, col_hi) - max(iv.start, col_lo)
            if overlap > 0:
                cell = busy[iv.worker][col]
                cell[iv.job_id] = cell.get(iv.job_id, 0.0) + overlap

    lines = [
        f"timeline [{t_start:g}, {t_end:g}] "
        f"({col_span:g} time units per column)"
    ]
    for w in range(m):
        row_chars = []
        for col in range(width):
            cell = busy[w][col]
            total = sum(cell.values())
            if total < col_span / 2:
                row_chars.append(".")
            else:
                winner = max(cell.items(), key=lambda kv: (kv[1], -kv[0]))[0]
                row_chars.append(job_symbol(winner))
        lines.append(f"w{w:<3d} |{''.join(row_chars)}|")

    if show_legend:
        jobs = sorted({iv.job_id for iv in ivs})[:20]
        legend = "  ".join(f"{job_symbol(j)}=job{j}" for j in jobs)
        lines.append(f"legend: {legend}" + ("  ..." if len(jobs) == 20 else ""))
    return "\n".join(lines)


def worker_utilization(
    trace: TraceRecorder,
    m: int,
    t_end: Optional[float] = None,
) -> List[float]:
    """Per-worker busy fraction over ``[0, t_end]`` from the trace.

    ``t_end`` defaults to the last interval end (the traced makespan).
    """
    ivs = trace.intervals
    if not ivs:
        return [0.0] * m
    if t_end is None:
        t_end = max(iv.end for iv in ivs)
    if t_end <= 0:
        raise ValueError(f"t_end must be positive, got {t_end}")
    busy = [0.0] * m
    for iv in ivs:
        if iv.worker < m:
            busy[iv.worker] += min(iv.end, t_end) - iv.start
    return [b / t_end for b in busy]
