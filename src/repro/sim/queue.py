"""Global admission queues for the work-stealing engine.

Section 4 of the paper extends single-job work stealing to multiple jobs
with one shared queue: "a global FIFO queue is dedicated for the arrival
and admission of new jobs.  When a new job is released, it is inserted
into the tail of the global queue.  A worker will admit a job by popping
it from the head of the global queue in a FIFO order."
:class:`GlobalAdmissionQueue` is that queue.

:class:`WeightedAdmissionQueue` is this repository's extension for the
weighted objective (Section 7 x Section 4): admission pops the
*biggest-weight* waiting job instead of the oldest, making steal-k-first
approximate BWF the way FIFO admission approximates FIFO.  The paper
analyzes BWF only centrally; the weighted work-stealing benches measure
how much of BWF's advantage the distributed version retains.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class GlobalAdmissionQueue(Generic[T]):
    """Strict FIFO queue of jobs awaiting admission by some worker."""

    __slots__ = ("_items", "total_enqueued", "total_admitted", "peak_length")

    def __init__(self) -> None:
        self._items: Deque[T] = deque()
        #: jobs ever enqueued (equals arrivals processed so far)
        self.total_enqueued = 0
        #: jobs ever admitted (equals completed admissions so far)
        self.total_admitted = 0
        #: high-water mark of the queue length, a congestion indicator
        self.peak_length = 0

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def release(self, job: T) -> None:
        """A newly arrived job joins the tail of the queue."""
        self._items.append(job)
        self.total_enqueued += 1
        if len(self._items) > self.peak_length:
            self.peak_length = len(self._items)

    def admit(self) -> Optional[T]:
        """A worker admits the head-of-line job; ``None`` if empty."""
        if not self._items:
            return None
        self.total_admitted += 1
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        """Non-destructive view of the head-of-line job."""
        return self._items[0] if self._items else None

    def snapshot(self) -> Tuple[T, ...]:
        """Head-to-tail copy of the contents (for tests and traces)."""
        return tuple(self._items)


class WeightedAdmissionQueue:
    """Admission by biggest weight first (ties: earlier arrival, then seq).

    Interface-compatible with :class:`GlobalAdmissionQueue`; items must
    expose ``weight`` and ``arrival`` attributes (as
    :class:`~repro.sim.jobstate.JobExecution` does).  Backed by a heap,
    so release and admit are O(log n).
    """

    __slots__ = ("_heap", "_seq", "total_enqueued", "total_admitted", "peak_length")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, float, int, object]] = []
        self._seq = 0  # insertion counter: makes heap entries total-ordered
        #: jobs ever enqueued (equals arrivals processed so far)
        self.total_enqueued = 0
        #: jobs ever admitted (equals completed admissions so far)
        self.total_admitted = 0
        #: high-water mark of the queue length, a congestion indicator
        self.peak_length = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def release(self, job) -> None:
        """A newly arrived job joins the queue keyed by its weight."""
        heapq.heappush(
            self._heap, (-job.weight, job.arrival, self._seq, job)
        )
        self._seq += 1
        self.total_enqueued += 1
        if len(self._heap) > self.peak_length:
            self.peak_length = len(self._heap)

    def admit(self):
        """A worker admits the heaviest waiting job; ``None`` if empty."""
        if not self._heap:
            return None
        self.total_admitted += 1
        return heapq.heappop(self._heap)[3]

    def peek(self):
        """Non-destructive view of the heaviest waiting job."""
        return self._heap[0][3] if self._heap else None

    def snapshot(self) -> Tuple[object, ...]:
        """Contents in admission order (heaviest first); for tests."""
        return tuple(item[3] for item in sorted(self._heap))
