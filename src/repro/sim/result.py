"""Schedule results: the common output type of every engine and scheduler.

A :class:`ScheduleResult` holds per-job arrival/completion/weight arrays
plus aggregate execution statistics, and derives every flow-time metric
the paper reports (Section 2: ``F_i = c_i - r_i``, objective
``max_i w_i F_i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass
class SimulationStats:
    """Aggregate execution accounting for one simulated run.

    All step counts are in the engine's native step unit: work units for
    the event engine (where a "step" is one unit of one processor's work)
    and ticks for the work-stealing engine.

    Fields that only one engine family can measure default to ``None``
    ("not applicable"), never to a sentinel zero: a centralized run did
    not perform *zero* steal attempts, it performed none at all, and
    reports render the distinction as ``-``.  The work-stealing engine
    always sets every field (to real zeros where nothing happened).

    Attributes
    ----------
    busy_steps:
        Processor-steps spent executing job nodes.  Exactly equals the
        instance's total work for any complete run -- an invariant the
        test suite checks.
    steal_attempts:
        Work-stealing only: total steal attempts (successful + failed).
    failed_steals:
        Work-stealing only: steal attempts that found an empty deque.
    admissions:
        Work-stealing only: jobs admitted from the global FIFO queue
        (equals the number of jobs for any complete run).
    idle_steps:
        Processor-steps spent neither working nor stealing (system empty).
    n_events:
        Event engine only: number of scheduling events processed.
    elapsed_ticks:
        Work-stealing only: total ticks simulated.
    admission_wait_ticks:
        Work-stealing only: summed ticks jobs spent in the global queue
        between release and admission -- the empirical counterpart of the
        admission-latency terms in Theorem 4.1's flow-time bound.
        ``admission_wait_ticks / admissions`` is the mean admission
        latency.
    ff_skipped_ticks:
        Work-stealing only: ticks the lossless fast-forward modes skipped
        instead of simulating (0 under ``_fast_forward=False``).  The
        ratio to ``elapsed_ticks`` is the fast-forward saving.
    max_queue_depth:
        Work-stealing only: peak length of the global admission queue.
    """

    busy_steps: int = 0
    steal_attempts: Optional[int] = None
    failed_steals: Optional[int] = None
    admissions: Optional[int] = None
    idle_steps: int = 0
    n_events: int = 0
    elapsed_ticks: int = 0
    admission_wait_ticks: Optional[int] = None
    ff_skipped_ticks: Optional[int] = None
    max_queue_depth: Optional[int] = None

    @property
    def steal_success_ratio(self) -> Optional[float]:
        """Fraction of steal attempts that found work, or None if N/A.

        The quantity Theorem 4.1's analysis tracks per admission window;
        ``None`` when the engine measured no attempts (not work-stealing,
        or a run where no worker ever went idle).
        """
        if not self.steal_attempts:
            return None
        return (self.steal_attempts - (self.failed_steals or 0)) / (
            self.steal_attempts
        )

    def as_dict(self) -> Dict[str, Optional[int]]:
        """Plain-dict view, used by the experiment reports and telemetry."""
        return {
            "busy_steps": self.busy_steps,
            "steal_attempts": self.steal_attempts,
            "failed_steals": self.failed_steals,
            "admissions": self.admissions,
            "idle_steps": self.idle_steps,
            "n_events": self.n_events,
            "elapsed_ticks": self.elapsed_ticks,
            "admission_wait_ticks": self.admission_wait_ticks,
            "ff_skipped_ticks": self.ff_skipped_ticks,
            "max_queue_depth": self.max_queue_depth,
        }


class ScheduleResult:
    """Per-job outcomes of one scheduler run on one instance.

    Parameters
    ----------
    scheduler:
        Human-readable scheduler name (e.g. ``"fifo"``,
        ``"steal-16-first"``).
    m:
        Number of processors simulated.
    speed:
        Processor speed ``s`` (resource augmentation); 1.0 means no
        augmentation.
    arrivals, completions, weights:
        Parallel arrays indexed by job id.  ``completions[i]`` must be at
        least ``arrivals[i]``.
    stats:
        Aggregate :class:`SimulationStats`; optional.
    seed:
        RNG seed for randomized schedulers, recorded for reproducibility.
    """

    def __init__(
        self,
        scheduler: str,
        m: int,
        speed: float,
        arrivals: np.ndarray,
        completions: np.ndarray,
        weights: Optional[np.ndarray] = None,
        stats: Optional[SimulationStats] = None,
        seed: Optional[int] = None,
    ) -> None:
        arrivals = np.asarray(arrivals, dtype=np.float64)
        completions = np.asarray(completions, dtype=np.float64)
        if arrivals.shape != completions.shape:
            raise ValueError(
                f"arrivals {arrivals.shape} and completions "
                f"{completions.shape} must be parallel arrays"
            )
        if arrivals.ndim != 1:
            raise ValueError("results require a 1-D job axis")
        if np.any(completions < arrivals - 1e-9):
            bad = int(np.argmax(completions < arrivals - 1e-9))
            raise ValueError(
                f"job {bad} completes at {completions[bad]} before its "
                f"arrival {arrivals[bad]}"
            )
        if weights is None:
            weights = np.ones_like(arrivals)
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != arrivals.shape:
                raise ValueError("weights must parallel arrivals")

        self.scheduler = scheduler
        self.m = int(m)
        self.speed = float(speed)
        self.arrivals = arrivals
        self.completions = completions
        self.weights = weights
        self.stats = stats if stats is not None else SimulationStats()
        self.seed = seed

    # -- per-job metrics ------------------------------------------------

    @property
    def n_jobs(self) -> int:
        """Number of jobs in the instance."""
        return self.arrivals.size

    @property
    def flows(self) -> np.ndarray:
        """Flow times ``F_i = c_i - r_i`` (clamped at 0 against float dust)."""
        return np.maximum(self.completions - self.arrivals, 0.0)

    @property
    def weighted_flows(self) -> np.ndarray:
        """Weighted flow times ``w_i F_i``."""
        return self.weights * self.flows

    # -- aggregate objectives (Section 2) -------------------------------

    @property
    def max_flow(self) -> float:
        """The paper's primary objective: ``max_i F_i`` (0.0 if empty)."""
        return float(self.flows.max()) if self.n_jobs else 0.0

    @property
    def max_weighted_flow(self) -> float:
        """The weighted objective of Section 7: ``max_i w_i F_i`` (0.0 if empty)."""
        return float(self.weighted_flows.max()) if self.n_jobs else 0.0

    @property
    def mean_flow(self) -> float:
        """Average flow time (reported alongside the max in benches).

        0.0 for an empty instance: every aggregate objective of the
        vacuous schedule is zero.
        """
        return float(self.flows.mean()) if self.n_jobs else 0.0

    @property
    def makespan(self) -> float:
        """Completion time of the last job to finish (0.0 if empty)."""
        return float(self.completions.max()) if self.n_jobs else 0.0

    def flow_percentile(self, q: float) -> float:
        """The ``q``-th percentile of the flow-time distribution (0..100)."""
        return float(np.percentile(self.flows, q)) if self.n_jobs else 0.0

    @property
    def argmax_flow(self) -> int:
        """Id of a job realizing the maximum flow time.

        Raises ``ValueError`` on an empty result: no job realizes the
        (vacuously zero) maximum.
        """
        if not self.n_jobs:
            raise ValueError("argmax_flow is undefined for an empty result")
        return int(np.argmax(self.flows))

    def summary(self) -> Dict[str, float]:
        """Key metrics as a flat dict, used by reports and benches."""
        return {
            "max_flow": self.max_flow,
            "mean_flow": self.mean_flow,
            "p99_flow": self.flow_percentile(99.0),
            "max_weighted_flow": self.max_weighted_flow,
            "makespan": self.makespan,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduleResult({self.scheduler!r}, n={self.n_jobs}, m={self.m}, "
            f"speed={self.speed}, max_flow={self.max_flow:.4f})"
        )


def result_to_dict(result: ScheduleResult) -> dict:
    """JSON-ready dict of a result (arrays as lists, stats inlined).

    Archive the outcome of an interesting run next to its instance
    (see :func:`repro.dag.serialization.save_jobset`) and the pair can
    be re-examined later without re-simulating.
    """
    return {
        "scheduler": result.scheduler,
        "m": result.m,
        "speed": result.speed,
        "seed": result.seed,
        "arrivals": result.arrivals.tolist(),
        "completions": result.completions.tolist(),
        "weights": result.weights.tolist(),
        "stats": result.stats.as_dict(),
    }


def result_from_dict(data: dict) -> ScheduleResult:
    """Inverse of :func:`result_to_dict`."""
    stats_data = data.get("stats", {})
    stats = SimulationStats(**stats_data)
    return ScheduleResult(
        scheduler=data["scheduler"],
        m=int(data["m"]),
        speed=float(data["speed"]),
        arrivals=np.asarray(data["arrivals"], dtype=np.float64),
        completions=np.asarray(data["completions"], dtype=np.float64),
        weights=np.asarray(data["weights"], dtype=np.float64),
        stats=stats,
        seed=data.get("seed"),
    )


def save_result(result: ScheduleResult, path) -> None:
    """Write a result to a JSON file."""
    import json
    from pathlib import Path

    Path(path).write_text(json.dumps(result_to_dict(result)))


def load_result(path) -> ScheduleResult:
    """Read a result written by :func:`save_result`."""
    import json
    from pathlib import Path

    return result_from_dict(json.loads(Path(path).read_text()))
