"""DAG -> speedup-curves conversion, and the model-separation experiment.

Section 8 of the paper argues no faithful conversion exists: "one cannot
map an arbitrary DAG to a set of speed-up curves since the
parallelizability of a job in the speed-up curves model only depends on
the amount of work previously processed", while a DAG's ready set
depends on *which* nodes were processed.

:func:`dag_to_speedup_job` implements the natural best attempt anyway:
run the DAG greedily on infinitely many processors, read off the
parallelism profile (work executing at each unit depth), and compress
equal-width runs into linear-capped phases.  The conversion is exact in
two regimes -- sequential chains (cap 1 throughout) and executions with
``m >=`` the profile's maximum width (the profile is realized verbatim).
In between it diverges **in both directions**: *optimistically*, because
the phased job drops integral node placement (5 unit nodes on 3
processors take 2 rounds in the DAG, 5/3 in the phase); and
*pessimistically*, because every profile-width change becomes a phase
barrier the DAG does not have (uneven siblings overlap freely in the
DAG).  Property tests pin a minimized witness of each direction, and the
``ext-speedup`` bench measures the net gap on realistic workloads --
the paper's qualitative separation argument, in numbers and in both
directions.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dag.analysis import parallelism_profile
from repro.dag.graph import JobDag
from repro.dag.job import JobSet
from repro.speedup.model import (
    LinearCapped,
    Phase,
    SpeedupJob,
    SpeedupJobSet,
)


def profile_phases(dag: JobDag) -> List[Tuple[float, int]]:
    """(work, width) runs of the infinite-processor parallelism profile.

    Consecutive unit-depth steps with equal width merge into one run;
    the run's work is ``width x length`` (every one of ``width`` units
    executes during each step of the run).
    """
    profile = parallelism_profile(dag)
    runs: List[Tuple[float, int]] = []
    current_width: int | None = None
    run_steps = 0
    for step in range(dag.span):
        width = profile.get(step, 0)
        if width == current_width:
            run_steps += 1
        else:
            if current_width is not None and current_width > 0:
                runs.append((float(current_width * run_steps), current_width))
            current_width = width
            run_steps = 1
    if current_width is not None and current_width > 0:
        runs.append((float(current_width * run_steps), current_width))
    return runs


def dag_to_speedup_job(
    dag: JobDag,
    arrival: float = 0.0,
    weight: float = 1.0,
    job_id: int = 0,
) -> SpeedupJob:
    """Convert a DAG to a phased linear-capped speedup-curves job.

    The resulting job conserves total work and has the same
    infinite-processor execution time (span) as the DAG -- properties
    the tests pin -- but its *constrained* behaviour can differ, which
    is the point of the contrast experiment.
    """
    phases = tuple(
        Phase(work=work, speedup=LinearCapped(width))
        for work, width in profile_phases(dag)
    )
    return SpeedupJob(job_id=job_id, phases=phases, arrival=arrival, weight=weight)


def jobset_to_speedup(jobset: JobSet) -> SpeedupJobSet:
    """Convert a whole DAG instance, preserving arrivals and weights."""
    return SpeedupJobSet(
        dag_to_speedup_job(
            j.dag, arrival=j.arrival, weight=j.weight, job_id=j.job_id
        )
        for j in jobset
    )
