"""Event-driven simulator for the speedup-curves model.

Between job arrivals and phase completions, processor allocations -- and
therefore processing rates -- are constant, so the engine jumps between
events exactly like the centralized DAG engine.  Two allocation
policies:

* **FIFO-greedy** (:func:`run_speedup_fifo`): serve jobs in arrival
  order, giving each the processors it can still use
  (``useful_processors`` of its current phase) until the machine is
  exhausted -- the speedup-curves analogue of the paper's FIFO.
* **EQUI** (:func:`run_speedup_equi`): split the machine evenly among
  active jobs (earlier arrivals get the remainder), the classic
  Edmonds-Pruhs policy that is scalable for *average* flow in this
  model.

Results come back as :class:`~repro.sim.result.ScheduleResult`, so every
metric in :mod:`repro.metrics` applies unchanged.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.sim.result import ScheduleResult, SimulationStats
from repro.speedup.model import SpeedupJob, SpeedupJobSet

#: Comparison tolerance in work units / time units.
EPS = 1e-9


class _JobState:
    """Mutable execution state of one speedup-curves job."""

    __slots__ = ("job", "phase_idx", "remaining")

    def __init__(self, job: SpeedupJob) -> None:
        self.job = job
        self.phase_idx = 0
        self.remaining = job.phases[0].work

    @property
    def current_speedup(self):
        return self.job.phases[self.phase_idx].speedup

    def advance_phase(self) -> bool:
        """Move to the next phase; returns True when the job is done."""
        self.phase_idx += 1
        if self.phase_idx >= len(self.job.phases):
            return True
        self.remaining = self.job.phases[self.phase_idx].work
        return False


AllocationPolicy = Callable[[List[_JobState], int], List[int]]


def _fifo_greedy_allocation(active: List[_JobState], m: int) -> List[int]:
    """Arrival order; each job takes what its current phase can use."""
    allocs = []
    avail = m
    for js in active:
        give = min(avail, js.current_speedup.useful_processors)
        allocs.append(give)
        avail -= give
    return allocs


def _equi_allocation(active: List[_JobState], m: int) -> List[int]:
    """Equal split; earlier arrivals receive the remainder first."""
    n = len(active)
    base, rem = divmod(m, n)
    return [base + (1 if i < rem else 0) for i in range(n)]


def _run_speedup(
    jobset: SpeedupJobSet,
    m: int,
    speed: float,
    policy: AllocationPolicy,
    scheduler_name: str,
) -> ScheduleResult:
    """Shared event loop for all allocation policies."""
    if m < 1:
        raise ValueError(f"need at least one processor, got m={m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")

    n = len(jobset)
    arrivals = np.asarray(jobset.arrivals, dtype=np.float64)
    weights = np.asarray(jobset.weights, dtype=np.float64)
    completions = np.zeros(n, dtype=np.float64)
    stats = SimulationStats()

    pending = list(jobset)
    next_arrival = 0
    active: List[_JobState] = []  # kept in arrival order (FIFO semantics)
    remaining_jobs = n
    t = pending[0].arrival
    processed = 0.0

    while remaining_jobs > 0:
        while next_arrival < n and pending[next_arrival].arrival <= t + EPS:
            active.append(_JobState(pending[next_arrival]))
            next_arrival += 1

        if not active:
            t = pending[next_arrival].arrival
            continue

        allocs = policy(active, m)
        if len(allocs) != len(active) or sum(allocs) > m or min(allocs) < 0:
            raise RuntimeError(
                f"allocation policy returned invalid allocation {allocs} "
                f"for {len(active)} jobs on m={m}"
            )
        rates = [
            js.current_speedup.rate(a) * speed for js, a in zip(active, allocs)
        ]

        # Next event: earliest phase completion or next arrival.
        dt = min(
            (js.remaining / r for js, r in zip(active, rates) if r > 0),
            default=float("inf"),
        )
        if next_arrival < n:
            dt = min(dt, pending[next_arrival].arrival - t)
        if dt == float("inf"):
            raise RuntimeError(
                "no job is processing and no arrival is pending -- "
                "allocation policy starved every active job"
            )

        t += dt
        done_indices: List[int] = []
        for i, (js, r) in enumerate(zip(active, rates)):
            if r <= 0:
                continue
            delta = r * dt
            js.remaining -= delta
            processed += delta
            if js.remaining <= EPS:
                if js.advance_phase():
                    completions[js.job.job_id] = t
                    done_indices.append(i)
        for i in reversed(done_indices):
            del active[i]
        remaining_jobs -= len(done_indices)
        stats.n_events += 1

    stats.busy_steps = int(round(processed))
    return ScheduleResult(
        scheduler=scheduler_name,
        m=m,
        speed=speed,
        arrivals=arrivals,
        completions=completions,
        weights=weights,
        stats=stats,
    )


def _run_speedup_fifo(
    jobset: SpeedupJobSet, m: int, speed: float = 1.0
) -> ScheduleResult:
    """FIFO-greedy allocation -- the analogue of the paper's FIFO.

    Note the Section 8 caveat this engine makes concrete: for strictly
    increasing curves (power laws) the head-of-line job absorbs the
    whole machine, which no DAG job can express.
    """
    return _run_speedup(jobset, m, speed, _fifo_greedy_allocation, "speedup-fifo")


def _run_speedup_equi(
    jobset: SpeedupJobSet, m: int, speed: float = 1.0
) -> ScheduleResult:
    """EQUI (equal-split) allocation -- the classic average-flow policy."""
    return _run_speedup(jobset, m, speed, _equi_allocation, "speedup-equi")


def run_speedup_fifo(*args, **kwargs) -> ScheduleResult:
    """Deprecated alias; use ``repro.run("speedup-fifo", jobset, m=...)``."""
    from repro._deprecation import warn_once

    warn_once("repro.speedup.engine.run_speedup_fifo", "repro.run")
    return _run_speedup_fifo(*args, **kwargs)


def run_speedup_equi(*args, **kwargs) -> ScheduleResult:
    """Deprecated alias; use ``repro.run("speedup-equi", jobset, m=...)``."""
    from repro._deprecation import warn_once

    warn_once("repro.speedup.engine.run_speedup_equi", "repro.run")
    return _run_speedup_equi(*args, **kwargs)
