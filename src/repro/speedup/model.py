"""The arbitrary speedup-curves job model.

Following the paper's Section 8 description: "each job J_j consists of
mu_j phases and the i-th phase is associated with a tuple
(p_{i,j}, Gamma_{i,j}(m'))... the phases of the job must be processed
sequentially and Gamma specifies the parallelizability.  It is generally
assumed that Gamma is a non-decreasing sublinear function."

Speedup functions are classes (not bare callables) so they can declare
their *useful processor count* -- the allocation beyond which the rate
stops improving -- which greedy allocators need.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple


class SpeedupFunction(ABC):
    """A non-decreasing, sublinear speedup curve ``Gamma(p)``.

    ``rate(p)`` is the processing rate (work units per time unit at
    speed 1) when the job's current phase holds ``p`` processors;
    ``rate(0) == 0`` always.
    """

    @abstractmethod
    def rate(self, p: int) -> float:
        """Processing rate on ``p >= 0`` processors."""

    @property
    @abstractmethod
    def useful_processors(self) -> int:
        """Smallest allocation achieving the maximum rate.

        ``math.inf``-like behaviour (strictly increasing curves such as
        power laws) is represented by a large sentinel; allocators cap
        at ``m`` anyway.
        """

    def _check_p(self, p: int) -> None:
        if p < 0:
            raise ValueError(f"processor count must be >= 0, got {p}")


class LinearCapped(SpeedupFunction):
    """``Gamma(p) = min(p, cap)`` -- linear speedup up to a parallelism cap.

    The workhorse curve: a job that scales perfectly to ``cap``
    processors and not at all beyond.  ``cap = 1`` is a sequential job
    (see :class:`Sequential`).
    """

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = int(cap)

    def rate(self, p: int) -> float:
        self._check_p(p)
        return float(min(p, self.cap))

    @property
    def useful_processors(self) -> int:
        return self.cap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearCapped({self.cap})"


class Sequential(LinearCapped):
    """``Gamma(p) = min(p, 1)`` -- a phase that cannot parallelize."""

    def __init__(self) -> None:
        super().__init__(1)


class PowerLaw(SpeedupFunction):
    """``Gamma(p) = p^beta`` with ``0 < beta <= 1`` -- diminishing returns.

    The paper's Section 8 example is ``Gamma(p) = sqrt(p)`` (beta = 1/2),
    which it uses to argue DAGs cannot express such curves: a DAG's
    parallelism is "essentially linear up to the number of ready nodes".
    """

    #: Allocation sentinel for strictly increasing curves.
    _UNBOUNDED = 1 << 30

    def __init__(self, beta: float) -> None:
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must lie in (0, 1], got {beta}")
        self.beta = float(beta)

    def rate(self, p: int) -> float:
        self._check_p(p)
        return float(p) ** self.beta

    @property
    def useful_processors(self) -> int:
        return self._UNBOUNDED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PowerLaw({self.beta})"


class Sqrt(PowerLaw):
    """``Gamma(p) = sqrt(p)`` -- the paper's Section 8 example curve."""

    def __init__(self) -> None:
        super().__init__(0.5)


@dataclass(frozen=True)
class Phase:
    """One sequential phase: ``work`` units processed at ``speedup``'s rate."""

    work: float
    speedup: SpeedupFunction

    def __post_init__(self) -> None:
        if self.work <= 0:
            raise ValueError(f"phase work must be positive, got {self.work}")


@dataclass(frozen=True)
class SpeedupJob:
    """A job in the speedup-curves model: sequential phases + metadata."""

    job_id: int
    phases: Tuple[Phase, ...]
    arrival: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"job {self.job_id} has no phases")
        if self.arrival < 0:
            raise ValueError(f"job {self.job_id} has negative arrival")
        if self.weight <= 0:
            raise ValueError(f"job {self.job_id} has non-positive weight")

    @property
    def total_work(self) -> float:
        """Sum of phase works."""
        return sum(ph.work for ph in self.phases)

    @property
    def span(self) -> float:
        """Execution time on unbounded processors at speed 1.

        Each phase runs at its maximum rate; for strictly increasing
        curves this is 0-approaching-time in the limit, so the span uses
        the rate at the ``useful_processors`` sentinel -- callers
        comparing against DAG spans use linear-capped curves, where this
        is exact.
        """
        return sum(
            ph.work / ph.speedup.rate(ph.speedup.useful_processors)
            for ph in self.phases
        )


class SpeedupJobSet:
    """An ordered instance of speedup-curve jobs (arrival order, dense ids)."""

    def __init__(self, jobs: Iterable[SpeedupJob]) -> None:
        ordered = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        self._jobs: Tuple[SpeedupJob, ...] = tuple(
            SpeedupJob(
                job_id=i, phases=j.phases, arrival=j.arrival, weight=j.weight
            )
            for i, j in enumerate(ordered)
        )
        if not self._jobs:
            raise ValueError("a SpeedupJobSet must contain at least one job")

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[SpeedupJob]:
        return iter(self._jobs)

    def __getitem__(self, idx: int) -> SpeedupJob:
        return self._jobs[idx]

    @property
    def arrivals(self) -> List[float]:
        """Arrival times in arrival order."""
        return [j.arrival for j in self._jobs]

    @property
    def weights(self) -> List[float]:
        """Weights in arrival order."""
        return [j.weight for j in self._jobs]

    @property
    def total_work(self) -> float:
        """Sum of all jobs' phase works."""
        return sum(j.total_work for j in self._jobs)
