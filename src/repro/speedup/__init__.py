"""The arbitrary speedup-curves model (Section 8 contrast substrate).

The paper's related-work section contrasts the DAG model against the
*arbitrary speedup curves* model -- jobs as sequences of phases, each
with a work amount and a speedup function ``Gamma(p)`` giving the
processing rate on ``p`` processors -- and argues the two are
fundamentally different: a DAG's realizable parallelism depends on
*which* nodes ran, not just how much work was done, so neither model
simulates the other.  The conclusion invites exploring the connection.

This subpackage makes that comparison executable:

* :mod:`~repro.speedup.model` -- speedup functions (linear-capped,
  power-law, sqrt), phased jobs, job sets;
* :mod:`~repro.speedup.engine` -- an exact event-driven simulator with
  FIFO-greedy and EQUI (equal-split) allocation policies;
* :mod:`~repro.speedup.convert` -- the natural DAG -> speedup-curves
  conversion (phases from the infinite-processor parallelism profile),
  plus the experiment hook that *measures the conversion error* --
  exact for chains, divergent for irregular DAGs, which is the paper's
  model-separation claim in numbers (bench ``ext-speedup``).
"""

from repro.speedup.model import (
    LinearCapped,
    Phase,
    PowerLaw,
    Sequential,
    SpeedupFunction,
    SpeedupJob,
    SpeedupJobSet,
    Sqrt,
)
from repro.speedup.engine import run_speedup_fifo, run_speedup_equi
from repro.speedup.convert import dag_to_speedup_job, jobset_to_speedup

__all__ = [
    "SpeedupFunction",
    "LinearCapped",
    "Sequential",
    "PowerLaw",
    "Sqrt",
    "Phase",
    "SpeedupJob",
    "SpeedupJobSet",
    "run_speedup_fifo",
    "run_speedup_equi",
    "dag_to_speedup_job",
    "jobset_to_speedup",
]
