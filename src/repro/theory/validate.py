"""Run-vs-theory validators.

Each checker runs (or accepts) simulated results and evaluates one of the
paper's quantitative claims on them, returning a :class:`BoundCheck`.

Soundness note (also in DESIGN.md): the theorems compare against the true
optimum, which we can only *lower-bound* via
:func:`repro.core.opt.opt_lower_bound`.  Substituting the lower bound for
OPT only makes the inequality under test **harder to satisfy** (it can
only shrink the right side of ``F_max <= c * OPT``), so:

* a PASS is a genuine confirmation;
* a FAIL is *suggestive*, not a proof of violation -- the benches report
  FAILs with the measured slack rather than asserting.

The checks that are unconditional invariants (lower-bound soundness, span
bounds, work conservation) are safe to assert, and the test suite does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.opt import opt_lower_bound
from repro.dag.job import JobSet
from repro.sim.result import ScheduleResult
from repro.theory import bounds


@dataclass(frozen=True)
class BoundCheck:
    """Outcome of one theory check.

    Attributes
    ----------
    name:
        Which claim was checked.
    passed:
        Whether the measured value respected the bound.
    measured:
        The run's value (e.g. its max flow, or a ratio).
    bound:
        The theoretical value it was compared against.
    sound_to_assert:
        True for unconditional invariants; False where the OPT lower
        bound stands in for the true OPT (see module docstring).
    """

    name: str
    passed: bool
    measured: float
    bound: float
    sound_to_assert: bool

    @property
    def slack(self) -> float:
        """``bound / measured`` -- how much headroom the run left (>1 = pass)."""
        if self.measured == 0:
            return float("inf")
        return self.bound / self.measured

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.name}: measured={self.measured:.4f} "
            f"bound={self.bound:.4f} (slack {self.slack:.2f}x)"
        )


def check_lower_bound_soundness(
    result: ScheduleResult, jobset: JobSet
) -> BoundCheck:
    """OPT-lb soundness: ``opt_lb.max_flow <= result.max_flow`` at equal speed.

    Valid for any *feasible* schedule produced at the same speed as the
    lower bound is evaluated at.  This is the master invariant of the
    whole evaluation methodology (Section 6's "at least as good as any
    feasible scheduler") and is safe to assert.
    """
    lb = opt_lower_bound(jobset, m=result.m, speed=result.speed)
    return BoundCheck(
        name="opt-lower-bound-soundness",
        passed=lb.max_flow <= result.max_flow + 1e-6,
        measured=result.max_flow,
        bound=lb.max_flow,
        sound_to_assert=True,
    )


def check_span_lower_bounds(result: ScheduleResult, jobset: JobSet) -> BoundCheck:
    """Per-job physics: ``F_i >= P_i / speed`` for every job.

    No scheduler can beat a job's critical path (Proposition 2.1's
    contrapositive); safe to assert for any engine output.
    """
    spans = np.asarray(jobset.spans, dtype=np.float64)
    min_flows = spans / result.speed
    deficits = min_flows - result.flows
    worst = float(deficits.max())
    return BoundCheck(
        name="span-lower-bounds",
        passed=worst <= 1e-6,
        measured=float((result.flows / min_flows).min()),
        bound=1.0,
        sound_to_assert=True,
    )


def check_work_conservation(result: ScheduleResult, jobset: JobSet) -> BoundCheck:
    """Every work unit executed exactly once: ``busy_steps == total work``.

    Holds for both engines on complete runs; safe to assert.  (The OPT
    lower bound also reports its instance's total work for uniformity.)
    """
    return BoundCheck(
        name="work-conservation",
        passed=abs(result.stats.busy_steps - jobset.total_work) <= 1,
        measured=float(result.stats.busy_steps),
        bound=float(jobset.total_work),
        sound_to_assert=True,
    )


def check_fifo_theorem(
    fifo_result: ScheduleResult,
    jobset: JobSet,
    eps: float,
) -> BoundCheck:
    """Theorem 3.1: FIFO at ``(1+eps)``-speed has ``F_max <= (3/eps) OPT``.

    ``fifo_result`` must have been produced at speed
    :func:`repro.theory.bounds.fifo_speed`; OPT is evaluated at speed 1.
    Uses the OPT lower bound in place of OPT, so a FAIL is suggestive
    only (see module docstring) -- but in practice the slack is large.
    """
    expected_speed = bounds.fifo_speed(eps)
    if abs(fifo_result.speed - expected_speed) > 1e-9:
        raise ValueError(
            f"FIFO result was run at speed {fifo_result.speed}, but "
            f"Theorem 3.1 with eps={eps} requires speed {expected_speed}"
        )
    lb = opt_lower_bound(jobset, m=fifo_result.m, speed=1.0)
    bound_value = bounds.fifo_competitive_ratio(eps) * lb.max_flow
    return BoundCheck(
        name=f"fifo-theorem-3.1(eps={eps:g})",
        passed=fifo_result.max_flow <= bound_value + 1e-6,
        measured=fifo_result.max_flow,
        bound=bound_value,
        sound_to_assert=False,
    )


def check_steal_k_first_theorem(
    ws_result: ScheduleResult,
    jobset: JobSet,
    eps: float,
    k: int,
) -> BoundCheck:
    """Theorem 4.1: steal-k-first's max flow vs ``(65/eps^2)(OPT + ln n + k)``.

    ``ws_result`` must have been produced at speed
    :func:`repro.theory.bounds.steal_k_first_speed` with the theoretical
    cost model (``steals_per_tick=1``).  The claim is probabilistic
    (holds w.h.p.), and OPT is replaced by its lower bound, so treat
    FAILs as signals.
    """
    expected_speed = bounds.steal_k_first_speed(k, eps)
    if abs(ws_result.speed - expected_speed) > 1e-9:
        raise ValueError(
            f"result was run at speed {ws_result.speed}, but Theorem 4.1 "
            f"with k={k}, eps={eps} requires speed {expected_speed}"
        )
    lb = opt_lower_bound(jobset, m=ws_result.m, speed=1.0)
    bound_value = bounds.steal_k_first_flow_bound(
        eps, k, lb.max_flow, len(jobset)
    )
    return BoundCheck(
        name=f"steal-k-first-theorem-4.1(k={k}, eps={eps:g})",
        passed=ws_result.max_flow <= bound_value + 1e-6,
        measured=ws_result.max_flow,
        bound=bound_value,
        sound_to_assert=False,
    )


def check_bwf_theorem(
    bwf_result: ScheduleResult,
    jobset: JobSet,
    eps: float,
) -> BoundCheck:
    """Theorem 7.1: BWF at ``(1+3eps)``-speed has
    ``max w_i F_i <= (3/eps^2) OPT_w``.

    ``OPT_w`` (optimal max weighted flow) is lower-bounded by
    ``max_i w_i * lb_flow_i`` where ``lb_flow_i`` comes from both
    relaxations: the aggregate-machine FIFO queue *restricted to jobs of
    weight >= w_i* (lighter jobs cannot delay heavier ones under any
    priority-respecting optimum -- and more strongly, ANY schedule must
    fit the heavy jobs' work on the machine), and the per-job span.

    For simplicity and strict soundness we use the weaker universal
    bound ``OPT_w >= max_i w_i * P_i`` combined with the unweighted
    aggregate bound scaled by the minimum weight; see the bench for the
    empirical-slack discussion.
    """
    expected_speed = bounds.bwf_speed(eps)
    if abs(bwf_result.speed - expected_speed) > 1e-9:
        raise ValueError(
            f"BWF result was run at speed {bwf_result.speed}, but "
            f"Theorem 7.1 with eps={eps} requires speed {expected_speed}"
        )
    weights = np.asarray(jobset.weights, dtype=np.float64)
    spans = np.asarray(jobset.spans, dtype=np.float64)
    # Sound lower bounds on the optimal max weighted flow:
    #   (a) every job's flow is at least its span: OPT_w >= max w_i P_i;
    #   (b) the unweighted aggregate-machine bound F says some job has
    #       flow >= F in any schedule; the cheapest way to pay it is on
    #       a min-weight job: OPT_w >= min_w * F.
    lb_unweighted = opt_lower_bound(jobset, m=bwf_result.m, speed=1.0)
    opt_w_lb = max(
        float((weights * spans).max()),
        float(weights.min()) * lb_unweighted.max_flow,
    )
    bound_value = bounds.bwf_competitive_ratio(eps) * opt_w_lb
    return BoundCheck(
        name=f"bwf-theorem-7.1(eps={eps:g})",
        passed=bwf_result.max_weighted_flow <= bound_value + 1e-6,
        measured=bwf_result.max_weighted_flow,
        bound=bound_value,
        sound_to_assert=False,
    )
