"""The paper's theorems as checkable formulas.

:mod:`~repro.theory.bounds` transcribes every quantitative statement of
the paper into a function (speeds, competitive ratios, flow bounds,
lower-bound magnitudes); :mod:`~repro.theory.validate` pairs those
formulas with simulated runs, producing sound checks the test suite and
the theorem benches consume.
"""

from repro.theory.bounds import (
    bwf_competitive_ratio,
    bwf_speed,
    fifo_competitive_ratio,
    fifo_speed,
    graham_makespan_bound,
    sequential_fifo_competitive_ratio,
    steal_k_first_flow_bound,
    steal_k_first_speed,
    work_stealing_lower_bound,
    weighted_lower_bound_exponent,
)
from repro.theory.queueing import (
    mg1_mean_flow,
    mg1_mean_wait,
    predicted_opt_mean_flow,
    service_moments,
    squared_cv,
    utilization,
)
from repro.theory.validate import (
    BoundCheck,
    check_fifo_theorem,
    check_bwf_theorem,
    check_lower_bound_soundness,
    check_span_lower_bounds,
    check_steal_k_first_theorem,
    check_work_conservation,
)

__all__ = [
    "fifo_speed",
    "fifo_competitive_ratio",
    "steal_k_first_speed",
    "steal_k_first_flow_bound",
    "bwf_speed",
    "bwf_competitive_ratio",
    "work_stealing_lower_bound",
    "graham_makespan_bound",
    "sequential_fifo_competitive_ratio",
    "weighted_lower_bound_exponent",
    "BoundCheck",
    "check_fifo_theorem",
    "check_bwf_theorem",
    "check_steal_k_first_theorem",
    "check_lower_bound_soundness",
    "check_span_lower_bounds",
    "check_work_conservation",
    "mg1_mean_wait",
    "mg1_mean_flow",
    "predicted_opt_mean_flow",
    "service_moments",
    "squared_cv",
    "utilization",
]
