"""Analytical queueing cross-checks for the simulated OPT bound.

The paper's simulated OPT reduces the parallel instance to a
single-server FIFO queue (service ``W_i / m`` at one aggregate machine),
which for Poisson arrivals is exactly an **M/G/1-FIFO** system.  Classic
queueing theory then predicts its steady-state behaviour in closed form,
giving an *independent* check on the whole simulation pipeline -- if the
generator's arrival process, the work distribution's moments, and the
OPT computation are all right, the simulated mean flow must match
Pollaczek-Khinchine.  The test suite runs exactly that comparison.

Formulas (service time S, arrival rate lam, utilization rho = lam E[S]):

* Pollaczek-Khinchine mean wait:
  ``E[Wq] = lam E[S^2] / (2 (1 - rho))``;
* mean flow (sojourn): ``E[F] = E[Wq] + E[S]``;
* squared coefficient of variation: ``cs2 = Var[S] / E[S]^2``.

These model the *aggregate-machine relaxation*, not the real
m-processor DAG system; they are exact for the OPT bound's queue and a
lower-bound approximation for feasible schedulers.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def service_moments(
    works: np.ndarray, m: int, speed: float = 1.0
) -> Tuple[float, float]:
    """(E[S], E[S^2]) of the aggregate-machine service times ``W/(m s)``."""
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    s = np.asarray(works, dtype=np.float64) / (m * speed)
    return float(s.mean()), float((s**2).mean())


def utilization(rate: float, mean_service: float) -> float:
    """``rho = lam E[S]``; >= 1 means an unstable queue."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if mean_service <= 0:
        raise ValueError(f"mean service must be positive, got {mean_service}")
    return rate * mean_service


def mg1_mean_wait(rate: float, mean_service: float, second_moment: float) -> float:
    """Pollaczek-Khinchine: mean queueing delay of M/G/1-FIFO.

    Raises if the queue is unstable (``rho >= 1``): the steady-state
    mean does not exist there, matching the simulation's unbounded
    backlog in overload.
    """
    rho = utilization(rate, mean_service)
    if rho >= 1.0:
        raise ValueError(
            f"M/G/1 is unstable at rho={rho:.3f} >= 1; no steady-state mean"
        )
    if second_moment < mean_service**2:
        raise ValueError(
            "E[S^2] must be at least E[S]^2 "
            f"(got {second_moment} < {mean_service**2})"
        )
    return rate * second_moment / (2.0 * (1.0 - rho))


def mg1_mean_flow(rate: float, mean_service: float, second_moment: float) -> float:
    """Mean sojourn (flow) time of M/G/1-FIFO: wait plus service."""
    return mg1_mean_wait(rate, mean_service, second_moment) + mean_service


def squared_cv(works: np.ndarray) -> float:
    """Squared coefficient of variation of the work distribution.

    1.0 for exponential work; >> 1 for the heavy-tailed distributions
    where the paper's max-flow story gets interesting.
    """
    w = np.asarray(works, dtype=np.float64)
    mean = w.mean()
    if mean <= 0:
        raise ValueError("works must have positive mean")
    return float(w.var() / mean**2)


def predicted_opt_mean_flow(
    works: np.ndarray, rate: float, m: int, speed: float = 1.0
) -> float:
    """PK prediction for the simulated-OPT bound's mean flow.

    ``works`` should be the *realized* job works of the instance (using
    realized moments removes sampling error from the comparison); with
    Poisson arrivals at ``rate`` this is the exact steady-state mean of
    the queue that :func:`repro.core.opt.opt_lower_bound` simulates --
    up to finite-horizon effects, which shrink as n grows.
    """
    mean_s, second = service_moments(works, m, speed)
    return mg1_mean_flow(rate, mean_s, second)
