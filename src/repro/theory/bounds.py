"""Quantitative statements of the paper's theorems, as plain functions.

Each function transcribes one theorem/lemma with its exact constants (the
constants the proofs establish, not just the O-notation), so that tests
and benches can evaluate "is this run consistent with the theory?"
numerically.

===========================  ===========================================
Theorem 3.1                  :func:`fifo_speed`,
                             :func:`fifo_competitive_ratio`
Theorem 4.1 / Cor. 4.2-4.3   :func:`steal_k_first_speed`,
                             :func:`steal_k_first_flow_bound`
Lemma 5.1                    :func:`work_stealing_lower_bound`
Theorem 7.1                  :func:`bwf_speed`,
                             :func:`bwf_competitive_ratio`
Related work (Sec. 1)        :func:`sequential_fifo_competitive_ratio`,
                             :func:`weighted_lower_bound_exponent`
===========================  ===========================================
"""

from __future__ import annotations

import math


def fifo_speed(eps: float) -> float:
    """Speed FIFO needs for Theorem 3.1: ``1 + eps``."""
    _require_eps(eps)
    return 1.0 + eps


def fifo_competitive_ratio(eps: float) -> float:
    """Theorem 3.1's proved constant: FIFO at ``(1+eps)``-speed is
    ``3/eps``-competitive for maximum unweighted flow time (0 < eps < 1).
    """
    _require_eps(eps, upper=1.0)
    return 3.0 / eps


def steal_k_first_speed(k: int, eps: float) -> float:
    """Speed steal-k-first needs for Theorem 4.1: ``k + 1 + (k+2) eps``.

    Requires ``0 < eps < 1/(k+2)``.  For ``k = 0`` (admit-first) this is
    ``1 + 2 eps``; Corollary 4.3 rescales it to the ``1 + eps`` form.
    """
    _require_k(k)
    if not 0.0 < eps < 1.0 / (k + 2):
        raise ValueError(
            f"Theorem 4.1 requires 0 < eps < 1/(k+2) = {1.0/(k+2):.4f}, "
            f"got eps={eps}"
        )
    return k + 1 + (k + 2) * eps


def steal_k_first_flow_bound(eps: float, k: int, opt: float, n: int) -> float:
    """Theorem 4.1's proved max-flow bound: ``(65/eps^2)(OPT + ln n + k)``.

    The proof shows that, with probability at least ``1 - 1/n``,
    steal-k-first at :func:`steal_k_first_speed` has maximum flow at most
    this value.  Note this is a bound on the *flow time itself*, not a
    ratio -- the ``max{OPT, ln n}`` in the theorem statement is the
    rewritten form.
    """
    _require_k(k)
    if not 0.0 < eps < 1.0 / (k + 2):
        raise ValueError(
            f"Theorem 4.1 requires 0 < eps < 1/(k+2) = {1.0/(k+2):.4f}, "
            f"got eps={eps}"
        )
    if opt <= 0:
        raise ValueError(f"OPT must be positive, got {opt}")
    if n < 1:
        raise ValueError(f"need at least one job, got n={n}")
    return (65.0 / eps**2) * (opt + math.log(n) + k)


def bwf_speed(eps: float) -> float:
    """Speed BWF needs for Theorem 7.1's proof form: ``1 + 3 eps``.

    The proof assumes speed ``1 + 3 eps`` with ``0 < eps < 1/3`` and
    shows ``3/eps^2``-competitiveness; the theorem statement rescales to
    ``(1 + eps)``-speed ``O(1/eps^2)``.
    """
    _require_eps(eps, upper=1.0 / 3.0)
    return 1.0 + 3.0 * eps


def bwf_competitive_ratio(eps: float) -> float:
    """Theorem 7.1's proved constant: BWF at ``(1+3 eps)``-speed is
    ``3/eps^2``-competitive for maximum weighted flow time.
    """
    _require_eps(eps, upper=1.0 / 3.0)
    return 3.0 / eps**2


def work_stealing_lower_bound(n: int, speed: float = 1.0) -> float:
    """Lemma 5.1: expected max flow ``>= log2(n)/(10 s)`` on the instance.

    On the adversarial instance with ``m = log2 n`` machines, some job
    runs (nearly) sequentially in expectation, giving expected max flow
    ``(m/10 + 1)/s`` against OPT's 2 -- i.e. ``Omega(log n)``
    competitiveness for any constant speed ``s``.
    """
    if n < 2:
        raise ValueError(f"the construction needs n >= 2, got {n}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    m = math.log2(n)
    return (m / 10.0 + 1.0) / speed


def sequential_fifo_competitive_ratio(m: int) -> float:
    """FIFO's ratio for *sequential* jobs: ``3/2 - 1/m`` (Section 1).

    Quoted from the related-work baseline (Ambuehl & Mastrolilli;
    Bender et al.); used by tests that cross-check the engines on
    single-node DAGs against the sequential literature.
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    return 1.5 - 1.0 / m


def weighted_lower_bound_exponent() -> float:
    """Without augmentation, weighted max flow is ``Omega(W^0.4)``-hard.

    ``W`` is the max/min weight ratio (Chekuri-Im-Moseley, cited in
    Section 1) -- the reason BWF is analyzed with resource augmentation
    at all.  Returned as the exponent ``0.4``.
    """
    return 0.4


def _require_eps(eps: float, upper: float = math.inf) -> None:
    if not 0.0 < eps < upper:
        bound = "" if upper == math.inf else f" and < {upper:g}"
        raise ValueError(f"eps must be > 0{bound}, got {eps}")


def _require_k(k: int) -> None:
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")


def graham_makespan_bound(work: float, span: float, m: int) -> float:
    """Graham's list-scheduling bound: ``W/m + (m-1)/m * P``.

    The paper's footnote 1 notes makespan is the all-arrive-together
    special case of max flow.  Any *greedy* schedule of a single DAG
    (never idling a processor while a ready node exists) finishes by
    this bound -- the centralized engine's FIFO is greedy on a lone job,
    so the property tests assert it; the work-stealing engine is only
    greedy up to steal latency, so its bench compares against the bound
    plus the measured steal overhead.
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    if work <= 0 or span <= 0:
        raise ValueError("work and span must be positive")
    if span > work:
        raise ValueError(f"span {span} cannot exceed work {work}")
    return work / m + (m - 1) / m * span
