"""The Section 5 lower-bound instance for randomized work stealing.

Lemma 5.1 constructs an input on which *any* work-stealing scheduler with
constant speed augmentation is ``Omega(log n)``-competitive for max flow
time.  The construction:

* machine size ``m = log n`` (so ``n = 2^m`` jobs);
* each job is one root task that is the predecessor of ``m/10``
  independent unit tasks (total work ``m/10 + 1``);
* one job is released every ``2m`` time units, so jobs never overlap in
  any non-idling schedule, and an ideal scheduler finishes each job in 2
  time steps (root, then all children in parallel).

The pain mechanism: after a worker executes the root, the ``m/10``
children sit in *that worker's deque*; every other worker must find them
by uniform random steals, and with probability ``(1/2e)^{m/10}`` per job
all steals miss long enough that the job runs (nearly) sequentially,
costing ``m/10 + 1`` steps.  Over ``2^m`` jobs that event happens in
expectation, so the expected max flow is ``Omega(m) = Omega(log n)``
while OPT's is 2.

This module generates the instance and its closed-form OPT value; the
``lb5`` bench sweeps ``n`` and shows the scheduler/OPT ratio growing
logarithmically.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.dag.builders import adversarial_fork
from repro.dag.job import Job, JobSet


def adversarial_machine_size(n_jobs: int) -> int:
    """The construction's machine size ``m = log2(n)`` (at least 10).

    The floor of 10 keeps the fan-out ``m // 10`` at least 1, matching
    the paper's implicit "sufficiently large m" assumption.
    """
    if n_jobs < 2:
        raise ValueError(f"the construction needs at least 2 jobs, got {n_jobs}")
    return max(10, int(round(math.log2(n_jobs))))


def adversarial_instance(
    n_jobs: int,
    m: int | None = None,
    spacing: float | None = None,
    fanout: int | None = None,
) -> Tuple[JobSet, int]:
    """Build the Lemma 5.1 instance.

    Parameters
    ----------
    n_jobs:
        Number of identical single-fork jobs.
    m:
        Machine size; defaults to :func:`adversarial_machine_size`.
    spacing:
        Release period; defaults to the paper's ``2m``.
    fanout:
        Children per job; defaults to the paper's ``m // 10``.  The
        empirical lb5 experiment uses ``m // 2``: the paper's constant
        is asymptotic (the fan-out only exceeds 1 for m >= 20, i.e.
        n >= 2^20 jobs), so a larger constant makes the same mechanism
        visible at laptop scale without changing the construction --
        OPT still finishes every job in 2 steps.

    Returns
    -------
    (jobset, m):
        The instance and the machine size it must be run on.
    """
    if m is None:
        m = adversarial_machine_size(n_jobs)
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    if spacing is None:
        spacing = 2.0 * m
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    if fanout is not None and not 1 <= fanout <= m:
        raise ValueError(f"fanout must lie in [1, m={m}], got {fanout}")

    # Shared, immutable: one DAG backs all jobs.
    dag = adversarial_fork(m, fanout=fanout)
    jobs = [
        Job(job_id=i, dag=dag, arrival=spacing * i, weight=1.0)
        for i in range(n_jobs)
    ]
    return JobSet(jobs), m


def adversarial_opt_max_flow(m: int, speed: float = 1.0) -> float:
    """Max flow of the ideal schedule on the instance: 2 time steps.

    The root runs for one step, then all ``m // 10`` children run in
    parallel for one step (they fit: ``m // 10 <= m``).  Jobs never
    overlap, so every job's flow is exactly ``2 / speed``.
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    return 2.0 / speed


def sequential_execution_flow(
    m: int, speed: float = 1.0, fanout: int | None = None
) -> float:
    """Flow of a job on the instance if it runs fully sequentially.

    ``fanout + 1`` units on one worker (paper default fan-out
    ``m // 10``) -- the bad event the lower bound engineers.  The ratio
    to :func:`adversarial_opt_max_flow` is ``Theta(m) = Theta(log n)``.
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    if fanout is None:
        fanout = max(1, m // 10)
    return (fanout + 1) / speed
