"""Workload generation substrate.

Everything the paper's evaluation (Section 6) consumes:

* :mod:`~repro.workloads.distributions` -- per-job total-work
  distributions: synthetic stand-ins for the Bing web-search and finance
  (option-pricing) server measurements of Figure 3, the log-normal
  distribution of Figure 2(c), and stock distributions for tests;
* :mod:`~repro.workloads.arrivals` -- arrival processes (Poisson, as in
  the paper, plus uniform / bursty / periodic for ablations);
* :mod:`~repro.workloads.generator` -- :class:`WorkloadSpec`, which zips a
  distribution, an arrival process and a job shape into a
  :class:`~repro.dag.job.JobSet`, with QPS <-> utilization accounting;
* :mod:`~repro.workloads.stream` -- :class:`StreamSpec` /
  :class:`StreamCursor`, the lazy chunked counterpart of
  ``WorkloadSpec.build_flat`` for bounded-memory streaming runs
  (``repro.run(..., stream=...)``);
* :mod:`~repro.workloads.adversarial` -- the Section 5 lower-bound
  instance on which randomized work stealing is ``Omega(log n)``
  competitive;
* :mod:`~repro.workloads.weights` -- weight assignment schemes for the
  Section 7 weighted experiments.
"""

from repro.workloads.distributions import (
    BingDistribution,
    BoundedParetoDistribution,
    ConstantDistribution,
    ExponentialDistribution,
    FinanceDistribution,
    LogNormalDistribution,
    MixtureDistribution,
    UniformDistribution,
    WorkDistribution,
)
from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    MarkovModulatedProcess,
    PeriodicProcess,
    PoissonProcess,
    UniformProcess,
)
from repro.workloads.generator import (
    WorkloadSpec,
    expected_utilization,
    qps_to_rate,
)
from repro.workloads.stream import StreamCursor, StreamSpec
from repro.workloads.adversarial import (
    adversarial_instance,
    adversarial_machine_size,
    adversarial_opt_max_flow,
    sequential_execution_flow,
)
from repro.workloads.weights import (
    class_weights,
    constant_weights,
    reweight,
    span_inverse_weights,
    uniform_weights,
    work_inverse_weights,
    work_proportional_weights,
)
from repro.workloads.trace import (
    jobset_from_trace,
    load_trace_csv,
    save_trace_csv,
)

__all__ = [
    "WorkDistribution",
    "BingDistribution",
    "FinanceDistribution",
    "LogNormalDistribution",
    "MixtureDistribution",
    "UniformDistribution",
    "ConstantDistribution",
    "ExponentialDistribution",
    "BoundedParetoDistribution",
    "ArrivalProcess",
    "PoissonProcess",
    "UniformProcess",
    "BurstyProcess",
    "PeriodicProcess",
    "MarkovModulatedProcess",
    "WorkloadSpec",
    "expected_utilization",
    "qps_to_rate",
    "StreamSpec",
    "StreamCursor",
    "adversarial_instance",
    "adversarial_machine_size",
    "adversarial_opt_max_flow",
    "sequential_execution_flow",
    "class_weights",
    "constant_weights",
    "reweight",
    "span_inverse_weights",
    "uniform_weights",
    "work_inverse_weights",
    "work_proportional_weights",
    "jobset_from_trace",
    "load_trace_csv",
    "save_trace_csv",
]
