"""Per-job total-work distributions.

The paper evaluates on work distributions measured from two production
services -- Bing web search (Figure 3a, from Kim et al., WSDM '15) and an
option-pricing finance server (Figure 3b, from Ren et al., ICAC '13) --
plus a synthetic log-normal distribution.  The raw traces are not public,
so this module provides synthetic distributions fitted to the *published
histograms* (the only way the traces enter the experiments; see the
substitution table in DESIGN.md):

* :class:`BingDistribution` -- unimodal with a sharp peak at small work
  and a long tail: the bulk of requests cost 15-55 ms with a tail out to
  ~205 ms in the published histogram.
* :class:`FinanceDistribution` -- bimodal on a short support (4-56 ms in
  the published histogram) with a dominant low mode and a secondary high
  mode.
* :class:`LogNormalDistribution` -- the classic heavy-tailed service-time
  model the paper uses as its synthetic workload.

Scaling convention
------------------
Each distribution has a canonical *shape*; the ``mean_ms`` constructor
argument rescales it multiplicatively so that its mean is exactly that
many milliseconds.  This separates shape (what Figure 3 shows) from load
calibration (Section 6 picks QPS for ~50/60/70% utilization; utilization
= QPS x mean work / m, so pinning the mean makes the paper's QPS labels
land on the paper's utilizations -- see :mod:`repro.workloads.generator`).

Samples are returned either in milliseconds (floats, for histograms) or
in integer *work units* via ``units_per_ms`` (for building DAGs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sim.rng import SeedLike, make_rng

#: Sample count used to calibrate canonical means, and the fixed seed for
#: it.  Calibration is deterministic and happens once per instance.
_CALIBRATION_SAMPLES = 200_000
_CALIBRATION_SEED = 0xC0FFEE


class WorkDistribution(ABC):
    """A distribution over per-job total work.

    Subclasses implement :meth:`_sample_canonical`, the unscaled shape;
    the base class handles mean calibration and unit conversion.
    """

    def __init__(self, mean_ms: float) -> None:
        if mean_ms <= 0:
            raise ValueError(f"mean_ms must be positive, got {mean_ms}")
        self.mean_ms = float(mean_ms)
        self._scale: float | None = None  # lazily calibrated

    # -- to be provided by subclasses -----------------------------------

    @abstractmethod
    def _sample_canonical(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` samples of the canonical (unscaled) shape, > 0."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in reports (``"bing"`` etc.)."""

    def token(self) -> str:
        """Canonical parameter string for the instance-cache spec hash.

        Excludes underscore-prefixed attributes (lazily computed caches
        such as the calibration ``_scale``), which are derived state, not
        identity: two distributions with equal tokens sample identically
        from identical seeds.
        """
        params = ",".join(
            f"{k}={v!r}"
            for k, v in sorted(vars(self).items())
            if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"

    # -- calibration ------------------------------------------------------

    def _ensure_scale(self) -> float:
        """Multiplier taking the canonical mean to ``mean_ms`` (cached)."""
        if self._scale is None:
            rng = make_rng(_CALIBRATION_SEED)
            canonical_mean = float(
                self._sample_canonical(rng, _CALIBRATION_SAMPLES).mean()
            )
            if canonical_mean <= 0:
                raise RuntimeError(
                    f"{self.name}: canonical samples have non-positive mean"
                )
            self._scale = self.mean_ms / canonical_mean
        return self._scale

    @classmethod
    def natural(cls, **kwargs) -> "WorkDistribution":
        """Instance at its canonical scale (``mean_ms`` = canonical mean).

        Figure 3 of the paper plots the *raw* measured distributions
        (Bing's support runs 5-205 ms); the experiments then operate on
        load-calibrated rescalings.  ``natural()`` gives the un-rescaled
        shape, so histogram axes match the published figure.
        """
        probe = cls(mean_ms=1.0, **kwargs)
        rng = make_rng(_CALIBRATION_SEED)
        canonical_mean = float(
            probe._sample_canonical(rng, _CALIBRATION_SAMPLES).mean()
        )
        return cls(mean_ms=canonical_mean, **kwargs)

    # -- public sampling API ----------------------------------------------

    def sample_ms(self, rng: SeedLike, size: int) -> np.ndarray:
        """Draw ``size`` job works in milliseconds (float array, > 0)."""
        if size < 0:
            raise ValueError(f"cannot draw {size} samples")
        rng = make_rng(rng)
        return self._sample_canonical(rng, size) * self._ensure_scale()

    def sample_units(
        self, rng: SeedLike, size: int, units_per_ms: float = 4.0
    ) -> np.ndarray:
        """Draw ``size`` job works as integer work units (>= 1 each).

        ``units_per_ms`` sets the simulation resolution: with the default
        4 units/ms one work unit is 0.25 ms of the paper's machine.
        Works are rounded to the nearest unit and clamped to >= 1.
        """
        if units_per_ms <= 0:
            raise ValueError(f"units_per_ms must be positive, got {units_per_ms}")
        ms = self.sample_ms(rng, size)
        return np.maximum(1, np.rint(ms * units_per_ms)).astype(np.int64)

    def histogram(
        self,
        rng: SeedLike,
        size: int = 100_000,
        bin_width_ms: float = 8.0,
        max_ms: float | None = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Empirical (bin_edges_ms, probabilities) -- the Figure 3 view.

        Probabilities sum to 1 over the covered range; used by the fig3
        bench to print the distribution the way the paper plots it.
        """
        ms = self.sample_ms(rng, size)
        top = float(ms.max()) if max_ms is None else max_ms
        edges = np.arange(0.0, top + bin_width_ms, bin_width_ms)
        counts, edges = np.histogram(ms, bins=edges)
        return edges, counts / counts.sum()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(mean_ms={self.mean_ms})"


class BingDistribution(WorkDistribution):
    """Synthetic stand-in for the Bing web-search work distribution.

    Figure 3(a) of the paper shows a unimodal histogram: over half the
    probability mass in the first bins (roughly 15-55 ms), decaying into
    a long tail that stretches to ~205 ms.  We model this as a mixture of
    a log-normal body (87.5%) and a uniform long tail (12.5%), truncated
    to the published support, then rescale to ``mean_ms``.

    The canonical support is [5, 205] (the histogram's x-range); after
    rescaling the support scales accordingly.
    """

    #: Mixture and body parameters of the canonical shape.
    BODY_FRACTION = 0.875
    BODY_MEDIAN = 30.0
    BODY_SIGMA = 0.40
    TAIL_LOW, TAIL_HIGH = 55.0, 205.0
    SUPPORT_LOW, SUPPORT_HIGH = 5.0, 205.0

    def __init__(self, mean_ms: float = 10.0) -> None:
        super().__init__(mean_ms)

    @property
    def name(self) -> str:
        return "bing"

    def _sample_canonical(self, rng: np.random.Generator, size: int) -> np.ndarray:
        body = rng.lognormal(
            mean=np.log(self.BODY_MEDIAN), sigma=self.BODY_SIGMA, size=size
        )
        tail = rng.uniform(self.TAIL_LOW, self.TAIL_HIGH, size=size)
        take_body = rng.random(size) < self.BODY_FRACTION
        out = np.where(take_body, body, tail)
        return np.clip(out, self.SUPPORT_LOW, self.SUPPORT_HIGH)


class FinanceDistribution(WorkDistribution):
    """Synthetic stand-in for the option-pricing finance server distribution.

    Figure 3(b) of the paper shows a bimodal histogram on a short support
    (4-56 ms): a dominant mode near 12 ms and a secondary mode near
    36 ms.  We model it as a two-component truncated normal mixture.
    """

    LOW_WEIGHT = 0.62
    LOW_MODE, LOW_STD = 12.0, 3.5
    HIGH_MODE, HIGH_STD = 36.0, 6.0
    SUPPORT_LOW, SUPPORT_HIGH = 4.0, 56.0

    def __init__(self, mean_ms: float = 10.0) -> None:
        super().__init__(mean_ms)

    @property
    def name(self) -> str:
        return "finance"

    def _sample_canonical(self, rng: np.random.Generator, size: int) -> np.ndarray:
        low = rng.normal(self.LOW_MODE, self.LOW_STD, size=size)
        high = rng.normal(self.HIGH_MODE, self.HIGH_STD, size=size)
        take_low = rng.random(size) < self.LOW_WEIGHT
        out = np.where(take_low, low, high)
        return np.clip(out, self.SUPPORT_LOW, self.SUPPORT_HIGH)


class LogNormalDistribution(WorkDistribution):
    """The paper's synthetic log-normal workload (Figure 2c).

    The paper does not state the shape parameter; ``sigma = 1.0`` gives a
    pronounced heavy tail (95th percentile about 5x the median), a common
    choice for service-time modeling.  The canonical median is 1.0 and the
    distribution is truncated at ``clip_quantile_value`` times the median
    to keep single pathological jobs from dominating an entire run.
    """

    def __init__(
        self, mean_ms: float = 10.0, sigma: float = 1.0, clip: float = 50.0
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if clip <= 1:
            raise ValueError(f"clip must exceed the canonical median 1, got {clip}")
        self.sigma = float(sigma)
        self.clip = float(clip)
        super().__init__(mean_ms)

    @property
    def name(self) -> str:
        return "lognormal"

    def _sample_canonical(self, rng: np.random.Generator, size: int) -> np.ndarray:
        out = rng.lognormal(mean=0.0, sigma=self.sigma, size=size)
        return np.minimum(out, self.clip)


class UniformDistribution(WorkDistribution):
    """Uniform work on ``[low, high]`` (canonical), rescaled to ``mean_ms``."""

    def __init__(self, mean_ms: float = 10.0, low: float = 0.5, high: float = 1.5):
        if not 0 < low <= high:
            raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low, self.high = float(low), float(high)
        super().__init__(mean_ms)

    @property
    def name(self) -> str:
        return "uniform"

    def _sample_canonical(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)


class ConstantDistribution(WorkDistribution):
    """Degenerate distribution: every job costs exactly ``mean_ms``.

    The sharpest tool for engine tests -- with deterministic works, flow
    times are exactly predictable.
    """

    def __init__(self, mean_ms: float = 10.0) -> None:
        super().__init__(mean_ms)

    @property
    def name(self) -> str:
        return "constant"

    def _sample_canonical(self, rng: np.random.Generator, size: int) -> np.ndarray:
        del rng
        return np.ones(size)


class ExponentialDistribution(WorkDistribution):
    """Exponential work -- the M/M-style reference point for queueing tests."""

    def __init__(self, mean_ms: float = 10.0) -> None:
        super().__init__(mean_ms)

    @property
    def name(self) -> str:
        return "exponential"

    def _sample_canonical(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(1.0, size=size)


class BoundedParetoDistribution(WorkDistribution):
    """Bounded Pareto work -- the extreme-heavy-tail stress distribution.

    Useful for probing the DAG-model difficulty the paper highlights in
    Section 2: single jobs whose work is a large multiple of the mean
    (up to ``high/low`` times) while remaining integrable.
    """

    def __init__(
        self,
        mean_ms: float = 10.0,
        alpha: float = 1.3,
        low: float = 1.0,
        high: float = 1000.0,
    ) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0 < low < high:
            raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
        self.alpha, self.low, self.high = float(alpha), float(low), float(high)
        super().__init__(mean_ms)

    @property
    def name(self) -> str:
        return "bounded-pareto"

    def _sample_canonical(self, rng: np.random.Generator, size: int) -> np.ndarray:
        # Inverse-CDF sampling of the bounded Pareto on [low, high]:
        # F(x) = (1 - (low/x)^alpha) / (1 - (low/high)^alpha), so
        # x = low / (1 - u * (1 - (low/high)^alpha))^(1/alpha).
        u = rng.random(size)
        ratio_term = 1.0 - (self.low / self.high) ** self.alpha
        return self.low / (1.0 - u * ratio_term) ** (1.0 / self.alpha)


class MixtureDistribution(WorkDistribution):
    """A weighted mixture of other work distributions.

    Models multi-tenant services (e.g. 90% cheap cache hits + 10%
    expensive recomputations) without hand-fitting a new shape.  The
    components are sampled at *their own* configured means, then the
    mixture as a whole is rescaled to this instance's ``mean_ms`` -- so
    the components' means express their *relative* sizes.

    Parameters
    ----------
    components:
        ``(probability, distribution)`` pairs; probabilities must be
        positive and sum to 1 (within 1e-9).
    """

    def __init__(
        self,
        components: "list[tuple[float, WorkDistribution]]",
        mean_ms: float = 10.0,
    ) -> None:
        if not components:
            raise ValueError("a mixture needs at least one component")
        probs = np.array([p for p, _ in components], dtype=np.float64)
        if np.any(probs <= 0):
            raise ValueError("component probabilities must be positive")
        if abs(probs.sum() - 1.0) > 1e-9:
            raise ValueError(
                f"component probabilities must sum to 1, got {probs.sum()}"
            )
        self.components = list(components)
        self._probs = probs
        super().__init__(mean_ms)

    @property
    def name(self) -> str:
        inner = "+".join(d.name for _, d in self.components)
        return f"mixture({inner})"

    def token(self) -> str:
        inner = ",".join(
            f"({p!r},{d.token()})" for p, d in self.components
        )
        return (
            f"{type(self).__name__}(mean_ms={self.mean_ms!r},"
            f"components=[{inner}])"
        )

    def _sample_canonical(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choices = rng.choice(len(self.components), size=size, p=self._probs)
        out = np.empty(size, dtype=np.float64)
        for i, (_, dist) in enumerate(self.components):
            mask = choices == i
            n = int(mask.sum())
            if n:
                # Components sample through their own public API so their
                # configured means set the relative scales.
                out[mask] = dist.sample_ms(rng, n)
        return out
