"""Trace replay: build instances from externally recorded request logs.

The paper's workloads come from production request logs (Bing, finance).
When a user has their *own* log -- one line per request with an arrival
timestamp and a measured work amount -- this module turns it into a
:class:`~repro.dag.job.JobSet` with the same parallel-for job shape the
generator uses, so recorded traffic can be replayed through every
scheduler.

Two input forms:

* in-memory arrays via :func:`jobset_from_trace`;
* CSV files via :func:`load_trace_csv` (columns
  ``arrival_s, work_ms[, weight]``, header optional).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.dag.builders import parallel_for
from repro.dag.job import Job, JobSet

PathLike = Union[str, Path]


def jobset_from_trace(
    arrivals_s: Sequence[float],
    works_ms: Sequence[float],
    weights: Optional[Sequence[float]] = None,
    units_per_ms: float = 4.0,
    target_chunks: int = 32,
    setup_units: int = 1,
    finalize_units: int = 1,
) -> JobSet:
    """Build a JobSet from parallel arrays of arrivals and works.

    Parameters
    ----------
    arrivals_s:
        Request arrival times in **seconds** (any non-decreasing or
        unordered sequence; jobs are sorted on construction).
    works_ms:
        Per-request **total** work in milliseconds of one core.  The
        serial setup/finalize nodes are carved out of this total (a
        trace records what the request cost, overheads included), so a
        replayed job's total work equals the recorded amount whenever
        it is at least ``setup + finalize + 1`` units.
    weights:
        Optional priorities; defaults to 1.0.
    units_per_ms, target_chunks, setup_units, finalize_units:
        Same shape parameters as
        :class:`~repro.workloads.generator.WorkloadSpec`.

    Time base: like the generator, one simulation time unit equals
    ``1 / units_per_ms`` milliseconds, so arrivals are converted with
    ``seconds * 1000 * units_per_ms``.
    """
    arrivals_s = np.asarray(arrivals_s, dtype=np.float64)
    works_ms = np.asarray(works_ms, dtype=np.float64)
    if arrivals_s.shape != works_ms.shape or arrivals_s.ndim != 1:
        raise ValueError(
            f"arrivals {arrivals_s.shape} and works {works_ms.shape} must "
            "be parallel 1-D arrays"
        )
    if arrivals_s.size == 0:
        raise ValueError("a trace must contain at least one request")
    if np.any(arrivals_s < 0):
        raise ValueError("arrival times must be non-negative")
    if np.any(works_ms <= 0):
        raise ValueError("work amounts must be positive")
    if units_per_ms <= 0:
        raise ValueError(f"units_per_ms must be positive, got {units_per_ms}")
    if target_chunks < 1:
        raise ValueError(f"target_chunks must be >= 1, got {target_chunks}")
    if weights is None:
        weights_arr = np.ones_like(works_ms)
    else:
        weights_arr = np.asarray(weights, dtype=np.float64)
        if weights_arr.shape != works_ms.shape:
            raise ValueError("weights must parallel the trace arrays")

    overhead = setup_units + finalize_units
    unit_works = np.maximum(
        overhead + 1, np.rint(works_ms * units_per_ms)
    ).astype(np.int64)
    arrival_units = arrivals_s * 1000.0 * units_per_ms

    jobs: List[Job] = []
    for i in range(arrivals_s.size):
        body = int(unit_works[i]) - overhead
        grain = max(1, body // target_chunks)
        dag = parallel_for(
            total_body_work=body,
            grain=grain,
            setup_work=setup_units,
            finalize_work=finalize_units,
        )
        jobs.append(
            Job(
                job_id=i,
                dag=dag,
                arrival=float(arrival_units[i]),
                weight=float(weights_arr[i]),
            )
        )
    return JobSet(jobs)


def load_trace_csv(
    path: PathLike,
    units_per_ms: float = 4.0,
    target_chunks: int = 32,
) -> JobSet:
    """Load a request log from CSV: ``arrival_s, work_ms[, weight]``.

    A first line whose fields do not parse as numbers is treated as a
    header and skipped.  Blank lines are ignored.
    """
    arrivals: List[float] = []
    works: List[float] = []
    weights: List[float] = []
    saw_weight_column = False
    with open(path, newline="") as fh:
        for row_num, row in enumerate(csv.reader(fh)):
            if not row or all(not cell.strip() for cell in row):
                continue
            try:
                values = [float(cell) for cell in row[:3]]
            except ValueError:
                if row_num == 0:
                    continue  # header
                raise ValueError(
                    f"{path}: line {row_num + 1}: non-numeric field in {row!r}"
                )
            if len(values) < 2:
                raise ValueError(
                    f"{path}: line {row_num + 1}: need at least "
                    f"arrival_s, work_ms -- got {row!r}"
                )
            arrivals.append(values[0])
            works.append(values[1])
            if len(values) >= 3:
                saw_weight_column = True
                weights.append(values[2])
            else:
                weights.append(1.0)
    if not arrivals:
        raise ValueError(f"{path}: trace contains no requests")
    return jobset_from_trace(
        arrivals,
        works,
        weights if saw_weight_column else None,
        units_per_ms=units_per_ms,
        target_chunks=target_chunks,
    )


def save_trace_csv(jobset: JobSet, path: PathLike, units_per_ms: float = 4.0) -> None:
    """Write an instance back out as an ``arrival_s, work_ms, weight`` CSV.

    The DAG structure is *not* preserved (traces record sizes, not
    shapes); round-tripping reconstructs parallel-for jobs of the same
    total work.  For exact round trips use
    :func:`repro.dag.serialization.save_jobset`.
    """
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["arrival_s", "work_ms", "weight"])
        for job in jobset:
            writer.writerow(
                [
                    job.arrival / (1000.0 * units_per_ms),
                    job.work / units_per_ms,
                    job.weight,
                ]
            )
