"""Lazy chunked workload generation for bounded-memory streaming runs.

The paper's setting is online -- the scheduler never sees future
arrivals -- yet ``WorkloadSpec.build_flat`` materializes every job up
front, capping paper-scale experiments at the memory of the full
instance.  :class:`StreamSpec` is the lazy counterpart: it describes the
same workload but yields it as :class:`~repro.dag.flat.FlatInstance`
*segments* of ``chunk_jobs`` jobs each, generated on demand by a
resumable :class:`StreamCursor`.  The streaming engine
(:mod:`repro.sim.stream_engine`) pulls segments as simulated time
reaches them, so peak memory is O(live jobs + one chunk), never O(total
jobs).

Determinism contract
--------------------
Chunked sampling cannot reuse ``WorkloadSpec.build_flat``'s RNG
consumption order: mixture distributions interleave several vectorized
draws per batch, so drawing 2x65536 works is *not* the prefix of drawing
131072.  Instead each chunk ``i`` samples from its own child seed
``derive_seed(seed, i)`` (work and arrival streams spawned per chunk,
mirroring ``WorkloadSpec._sample``), and arrival times are continued
across chunks with :meth:`ArrivalProcess.advance`.  The reproducibility
anchor is therefore :meth:`StreamSpec.materialize`: the concatenation of
all segments for a seed, which *is* bit-identical to streaming the same
seed -- the property every equivalence test and the checkpoint format
build on.  A ``StreamSpec`` with the same ``spec_token()`` and seed
always regenerates identical segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.dag.flat import FlatInstance, concat_flat
from repro.sim.rng import derive_seed, spawn_rngs
from repro.workloads.arrivals import ArrivalProcess, PoissonProcess
from repro.workloads.generator import WorkloadSpec, _parallel_for_flat


@dataclass(frozen=True)
class StreamSpec:
    """A workload delivered lazily as fixed-size CSR segments.

    Attributes
    ----------
    spec:
        The underlying :class:`WorkloadSpec` (distribution, QPS, n_jobs,
        DAG shape).  ``spec.n_jobs`` bounds the stream; the stream ends
        after exactly that many jobs.
    chunk_jobs:
        Jobs per generated segment.  Larger chunks amortize generation
        overhead; smaller chunks lower peak memory.  65536 keeps segment
        generation under ~1% of simulation time while a segment of
        Bing-distribution jobs stays around 20 MB.
    """

    spec: WorkloadSpec
    chunk_jobs: int = 65536

    def __post_init__(self) -> None:
        if self.chunk_jobs < 1:
            raise ValueError(
                f"chunk_jobs must be >= 1, got {self.chunk_jobs}"
            )

    @property
    def n_jobs(self) -> int:
        """Total jobs the stream will emit."""
        return self.spec.n_jobs

    @property
    def n_chunks(self) -> int:
        """Number of segments (last one may be short)."""
        return -(-self.spec.n_jobs // self.chunk_jobs)

    def cursor(self, seed: Optional[int] = None) -> "StreamCursor":
        """Start a resumable generation cursor for ``seed``."""
        return StreamCursor(self, seed)

    def segments(self, seed: Optional[int] = None) -> Iterator[FlatInstance]:
        """Iterate every segment of the stream for ``seed``."""
        cursor = self.cursor(seed)
        while True:
            seg = cursor.next_segment()
            if seg is None:
                return
            yield seg

    def materialize(self, seed: Optional[int] = None) -> FlatInstance:
        """Concatenate all segments into one full instance.

        This is the bit-identity reference for streaming runs: a
        materialized ``engine="flat"`` run on this instance produces the
        same max flow time and final stats as the streaming engine on
        the same (spec, seed).  Note it is *not* array-identical to
        ``spec.build_flat(seed)`` -- chunked sampling necessarily
        consumes the RNG differently (see module docstring).
        """
        return concat_flat(list(self.segments(seed)))

    def spec_token(self) -> str:
        """Canonical identity string (keys checkpoints and caches)."""
        return (
            f"StreamSpec({self.spec.spec_token()},"
            f"chunk_jobs={self.chunk_jobs!r})"
        )

    def describe(self) -> str:
        """One-line human-readable summary for logs."""
        return (
            f"{self.spec.describe()} [stream: {self.n_chunks} x "
            f"{self.chunk_jobs} jobs]"
        )


class StreamCursor:
    """Resumable segment generator over a :class:`StreamSpec`.

    The cursor owns the per-chunk seeding and the arrival-process
    continuation state; :meth:`state_dict` / :meth:`StreamCursor.restore`
    round-trip it through plain JSON so streaming checkpoints can embed
    it and resume generation mid-stream without replaying earlier
    chunks.
    """

    def __init__(self, stream: StreamSpec, seed: Optional[int] = None) -> None:
        if seed is not None and not isinstance(seed, (int, np.integer)):
            raise TypeError(
                f"stream seeds must be plain ints (or None), got "
                f"{type(seed).__name__}: checkpoints serialize the seed, "
                f"so live Generator objects cannot key a stream"
            )
        self.stream = stream
        # None means "irreproducible run"; draw fresh OS entropy once and
        # record it so checkpoints of this run still restore identically.
        self.seed = (
            int(seed)
            if seed is not None
            else int(np.random.SeedSequence().entropy) % (1 << 63)
        )
        process = stream.spec.arrival_process or PoissonProcess(
            stream.spec.rate
        )
        self._process: ArrivalProcess = process
        self.next_chunk = 0
        self.emitted = 0
        self.last_arrival = 0.0
        self._arrival_state = process.begin_state()

    @property
    def exhausted(self) -> bool:
        return self.emitted >= self.stream.n_jobs

    def next_segment(self) -> Optional[FlatInstance]:
        """Generate the next segment, or ``None`` when exhausted.

        Jobs inside a segment are already in arrival order (arrival
        processes emit sorted times), and every arrival in segment
        ``i+1`` is >= every arrival in segment ``i`` -- the engine's
        admission invariant.
        """
        spec = self.stream.spec
        remaining = spec.n_jobs - self.emitted
        if remaining <= 0:
            return None
        count = min(self.stream.chunk_jobs, remaining)
        child = derive_seed(self.seed, self.next_chunk)
        work_rng, arrival_rng = spawn_rngs(child, 2)
        works = spec.distribution.sample_units(
            work_rng, count, units_per_ms=spec.units_per_ms
        )
        times, self._arrival_state = self._process.advance(
            arrival_rng, count, self._arrival_state
        )
        segment = _parallel_for_flat(
            works,
            times,
            target_chunks=spec.target_chunks,
            setup_units=spec.setup_units,
            finalize_units=spec.finalize_units,
        )
        self.next_chunk += 1
        self.emitted += count
        if count:
            self.last_arrival = float(times[-1])
        return segment

    # -- checkpoint round-trip -------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of generation progress."""
        return {
            "seed": self.seed,
            "next_chunk": self.next_chunk,
            "emitted": self.emitted,
            "last_arrival": self.last_arrival,
            "arrival_state": dict(self._arrival_state),
        }

    @classmethod
    def restore(
        cls, stream: StreamSpec, state: Dict[str, object]
    ) -> "StreamCursor":
        """Rebuild a cursor from :meth:`state_dict` output."""
        cursor = cls(stream, int(state["seed"]))
        cursor.next_chunk = int(state["next_chunk"])
        cursor.emitted = int(state["emitted"])
        cursor.last_arrival = float(state["last_arrival"])
        cursor._arrival_state = dict(state["arrival_state"])  # type: ignore[arg-type]
        return cursor
