"""Workload assembly: distribution + arrivals + job shape -> JobSet.

This module reproduces the paper's Section 6 setup: jobs whose total work
is drawn from a distribution, whose bodies are "parallelized using
parallel for loops", arriving by a Poisson process at a queries-per-second
(QPS) rate chosen to hit a target machine utilization.

Units
-----
* Work is sampled in **milliseconds** (the unit of Figure 3) and
  converted to integer simulation *work units* via ``units_per_ms``.
* One simulation time unit is the time a speed-1 processor needs for one
  work unit, so 1 ms of real time equals ``units_per_ms`` time units.
* A QPS of ``q`` therefore corresponds to an arrival rate of
  ``q / (1000 * units_per_ms)`` jobs per time unit
  (:func:`qps_to_rate`).

Utilization accounting (how the paper's QPS labels map to load):
``utilization = qps * mean_work_seconds / m``.  With the default
``mean_ms = 10`` and ``m = 16``, QPS 800 / 1000 / 1200 give 50% / 62.5% /
75% -- the paper's low / medium / high load points.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dag.builders import parallel_for
from repro.dag.flat import FlatInstance
from repro.dag.job import Job, JobSet
from repro.sim.rng import SeedLike, spawn_rngs
from repro.workloads.arrivals import ArrivalProcess, PoissonProcess
from repro.workloads.distributions import WorkDistribution


def _parallel_for_flat(
    works: np.ndarray,
    arrivals: np.ndarray,
    *,
    target_chunks: int,
    setup_units: int,
    finalize_units: int,
) -> FlatInstance:
    """CSR assembly of parallel-for jobs from (works, arrivals) arrays.

    The vectorized core shared by :meth:`WorkloadSpec.build_flat` and the
    streaming segment generator (:mod:`repro.workloads.stream`): one
    batch of numpy operations builds every job's
    ``[setup, chunk_1..chunk_c, finalize]`` DAG with the same arithmetic
    as :func:`repro.dag.builders.parallel_for`.  ``works`` must already
    be int64 job bodies and ``arrivals`` already sorted -- callers own
    the ordering policy.
    """
    works = np.asarray(works, dtype=np.int64)
    arrivals = np.asarray(arrivals, dtype=np.float64)
    n = len(works)

    # Per-job parallel-for decomposition (same arithmetic as
    # parallel_for): ceil-split the body into chunks of <= grain.
    grains = np.maximum(1, works // target_chunks)
    n_full = works // grains
    rem = works - n_full * grains
    n_chunks = n_full + (rem > 0)

    # Node layout per job: [setup, chunk_1..chunk_c, finalize].
    nodes_per_job = n_chunks + 2
    job_node_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(nodes_per_job, out=job_node_offsets[1:])
    n_nodes = int(job_node_offsets[-1])
    setup_pos = job_node_offsets[:-1]
    fin_pos = job_node_offsets[1:] - 1

    # Global ids of every chunk node, jobs concatenated in order.
    total_chunks = int(n_chunks.sum())
    chunk_starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(n_chunks, out=chunk_starts[1:])
    within = np.arange(total_chunks, dtype=np.int64) - np.repeat(
        chunk_starts[:-1], n_chunks
    )
    chunk_global = np.repeat(setup_pos + 1, n_chunks) + within

    # Chunk works: `grain` everywhere, the job's last chunk holds the
    # remainder when the split is uneven.
    chunk_works = np.repeat(grains, n_chunks)
    has_rem = rem > 0
    chunk_works[chunk_starts[1:][has_rem] - 1] = rem[has_rem]

    node_works = np.empty(n_nodes, dtype=np.int64)
    node_works[setup_pos] = setup_units
    node_works[fin_pos] = finalize_units
    node_works[chunk_global] = chunk_works

    # CSR edges: setup -> every chunk, every chunk -> finalize.
    out_degree = np.zeros(n_nodes, dtype=np.int64)
    out_degree[setup_pos] = n_chunks
    out_degree[chunk_global] = 1
    edge_offsets = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(out_degree, out=edge_offsets[1:])
    edge_targets = np.empty(2 * total_chunks, dtype=np.int64)
    fork_slots = np.repeat(edge_offsets[setup_pos], n_chunks) + within
    edge_targets[fork_slots] = chunk_global
    edge_targets[edge_offsets[chunk_global]] = np.repeat(fin_pos, n_chunks)

    return FlatInstance(
        node_works=node_works,
        edge_offsets=edge_offsets,
        edge_targets=edge_targets,
        job_node_offsets=job_node_offsets,
        arrivals=arrivals,
        weights=np.ones(n, dtype=np.float64),
    )


def qps_to_rate(qps: float, units_per_ms: float = 4.0) -> float:
    """Convert queries-per-second to arrivals per simulation time unit."""
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    if units_per_ms <= 0:
        raise ValueError(f"units_per_ms must be positive, got {units_per_ms}")
    return qps / (1000.0 * units_per_ms)


def expected_utilization(qps: float, mean_work_ms: float, m: int) -> float:
    """Offered load of a (qps, mean work, machine size) combination.

    ``qps * mean_work_ms / 1000`` is the offered work in
    processor-seconds per second; dividing by ``m`` normalizes to the
    machine.  Values >= 1 mean an overloaded system whose backlog (and
    max flow time) grows without bound.
    """
    if m < 1:
        raise ValueError(f"need at least one processor, got m={m}")
    return qps * (mean_work_ms / 1000.0) / m


@dataclass
class WorkloadSpec:
    """Declarative description of one experimental workload.

    Attributes
    ----------
    distribution:
        Per-job total-work distribution (milliseconds).
    qps:
        Arrival rate in queries per second -- the x-axis of Figure 2.
    n_jobs:
        Number of jobs to generate (the paper uses 100,000 per point;
        the default harness scales this down -- see DESIGN.md).
    m:
        Machine size the workload targets (used only for utilization
        accounting, not generation).
    units_per_ms:
        Simulation resolution (work units per millisecond).
    target_chunks:
        Parallel-for decomposition: each job's body is split into about
        this many independent chunks, emulating TBB's auto-partitioning.
        Must be >= 1; chunk grain is ``max(1, body_work // target_chunks)``.
    setup_units / finalize_units:
        Serial prologue/epilogue work of each job, in units.
    arrival_process:
        Override the arrival process; defaults to Poisson at
        ``qps_to_rate(qps, units_per_ms)`` as in the paper.
    """

    distribution: WorkDistribution
    qps: float
    n_jobs: int
    m: int = 16
    units_per_ms: float = 4.0
    target_chunks: int = 32
    setup_units: int = 1
    finalize_units: int = 1
    arrival_process: Optional[ArrivalProcess] = None

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.target_chunks < 1:
            raise ValueError(f"target_chunks must be >= 1, got {self.target_chunks}")
        if self.qps <= 0:
            raise ValueError(f"qps must be positive, got {self.qps}")

    @property
    def rate(self) -> float:
        """Arrival rate in jobs per simulation time unit."""
        return qps_to_rate(self.qps, self.units_per_ms)

    @property
    def utilization(self) -> float:
        """Expected offered load of this spec on its ``m`` processors."""
        return expected_utilization(self.qps, self.distribution.mean_ms, self.m)

    def __call__(self, seed: SeedLike = None) -> JobSet:
        """Alias for :meth:`build`, so a spec *is* a jobset factory.

        ``grid_sweep`` and friends accept any ``Callable[[int], JobSet]``;
        passing the spec itself (instead of a lambda around it) keeps the
        factory picklable for process pools and lets the sweep layer
        discover :meth:`cache_key`/:meth:`build_flat` for instance
        caching and zero-copy dispatch.
        """
        return self.build(seed)

    def _sample(self, seed: SeedLike) -> "tuple[np.ndarray, np.ndarray]":
        """Draw (works, arrivals) -- the only randomness in a build.

        The seed fans out into independent streams for work sampling and
        arrival generation, so changing one never perturbs the other
        (paired-comparison hygiene across sweeps).
        """
        work_rng, arrival_rng = spawn_rngs(seed, 2)
        works = self.distribution.sample_units(
            work_rng, self.n_jobs, units_per_ms=self.units_per_ms
        )
        process = self.arrival_process or PoissonProcess(self.rate)
        arrivals = np.asarray(
            process.generate(arrival_rng, self.n_jobs), dtype=np.float64
        )
        return works, arrivals

    def build(self, seed: SeedLike = None) -> JobSet:
        """Materialize the workload into a :class:`JobSet`.

        Identical bodies share one :class:`JobDag` (``parallel_for`` is
        memoized): integer works drawn from a distribution repeat
        constantly, so large instances construct only the distinct
        shapes.
        """
        works, arrivals = self._sample(seed)
        jobs = []
        for i in range(self.n_jobs):
            body = int(works[i])
            grain = max(1, body // self.target_chunks)
            dag = parallel_for(
                total_body_work=body,
                grain=grain,
                setup_work=self.setup_units,
                finalize_work=self.finalize_units,
            )
            jobs.append(
                Job(job_id=i, dag=dag, arrival=float(arrivals[i]), weight=1.0)
            )
        return JobSet(jobs)

    def build_flat(self, seed: SeedLike = None) -> FlatInstance:
        """Materialize the workload directly as a :class:`FlatInstance`.

        Constructs the CSR arrays of every parallel-for job in one batch
        of numpy operations -- no per-job Python loop, no intermediate
        object graph.  Produces bit-identical arrays to
        ``flatten_jobset(self.build(seed))`` (asserted by
        ``tests/workloads/test_generator.py``); ``to_jobset`` recovers
        the object view when an engine needs it.
        """
        works, arrivals = self._sample(seed)
        # JobSet orders jobs by (arrival, generation index); mirror it so
        # the flat layout matches the object path job for job.
        order = np.argsort(arrivals, kind="stable")
        return _parallel_for_flat(
            works[order],
            arrivals[order],
            target_chunks=self.target_chunks,
            setup_units=self.setup_units,
            finalize_units=self.finalize_units,
        )

    def stream(self, chunk_jobs: int = 65536) -> "StreamSpec":
        """Lazy chunked view of this workload for bounded-memory runs.

        Returns a :class:`repro.workloads.stream.StreamSpec` that yields
        the workload as CSR segments of ``chunk_jobs`` jobs each without
        ever materializing the full instance -- the input side of
        ``repro.run(..., stream=...)`` (docs/STREAMING.md).
        """
        from repro.workloads.stream import StreamSpec

        return StreamSpec(spec=self, chunk_jobs=chunk_jobs)

    # -- cache identity ---------------------------------------------------

    def spec_token(self) -> str:
        """Canonical string capturing everything generation depends on."""
        process = self.arrival_process or PoissonProcess(self.rate)
        return (
            f"WorkloadSpec(distribution={self.distribution.token()},"
            f"qps={self.qps!r},n_jobs={self.n_jobs!r},"
            f"units_per_ms={self.units_per_ms!r},"
            f"target_chunks={self.target_chunks!r},"
            f"setup_units={self.setup_units!r},"
            f"finalize_units={self.finalize_units!r},"
            f"arrivals={process.token()})"
        )

    def cache_key(self, seed: int) -> str:
        """Content key for the instance cache: spec hash + derived seed.

        Two specs produce the same key iff their tokens and seeds agree,
        in which case their built instances are identical -- the
        invariant :mod:`repro.experiments.cache` relies on.
        """
        digest = hashlib.sha256(
            f"{self.spec_token()}|seed={int(seed)}".encode()
        ).hexdigest()
        return digest

    def describe(self) -> str:
        """One-line human-readable summary for experiment logs."""
        return (
            f"{self.distribution.name} qps={self.qps:g} n={self.n_jobs} "
            f"m={self.m} util~{self.utilization:.0%} "
            f"mean={self.distribution.mean_ms:g}ms"
        )
