"""Weight assignment schemes for the weighted max-flow experiments.

Section 7 of the paper studies ``max_i w_i F_i`` where the weight ``w_i``
"is known to the scheduler when the job arrives and may not be correlated
to the work of the job".  The remarks also note that weighted flow
captures *maximum stretch* by setting weights to the inverse of job size
-- with two natural DAG readings (inverse work, inverse span), both
expressible here.

Every scheme returns a plain ``np.ndarray`` of positive weights aligned
with a job count or a :class:`~repro.dag.job.JobSet`; apply them by
rebuilding the job set via :func:`reweight`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dag.job import Job, JobSet
from repro.sim.rng import SeedLike, make_rng


def constant_weights(n: int, value: float = 1.0) -> np.ndarray:
    """All jobs share one weight -- the unweighted setting."""
    if value <= 0:
        raise ValueError(f"weights must be positive, got {value}")
    return np.full(n, float(value))


def uniform_weights(
    rng: SeedLike, n: int, low: float = 1.0, high: float = 10.0
) -> np.ndarray:
    """I.i.d. uniform weights on ``[low, high]`` -- uncorrelated with work."""
    if not 0 < low <= high:
        raise ValueError(f"need 0 < low <= high, got [{low}, {high}]")
    return make_rng(rng).uniform(low, high, size=n)


def class_weights(
    rng: SeedLike,
    n: int,
    classes: Sequence[float] = (1.0, 4.0, 16.0),
    probabilities: Sequence[float] | None = None,
) -> np.ndarray:
    """Discrete priority classes (e.g. background / normal / interactive).

    The common production pattern: a small number of priority tiers with
    most traffic in the lowest.  Default probabilities weight the classes
    inversely (0.6 / 0.3 / 0.1 for three classes).
    """
    classes = np.asarray(classes, dtype=np.float64)
    if np.any(classes <= 0):
        raise ValueError("all class weights must be positive")
    if probabilities is None:
        raw = 1.0 / np.arange(1, len(classes) + 1)
        probabilities = raw / raw.sum()
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if len(probabilities) != len(classes):
        raise ValueError("probabilities must parallel classes")
    return make_rng(rng).choice(classes, size=n, p=probabilities)


def work_inverse_weights(jobset: JobSet, scale: float | None = None) -> np.ndarray:
    """``w_i = scale / W_i`` -- max weighted flow becomes max work-stretch.

    ``scale`` defaults to the mean work, making the weights O(1).
    """
    works = np.asarray(jobset.works, dtype=np.float64)
    if scale is None:
        scale = float(works.mean())
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return scale / works


def span_inverse_weights(jobset: JobSet, scale: float | None = None) -> np.ndarray:
    """``w_i = scale / P_i`` -- the span reading of maximum stretch."""
    spans = np.asarray(jobset.spans, dtype=np.float64)
    if scale is None:
        scale = float(spans.mean())
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return scale / spans


def work_proportional_weights(jobset: JobSet, scale: float | None = None) -> np.ndarray:
    """``w_i ~ W_i`` -- the correlated control case for ablations."""
    works = np.asarray(jobset.works, dtype=np.float64)
    if scale is None:
        scale = 1.0 / float(works.mean())
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return works * scale


def reweight(jobset: JobSet, weights: np.ndarray) -> JobSet:
    """A copy of ``jobset`` with the given weights (same DAGs and arrivals)."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(jobset),):
        raise ValueError(
            f"got {weights.shape[0] if weights.ndim else 0} weights "
            f"for {len(jobset)} jobs"
        )
    if np.any(weights <= 0):
        raise ValueError("all weights must be positive")
    return JobSet(
        Job(job_id=j.job_id, dag=j.dag, arrival=j.arrival, weight=float(w))
        for j, w in zip(jobset, weights)
    )
