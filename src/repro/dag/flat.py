"""Flat CSR interchange format for whole scheduling instances.

A :class:`FlatInstance` encodes a :class:`~repro.dag.job.JobSet` as six
numpy arrays -- the compressed-sparse-row (CSR) layout used by graph
libraries -- instead of a Python object graph:

* ``node_works``        -- ``int64[N]``, per-node work over *all* jobs;
* ``edge_offsets``      -- ``int64[N + 1]``, CSR row pointers: node ``v``'s
  successor ids live in ``edge_targets[edge_offsets[v]:edge_offsets[v+1]]``;
* ``edge_targets``      -- ``int64[E]``, successor node ids (global);
* ``job_node_offsets``  -- ``int64[n_jobs + 1]``, job ``i`` owns the node
  span ``[job_node_offsets[i], job_node_offsets[i+1])``;
* ``arrivals``          -- ``float64[n_jobs]``, release times;
* ``weights``           -- ``float64[n_jobs]``, priority weights.

Node ids are global: job ``i``'s node ``v`` is global id
``job_node_offsets[i] + v``, and every edge stays inside its job's span.

Why it exists (see ISSUE 2): the object graph is the right API for
schedulers, but it is the wrong wire/storage format.  Flat arrays can be
hashed for content-addressed caching, written to disk as a single
``.npz``, and shipped across process boundaries through
``multiprocessing.shared_memory`` without pickling a single Python
object.  The round-trip is lossless: :func:`to_jobset` rebuilds the
exact DAG structure, arrivals and weights that :func:`flatten_jobset`
consumed (asserted by ``tests/dag/test_flat.py``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

import numpy as np

from repro.dag.graph import JobDag
from repro.dag.job import Job, JobSet

PathLike = Union[str, Path]

#: Array fields of a FlatInstance, in canonical (hash/serialize) order.
_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("node_works", np.int64),
    ("edge_offsets", np.int64),
    ("edge_targets", np.int64),
    ("job_node_offsets", np.int64),
    ("arrivals", np.float64),
    ("weights", np.float64),
)

#: Version stamp carried by on-disk and shared-memory payloads.
FLAT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class FlatInstance:
    """A whole scheduling instance as six flat numpy arrays (see module doc).

    Arrays are read-only views; instances are safe to share between
    threads and to alias onto shared-memory buffers.
    """

    node_works: np.ndarray
    edge_offsets: np.ndarray
    edge_targets: np.ndarray
    job_node_offsets: np.ndarray
    arrivals: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        for name, dtype in _FIELDS:
            arr = np.ascontiguousarray(getattr(self, name), dtype=dtype)
            arr.flags.writeable = False
            object.__setattr__(self, name, arr)
        n_jobs = self.n_jobs
        if len(self.arrivals) != n_jobs or len(self.weights) != n_jobs:
            raise ValueError(
                f"arrivals/weights must have one entry per job "
                f"({n_jobs}), got {len(self.arrivals)}/{len(self.weights)}"
            )
        if len(self.edge_offsets) != self.n_nodes + 1:
            raise ValueError(
                f"edge_offsets must have n_nodes + 1 = {self.n_nodes + 1} "
                f"entries, got {len(self.edge_offsets)}"
            )

    # -- shape accessors ----------------------------------------------------

    @property
    def n_jobs(self) -> int:
        """Number of jobs in the instance."""
        return len(self.job_node_offsets) - 1

    @property
    def n_nodes(self) -> int:
        """Total node count over all jobs."""
        return len(self.node_works)

    @property
    def n_edges(self) -> int:
        """Total precedence-edge count over all jobs."""
        return len(self.edge_targets)

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes (the shared-memory footprint)."""
        return sum(getattr(self, name).nbytes for name, _ in _FIELDS)

    def job_slice(self, i: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Job ``i``'s (works, edge_offsets, edge_targets) in local ids.

        The returned ``edge_offsets``/``edge_targets`` are rebased so the
        job reads as a standalone CSR graph with node ids in
        ``[0, n_nodes_i)``.
        """
        lo, hi = int(self.job_node_offsets[i]), int(self.job_node_offsets[i + 1])
        e_lo, e_hi = int(self.edge_offsets[lo]), int(self.edge_offsets[hi])
        return (
            self.node_works[lo:hi],
            self.edge_offsets[lo : hi + 1] - e_lo,
            self.edge_targets[e_lo:e_hi] - lo,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatInstance):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name, _ in _FIELDS
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlatInstance(n_jobs={self.n_jobs}, n_nodes={self.n_nodes}, "
            f"n_edges={self.n_edges})"
        )


# ----------------------------------------------------------------------
# Object graph -> flat
# ----------------------------------------------------------------------


def flatten_jobset(jobset: JobSet) -> FlatInstance:
    """Encode a :class:`JobSet` into CSR arrays (jobs stay in set order).

    Jobs that share one :class:`JobDag` object (e.g. the adversarial
    instance) are flattened once and their spans replicated, so the cost
    is proportional to the number of *distinct* DAGs plus the output
    size, not to naive per-job re-walks.

    The result is cached on the JobSet: a JobSet is immutable after
    construction (``_jobs`` is a tuple and there is no mutation API), so
    run -> sweep paths that repeatedly flatten the same instance -- the
    measured ``flatten_jobset`` hot spot -- pay the walk once.
    :func:`to_jobset` pre-seeds the same cache on the sets it rebuilds.
    """
    cached = getattr(jobset, "_flat_cache", None)
    if cached is not None:
        return cached
    n_jobs = len(jobset)
    job_nodes = np.empty(n_jobs, dtype=np.int64)
    arrivals = np.empty(n_jobs, dtype=np.float64)
    weights = np.empty(n_jobs, dtype=np.float64)

    # Per distinct DAG (by identity): local works / out-degrees / targets.
    dag_cache: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    per_job: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for i, job in enumerate(jobset):
        key = id(job.dag)
        entry = dag_cache.get(key)
        if entry is None:
            dag = job.dag
            works = np.asarray(dag.works, dtype=np.int64)
            degrees = np.fromiter(
                (len(s) for s in dag.successors), dtype=np.int64,
                count=dag.n_nodes,
            )
            if dag.n_edges:
                targets = np.concatenate(
                    [np.asarray(s, dtype=np.int64) for s in dag.successors
                     if s]
                )
            else:
                targets = np.empty(0, dtype=np.int64)
            entry = (works, degrees, targets)
            dag_cache[key] = entry
        per_job.append(entry)
        job_nodes[i] = len(entry[0])
        arrivals[i] = job.arrival
        weights[i] = job.weight

    job_node_offsets = np.zeros(n_jobs + 1, dtype=np.int64)
    np.cumsum(job_nodes, out=job_node_offsets[1:])
    n_nodes = int(job_node_offsets[-1])

    node_works = np.empty(n_nodes, dtype=np.int64)
    degrees_all = np.empty(n_nodes, dtype=np.int64)
    target_blocks: List[np.ndarray] = []
    for i, (works, degrees, targets) in enumerate(per_job):
        lo = job_node_offsets[i]
        node_works[lo : lo + len(works)] = works
        degrees_all[lo : lo + len(works)] = degrees
        if len(targets):
            target_blocks.append(targets + lo)
    edge_offsets = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(degrees_all, out=edge_offsets[1:])
    edge_targets = (
        np.concatenate(target_blocks)
        if target_blocks
        else np.empty(0, dtype=np.int64)
    )
    flat = FlatInstance(
        node_works=node_works,
        edge_offsets=edge_offsets,
        edge_targets=edge_targets,
        job_node_offsets=job_node_offsets,
        arrivals=arrivals,
        weights=weights,
    )
    jobset._flat_cache = flat
    return flat


# ----------------------------------------------------------------------
# Flat -> object graph
# ----------------------------------------------------------------------


def to_jobset(flat: FlatInstance) -> JobSet:
    """Rebuild the exact :class:`JobSet` a :class:`FlatInstance` encodes.

    Structurally identical jobs (same works and edges) share one rebuilt
    :class:`JobDag` object, mirroring -- and often improving on -- the
    sharing of the original object graph.  DAGs are constructed through
    the trusted CSR path (:meth:`JobDag.from_csr`): the arrays came from
    a validated DAG, so re-validating every span would only duplicate
    work already done at first construction.
    """
    jobs: List[Job] = []
    rebuilt: Dict[bytes, JobDag] = {}
    arrivals = flat.arrivals
    weights = flat.weights
    for i in range(flat.n_jobs):
        works, offsets, targets = flat.job_slice(i)
        key = b"".join(
            (works.tobytes(), offsets.tobytes(), targets.tobytes())
        )
        dag = rebuilt.get(key)
        if dag is None:
            dag = JobDag.from_csr(works, offsets, targets)
            rebuilt[key] = dag
        jobs.append(
            Job(
                job_id=i,
                dag=dag,
                arrival=float(arrivals[i]),
                weight=float(weights[i]),
            )
        )
    jobset = JobSet(jobs)
    if flat.n_jobs <= 1 or bool(np.all(arrivals[1:] >= arrivals[:-1])):
        # The round trip is lossless, so flattening the rebuilt set would
        # reproduce `flat` byte for byte -- pre-seed the flatten cache.
        # (Only when arrivals were already sorted: JobSet re-sorts, so an
        # unsorted input permutes job order and the cache would be wrong.)
        jobset._flat_cache = flat
    return jobset


# ----------------------------------------------------------------------
# Segmented CSR: append / slice
# ----------------------------------------------------------------------


def concat_flat(segments: "List[FlatInstance]") -> FlatInstance:
    """Concatenate instances job-wise into one instance.

    Node ids and CSR offsets are rebased so job ``k`` of segment ``s``
    becomes a global job with identical structure; edges never cross
    jobs, so rebasing targets by each segment's node base is exact.
    This is the materialization step of the streaming workload path
    (:meth:`repro.workloads.stream.StreamSpec.materialize`) and the
    inverse of :func:`slice_flat` over a partition.
    """
    if not segments:
        raise ValueError("concat_flat needs at least one segment")
    if len(segments) == 1:
        return segments[0]
    node_base = 0
    edge_offset_parts = [np.zeros(1, dtype=np.int64)]
    edge_target_parts = []
    job_offset_parts = [np.zeros(1, dtype=np.int64)]
    edge_base = 0
    job_node_base = 0
    for seg in segments:
        edge_offset_parts.append(seg.edge_offsets[1:] + edge_base)
        edge_target_parts.append(seg.edge_targets + node_base)
        job_offset_parts.append(seg.job_node_offsets[1:] + job_node_base)
        node_base += seg.n_nodes
        edge_base += seg.n_edges
        job_node_base += seg.n_nodes
    return FlatInstance(
        node_works=np.concatenate([s.node_works for s in segments]),
        edge_offsets=np.concatenate(edge_offset_parts),
        edge_targets=np.concatenate(edge_target_parts),
        job_node_offsets=np.concatenate(job_offset_parts),
        arrivals=np.concatenate([s.arrivals for s in segments]),
        weights=np.concatenate([s.weights for s in segments]),
    )


def slice_flat(flat: FlatInstance, start: int, stop: int) -> FlatInstance:
    """Extract jobs ``[start, stop)`` as a standalone rebased instance.

    The compaction primitive of the streaming engine's retirement path:
    dropping a retired prefix is ``slice_flat(flat, frontier, n_jobs)``.
    ``concat_flat(slice_flat(f, 0, k), slice_flat(f, k, n))`` reproduces
    ``f`` byte for byte.
    """
    if not 0 <= start <= stop <= flat.n_jobs:
        raise ValueError(
            f"job slice [{start}, {stop}) out of range for "
            f"{flat.n_jobs} jobs"
        )
    lo = int(flat.job_node_offsets[start])
    hi = int(flat.job_node_offsets[stop])
    e_lo = int(flat.edge_offsets[lo])
    e_hi = int(flat.edge_offsets[hi])
    return FlatInstance(
        node_works=flat.node_works[lo:hi],
        edge_offsets=flat.edge_offsets[lo : hi + 1] - e_lo,
        edge_targets=flat.edge_targets[e_lo:e_hi] - lo,
        job_node_offsets=flat.job_node_offsets[start : stop + 1] - lo,
        arrivals=flat.arrivals[start:stop],
        weights=flat.weights[start:stop],
    )


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------


def content_hash(flat: FlatInstance) -> str:
    """A stable sha256 hex digest of the instance's full content.

    The digest covers every array's dtype-tagged bytes plus the format
    version, so two instances hash equal iff :func:`flatten_jobset`
    produced byte-identical arrays -- the key used by the
    content-addressed sweep cache (:mod:`repro.experiments.cache`).
    """
    h = hashlib.sha256()
    h.update(f"repro-flat/{FLAT_FORMAT_VERSION}".encode())
    for name, _ in _FIELDS:
        arr = getattr(flat, name)
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(np.int64(len(arr)).tobytes())
        h.update(arr.tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Disk serialization
# ----------------------------------------------------------------------


def save_flat(flat: FlatInstance, path: PathLike) -> None:
    """Write an instance as an uncompressed ``.npz`` archive."""
    with open(path, "wb") as fh:
        np.savez(fh, **{name: getattr(flat, name) for name, _ in _FIELDS})


def load_flat(path: PathLike) -> FlatInstance:
    """Read an instance written by :func:`save_flat`."""
    with np.load(path, allow_pickle=False) as archive:
        return FlatInstance(**{name: archive[name] for name, _ in _FIELDS})


# ----------------------------------------------------------------------
# Buffer packing (the shared-memory wire format)
# ----------------------------------------------------------------------


def pack_into(flat: FlatInstance, buf) -> Dict[str, Any]:
    """Copy the arrays into ``buf`` back to back; returns the layout meta.

    ``buf`` is any writable buffer of at least :attr:`FlatInstance.nbytes`
    bytes (typically a ``multiprocessing.shared_memory`` block).  The
    returned meta dict is tiny, JSON/pickle-friendly, and everything
    :func:`unpack_from` needs to rebuild zero-copy views.
    """
    layout = []
    offset = 0
    for name, _ in _FIELDS:
        arr = getattr(flat, name)
        end = offset + arr.nbytes
        view = np.frombuffer(buf, dtype=arr.dtype, count=len(arr), offset=offset)
        view[:] = arr
        layout.append((name, str(arr.dtype), int(len(arr)), int(offset)))
        offset = end
    return {
        "format_version": FLAT_FORMAT_VERSION,
        "nbytes": offset,
        "layout": layout,
    }


def unpack_from(buf, meta: Dict[str, Any]) -> FlatInstance:
    """Rebuild a :class:`FlatInstance` of zero-copy views over ``buf``.

    No array data is copied: the returned instance aliases ``buf``, so
    the buffer must outlive the instance (the dispatch layer in
    :mod:`repro.experiments.parallel` guarantees this by holding the
    shared-memory block open for the worker's lifetime).
    """
    version = meta.get("format_version", FLAT_FORMAT_VERSION)
    if version > FLAT_FORMAT_VERSION:
        raise ValueError(
            f"flat payload has format version {version}; this library "
            f"reads up to {FLAT_FORMAT_VERSION}"
        )
    arrays = {}
    for name, dtype, count, offset in meta["layout"]:
        arrays[name] = np.frombuffer(
            buf, dtype=np.dtype(dtype), count=count, offset=offset
        )
    return FlatInstance(**arrays)


def meta_to_json(meta: Dict[str, Any]) -> str:
    """Serialize a :func:`pack_into` meta dict to compact JSON."""
    return json.dumps(meta, separators=(",", ":"))


def meta_from_json(text: str) -> Dict[str, Any]:
    """Inverse of :func:`meta_to_json`."""
    return json.loads(text)
