"""DAG job model substrate.

This package implements the *dynamic multithreaded job* model from the
paper (Section 2): each job is a directed acyclic graph whose nodes carry
integer processing times ("work units").  A node may execute only after all
of its predecessors have completed; multiple ready nodes of the same job
may run simultaneously on different processors.

The two defining scalar parameters of a job DAG are

* **work** ``W`` -- the sum of all node processing times (execution time on
  one processor), and
* **span** (critical-path length) ``P`` -- the length of the longest
  weighted path through the DAG (execution time on infinitely many
  processors).

Public surface
--------------

:class:`~repro.dag.graph.JobDag`
    Immutable, validated DAG container.
:class:`~repro.dag.graph.DagBuilder`
    Mutable builder used to construct :class:`JobDag` instances.
:class:`~repro.dag.job.Job`
    A DAG paired with an arrival time, a weight and an identifier.
:mod:`~repro.dag.builders`
    Shape constructors: chains, fork-join, parallel-for, trees, random
    layered DAGs, series/parallel composition, and the adversarial
    single-fork job from Section 5 of the paper.
:mod:`~repro.dag.analysis`
    Work/span/parallelism analysis helpers.
"""

from repro.dag.graph import DagBuilder, DagValidationError, JobDag, merge_dags
from repro.dag.job import Job, JobSet, jobs_from_dags
from repro.dag.builders import (
    adversarial_fork,
    balanced_tree,
    chain,
    diamond,
    fork_join,
    map_reduce,
    parallel_chains,
    parallel_for,
    random_layered_dag,
    series_compose,
    parallel_compose,
    single_node,
    staged_pipeline,
    wide_then_narrow,
)
from repro.dag.analysis import (
    average_parallelism,
    critical_path_nodes,
    max_parallelism,
    node_depths,
    parallelism_profile,
    span,
    total_work,
    validate_dag,
)
from repro.dag.flat import (
    FlatInstance,
    content_hash,
    flatten_jobset,
    load_flat,
    save_flat,
    to_jobset,
)
from repro.dag.programs import Program, record_program
from repro.dag.serialization import (
    dag_from_dict,
    dag_to_dict,
    dag_to_dot,
    job_from_dict,
    job_to_dict,
    jobset_from_dict,
    jobset_to_dict,
    load_jobset,
    save_jobset,
)

__all__ = [
    "DagBuilder",
    "DagValidationError",
    "JobDag",
    "merge_dags",
    "Job",
    "JobSet",
    "jobs_from_dags",
    "critical_path_nodes",
    "max_parallelism",
    "adversarial_fork",
    "balanced_tree",
    "chain",
    "diamond",
    "fork_join",
    "map_reduce",
    "parallel_chains",
    "parallel_for",
    "random_layered_dag",
    "series_compose",
    "parallel_compose",
    "single_node",
    "staged_pipeline",
    "wide_then_narrow",
    "average_parallelism",
    "node_depths",
    "parallelism_profile",
    "span",
    "total_work",
    "validate_dag",
    "dag_to_dict",
    "dag_from_dict",
    "dag_to_dot",
    "job_to_dict",
    "job_from_dict",
    "jobset_to_dict",
    "jobset_from_dict",
    "save_jobset",
    "load_jobset",
    "Program",
    "record_program",
    "FlatInstance",
    "content_hash",
    "flatten_jobset",
    "to_jobset",
    "save_flat",
    "load_flat",
]
