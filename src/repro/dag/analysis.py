"""Work/span/parallelism analysis of job DAGs.

These helpers compute the structural quantities the paper's theory is
stated in terms of -- work ``W``, span (critical-path length) ``P``,
average parallelism ``W/P`` -- plus diagnostic profiles used by tests and
the experiment reports.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dag.graph import JobDag


def total_work(dag: JobDag) -> int:
    """Work ``W``: sum of node processing times (time on one processor)."""
    return dag.total_work


def span(dag: JobDag) -> int:
    """Span ``P``: longest weighted path (time on infinitely many processors)."""
    return dag.span


def average_parallelism(dag: JobDag) -> float:
    """``W / P`` -- the maximum speedup any scheduler can extract."""
    return dag.parallelism


def node_depths(dag: JobDag) -> List[int]:
    """Earliest possible start time of each node under infinite processors.

    ``depth[v]`` is the length of the longest path ending just before
    ``v``; node ``v`` cannot begin before ``depth[v]`` in any speed-1
    schedule.
    """
    depth = [0] * dag.n_nodes
    for v in dag.topological_order():
        finish = depth[v] + dag.works[v]
        for u in dag.successors[v]:
            if finish > depth[u]:
                depth[u] = finish
    return depth


def parallelism_profile(dag: JobDag) -> Dict[int, int]:
    """Work available per unit-depth under a greedy infinite-processor run.

    Returns a mapping ``t -> units`` giving, for each unit time step ``t``
    of the infinite-processor (earliest-start) schedule, how many work
    units execute in parallel.  The profile integrates to ``W`` and its
    domain spans exactly ``P`` steps, which the tests exploit as a
    consistency check; the experiment reports use it to describe how
    "bursty" a job's parallelism is.
    """
    depths = node_depths(dag)
    profile: Dict[int, int] = {}
    for v in range(dag.n_nodes):
        start = depths[v]
        for t in range(start, start + dag.works[v]):
            profile[t] = profile.get(t, 0) + 1
    return profile


def max_parallelism(dag: JobDag) -> int:
    """Peak number of simultaneously executing work units."""
    profile = parallelism_profile(dag)
    return max(profile.values())


def validate_dag(dag: JobDag) -> None:
    """Re-verify the core DAG invariants; raises ``AssertionError`` on failure.

    :class:`JobDag` already validates at construction; this function exists
    for test suites and for auditing DAGs that crossed a serialization
    boundary.  Checks: positive works, in-range edges, acyclicity (via a
    complete topological order), span within ``[max node work, W]``.
    """
    n = dag.n_nodes
    assert n >= 1, "DAG must have at least one node"
    assert all(w > 0 for w in dag.works), "all node works must be positive"
    for v in range(n):
        for u in dag.successors[v]:
            assert 0 <= u < n and u != v, f"invalid edge {v} -> {u}"
    order = dag.topological_order()
    assert len(order) == n and sorted(order) == list(range(n)), (
        "topological order must be a permutation of the nodes"
    )
    position = {v: i for i, v in enumerate(order)}
    for v in range(n):
        for u in dag.successors[v]:
            assert position[v] < position[u], f"edge {v} -> {u} violates topo order"
    assert max(dag.works) <= dag.span <= dag.total_work, (
        "span must lie between the largest node work and the total work"
    )


def critical_path_nodes(dag: JobDag) -> List[int]:
    """One longest path through the DAG, as a list of node ids.

    When several critical paths exist, the lexicographically-first by
    topological position is returned (deterministic across runs).
    """
    depths = node_depths(dag)
    # Walk backwards from a sink that realizes the span.
    finish = {v: depths[v] + dag.works[v] for v in range(dag.n_nodes)}
    predecessors: Dict[int, List[int]] = {v: [] for v in range(dag.n_nodes)}
    for v in range(dag.n_nodes):
        for u in dag.successors[v]:
            predecessors[u].append(v)

    end = min(
        (v for v in range(dag.n_nodes) if finish[v] == dag.span),
        key=lambda v: dag.topological_order().index(v),
    )
    path = [end]
    cur = end
    while depths[cur] > 0:
        # The critical predecessor is one whose finish equals our start.
        cur = min(
            (p for p in predecessors[cur] if finish[p] == depths[path[-1]]),
            key=lambda v: dag.topological_order().index(v),
        )
        path.append(cur)
    path.reverse()
    return path
