"""Shape constructors for common job-DAG topologies.

Every builder returns a validated :class:`~repro.dag.graph.JobDag`.  The
shapes cover the workloads the paper exercises and the standard dynamic
multithreading patterns:

* :func:`parallel_for` -- the paper's experimental jobs ("each job ...
  is parallelized using parallel for loops", Section 6);
* :func:`adversarial_fork` -- the single-fork job used in the Section 5
  lower-bound construction (one root node that enables ``m/10``
  independent unit tasks);
* :func:`fork_join`, :func:`balanced_tree`, :func:`map_reduce`,
  :func:`chain`, :func:`diamond`, :func:`parallel_chains` -- classic
  fork-join program skeletons;
* :func:`random_layered_dag` -- randomized layered DAGs for property
  tests and stress workloads;
* :func:`series_compose` / :func:`parallel_compose` -- series-parallel
  composition of existing DAGs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence

import numpy as np

from repro.dag.graph import DagBuilder, DagValidationError, JobDag, merge_dags


def single_node(work: int) -> JobDag:
    """A purely sequential job consisting of one node.

    With single-node DAGs the model degenerates to classic sequential-job
    scheduling, which the tests use to cross-check against closed-form
    single-machine results.
    """
    b = DagBuilder()
    b.add_node(work)
    return b.build()


def chain(works: Sequence[int]) -> JobDag:
    """A sequential chain: node ``i`` precedes node ``i + 1``.

    ``span == total_work`` -- a chain admits no parallelism.
    """
    if len(works) == 0:
        raise DagValidationError("chain requires at least one node")
    b = DagBuilder()
    ids = b.add_nodes(works)
    for prev, nxt in zip(ids, ids[1:]):
        b.add_edge(prev, nxt)
    return b.build()


def fork_join(
    fork_work: int,
    child_works: Sequence[int],
    join_work: int,
) -> JobDag:
    """A single fork-join diamond: fork node, independent children, join node.

    Models one ``spawn``/``sync`` block: the fork node spawns every child;
    the join node waits for all of them.
    """
    if len(child_works) == 0:
        raise DagValidationError("fork_join requires at least one child")
    b = DagBuilder()
    fork = b.add_node(fork_work)
    children = b.add_nodes(child_works)
    join = b.add_node(join_work)
    for c in children:
        b.add_edge(fork, c)
        b.add_edge(c, join)
    return b.build()


def diamond(work: int = 1) -> JobDag:
    """The four-node diamond with uniform node work (smallest true DAG).

    Handy as a minimal non-chain, non-fork test fixture.
    """
    return fork_join(work, [work, work], work)


def parallel_for(
    total_body_work: int,
    grain: int,
    setup_work: int = 1,
    finalize_work: int = 1,
) -> JobDag:
    """A parallel-for-loop job: setup -> ceil(W/g) chunks of <= g work -> finalize.

    This is the job shape of the paper's Section 6 experiments.  The loop
    body of ``total_body_work`` units is divided into chunks of at most
    ``grain`` units; all chunks are mutually independent.

    Parameters
    ----------
    total_body_work:
        Work units in the loop body (excluding setup/finalize).
    grain:
        Maximum chunk size; the last chunk holds the remainder.
    setup_work, finalize_work:
        Work of the serial prologue and epilogue nodes.
    """
    if total_body_work <= 0:
        raise DagValidationError("parallel_for requires positive body work")
    if grain <= 0:
        raise DagValidationError("parallel_for grain must be positive")
    return _parallel_for_cached(
        int(total_body_work), int(grain), int(setup_work), int(finalize_work)
    )


@lru_cache(maxsize=4096)
def _parallel_for_cached(
    total_body_work: int, grain: int, setup_work: int, finalize_work: int
) -> JobDag:
    """Memoized parallel-for construction.

    Workload generators draw integer body works from a distribution, so
    large instances repeat (body, grain) pairs constantly; since
    :class:`JobDag` is immutable and explicitly safe to share across
    jobs and runs, identical parallel-for jobs can share one edge
    structure instead of re-running the Python construction loop.
    """
    n_full, rem = divmod(total_body_work, grain)
    chunk_works = [grain] * n_full + ([rem] if rem else [])
    return fork_join(setup_work, chunk_works, finalize_work)


def parallel_chains(
    chain_lengths: Sequence[int],
    node_work: int = 1,
    fork_work: int = 1,
    join_work: int = 1,
) -> JobDag:
    """Fork into several sequential chains of differing lengths, then join.

    Produces jobs whose ready-node count varies over time (chains drain at
    different rates), which exercises schedulers beyond flat parallel-for.
    """
    if len(chain_lengths) == 0:
        raise DagValidationError("parallel_chains requires at least one chain")
    b = DagBuilder()
    fork = b.add_node(fork_work)
    join_preds: List[int] = []
    for length in chain_lengths:
        if length <= 0:
            raise DagValidationError("chain lengths must be positive")
        prev = fork
        for _ in range(length):
            node = b.add_node(node_work)
            b.add_edge(prev, node)
            prev = node
        join_preds.append(prev)
    join = b.add_node(join_work)
    for p in join_preds:
        b.add_edge(p, join)
    return b.build()


def balanced_tree(
    depth: int,
    branching: int,
    node_work: int = 1,
    with_reduction: bool = True,
) -> JobDag:
    """A spawn tree of the given depth and branching factor.

    Models recursive divide-and-conquer: a root spawns ``branching``
    children, each of which spawns ``branching`` grandchildren, down to
    ``depth`` levels.  With ``with_reduction`` a mirrored combine tree is
    appended, giving the DAG of a full recursive computation; without it
    the leaves terminate the job.
    """
    if depth < 0:
        raise DagValidationError("tree depth must be non-negative")
    if branching <= 0:
        raise DagValidationError("branching factor must be positive")
    b = DagBuilder()
    # Divide phase: levels[d] holds the node ids at depth d.
    levels: List[List[int]] = [[b.add_node(node_work)]]
    for _ in range(depth):
        nxt: List[int] = []
        for parent in levels[-1]:
            for _ in range(branching):
                child = b.add_node(node_work)
                b.add_edge(parent, child)
                nxt.append(child)
        levels.append(nxt)
    if with_reduction and depth > 0:
        # Combine phase mirrors the divide phase: one combiner per divide
        # node, fed by the combiners (or leaves) of its children.
        prev_combiners = levels[-1]
        for d in range(depth - 1, -1, -1):
            combiners: List[int] = []
            for i, _parent in enumerate(levels[d]):
                comb = b.add_node(node_work)
                for child in prev_combiners[i * branching : (i + 1) * branching]:
                    b.add_edge(child, comb)
                combiners.append(comb)
            prev_combiners = combiners
    return b.build()


def map_reduce(
    map_works: Sequence[int],
    reduce_fanin: int,
    reduce_work: int = 1,
    source_work: int = 1,
) -> JobDag:
    """A map stage followed by a tree reduction.

    ``len(map_works)`` independent map tasks hang off a source node; the
    reduction combines them ``reduce_fanin`` at a time in a balanced tree
    until a single sink remains.
    """
    if len(map_works) == 0:
        raise DagValidationError("map_reduce requires at least one map task")
    if reduce_fanin < 2:
        raise DagValidationError("reduce fan-in must be at least 2")
    b = DagBuilder()
    source = b.add_node(source_work)
    frontier = []
    for w in map_works:
        node = b.add_node(w)
        b.add_edge(source, node)
        frontier.append(node)
    while len(frontier) > 1:
        nxt: List[int] = []
        for i in range(0, len(frontier), reduce_fanin):
            group = frontier[i : i + reduce_fanin]
            if len(group) == 1:
                nxt.extend(group)
                continue
            red = b.add_node(reduce_work)
            for g in group:
                b.add_edge(g, red)
            nxt.append(red)
        frontier = nxt
    return b.build()


def adversarial_fork(
    m: int,
    child_work: int = 1,
    root_work: int = 1,
    fanout: Optional[int] = None,
) -> JobDag:
    """The Section 5 lower-bound job: a root enabling ``m // 10`` unit tasks.

    Quoting the paper: "A job consists of one task which is the predecessor
    of ``m/10`` independent tasks" with total work ``m/10 + 1``.  When work
    stealing fails to steal, the job executes sequentially in ``m/10 + 1``
    time steps instead of the 2 steps an ideal scheduler needs, which is
    the engine of the :math:`\\Omega(\\log n)` lower bound.

    Parameters
    ----------
    m:
        The machine size used by the construction; the fan-out defaults
        to the paper's ``max(1, m // 10)``.
    fanout:
        Override the fan-out (must not exceed ``m`` or OPT's 2-step
        schedule stops existing); the empirical lower-bound experiment
        uses ``m // 2`` to make the asymptotic constant visible at
        small ``m``.
    """
    if m < 1:
        raise DagValidationError("adversarial_fork requires m >= 1")
    if fanout is None:
        fanout = max(1, m // 10)
    if not 1 <= fanout <= m:
        raise DagValidationError(f"fanout must lie in [1, m={m}], got {fanout}")
    b = DagBuilder()
    root = b.add_node(root_work)
    for _ in range(fanout):
        child = b.add_node(child_work)
        b.add_edge(root, child)
    return b.build()


def random_layered_dag(
    rng: np.random.Generator,
    n_nodes: int,
    n_layers: int,
    edge_probability: float = 0.3,
    min_work: int = 1,
    max_work: int = 10,
) -> JobDag:
    """A random layered DAG for property tests and stress workloads.

    Nodes are partitioned into ``n_layers`` layers; each node in layer
    ``i > 0`` receives at least one incoming edge from layer ``i - 1``
    (guaranteeing connectivity to the roots) and additional edges from the
    previous layer with probability ``edge_probability``.  Node works are
    uniform integers in ``[min_work, max_work]``.

    Parameters
    ----------
    rng:
        Explicit numpy random generator; no global RNG state is touched,
        keeping runs reproducible per the repository's determinism rule.
    """
    if n_nodes < 1:
        raise DagValidationError("random_layered_dag requires n_nodes >= 1")
    if not 1 <= n_layers <= n_nodes:
        raise DagValidationError("need 1 <= n_layers <= n_nodes")
    if not 0.0 <= edge_probability <= 1.0:
        raise DagValidationError("edge_probability must lie in [0, 1]")
    if not 1 <= min_work <= max_work:
        raise DagValidationError("need 1 <= min_work <= max_work")

    # Assign each node a layer; force at least one node per layer by
    # seeding layers round-robin, then distributing the rest randomly.
    layer_of = np.empty(n_nodes, dtype=np.int64)
    layer_of[:n_layers] = np.arange(n_layers)
    if n_nodes > n_layers:
        layer_of[n_layers:] = rng.integers(0, n_layers, size=n_nodes - n_layers)
    works = rng.integers(min_work, max_work + 1, size=n_nodes)

    layers: List[List[int]] = [[] for _ in range(n_layers)]
    for v in range(n_nodes):
        layers[layer_of[v]].append(v)

    b = DagBuilder()
    ids = b.add_nodes(int(w) for w in works)
    for li in range(1, n_layers):
        prev, cur = layers[li - 1], layers[li]
        for v in cur:
            # Bernoulli edges from every node of the previous layer ...
            mask = rng.random(len(prev)) < edge_probability
            parents = [prev[i] for i in np.flatnonzero(mask)]
            # ... plus one guaranteed parent so no mid-layer node floats free.
            if not parents:
                parents = [prev[int(rng.integers(0, len(prev)))]]
            for p in parents:
                b.add_edge(ids[p], ids[v])
    return b.build()


def series_compose(first: JobDag, second: JobDag) -> JobDag:
    """Run ``first`` to completion, then ``second`` (series composition).

    Every sink of ``first`` gains an edge to every root of ``second``.
    Work adds; span adds.
    """
    offset = first.n_nodes
    sinks = [v for v in range(first.n_nodes) if not first.successors[v]]
    bridging = [(s, r + offset) for s in sinks for r in second.roots]
    return merge_dags([first, second], bridging)


def parallel_compose(
    left: JobDag,
    right: JobDag,
    fork_work: Optional[int] = None,
    join_work: Optional[int] = None,
) -> JobDag:
    """Run ``left`` and ``right`` concurrently (parallel composition).

    Without fork/join work the result is the disjoint union (multiple
    roots).  With ``fork_work``/``join_work`` a serial fork node precedes
    both sub-DAGs and a join node succeeds them, matching a
    ``spawn { left } ; spawn { right } ; sync`` block.
    """
    union = merge_dags([left, right])
    if fork_work is None and join_work is None:
        return union

    b = DagBuilder()
    fork = b.add_node(fork_work if fork_work is not None else 1)
    ids = b.add_nodes(union.works)
    for v, succs in enumerate(union.successors):
        for u in succs:
            b.add_edge(ids[v], ids[u])
    for r in union.roots:
        b.add_edge(fork, ids[r])
    join = b.add_node(join_work if join_work is not None else 1)
    for v in range(union.n_nodes):
        if not union.successors[v]:
            b.add_edge(ids[v], join)
    return b.build()


def wide_then_narrow(
    wide_count: int,
    wide_work: int,
    narrow_count: int,
    narrow_work: int,
    source_work: int = 1,
) -> JobDag:
    """A Montage-style stage pair: wide fan-out feeding a narrow stage.

    Scientific workflows commonly alternate a massively parallel stage
    (e.g. per-tile reprojection) with a narrow aggregation stage (e.g.
    background fitting): ``wide_count`` independent tasks all feed each
    of ``narrow_count`` second-stage tasks (a complete bipartite
    dependency).  The shape stresses schedulers differently from
    fork-join: the barrier between stages drains parallelism abruptly.
    """
    if wide_count < 1 or narrow_count < 1:
        raise DagValidationError("both stages need at least one task")
    b = DagBuilder()
    source = b.add_node(source_work)
    wide = []
    for _ in range(wide_count):
        v = b.add_node(wide_work)
        b.add_edge(source, v)
        wide.append(v)
    for _ in range(narrow_count):
        u = b.add_node(narrow_work)
        for v in wide:
            b.add_edge(v, u)
    return b.build()


def staged_pipeline(
    stage_widths: Sequence[int],
    node_work: int = 1,
    source_work: int = 1,
) -> JobDag:
    """A layered workflow: stage ``i+1`` waits for all of stage ``i``.

    ``stage_widths[i]`` independent ``node_work``-unit tasks per stage,
    with full barriers between stages -- the skeleton of epigenomics/
    bioinformatics pipelines and of bulk-synchronous-parallel programs.
    Parallelism over time follows ``stage_widths`` exactly, so the shape
    is ideal for exercising schedulers against *known* parallelism
    profiles (the tests pin span = ``len(stages) + 1`` node rounds).
    """
    if not stage_widths:
        raise DagValidationError("need at least one stage")
    if any(w < 1 for w in stage_widths):
        raise DagValidationError("every stage needs at least one task")
    b = DagBuilder()
    prev = [b.add_node(source_work)]
    for width in stage_widths:
        stage = []
        for _ in range(width):
            v = b.add_node(node_work)
            for p in prev:
                b.add_edge(p, v)
            stage.append(v)
        prev = stage
    return b.build()
