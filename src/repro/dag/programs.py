"""A spawn/sync DSL: write dynamic-multithreaded *programs*, get DAGs.

Section 1 of the paper describes how dynamic multithreading is expressed
"through linguistic constructs such as 'spawn' and 'sync', 'fork' and
'join', or parallel for loops".  This module provides exactly those
constructs as a tiny recording DSL: a Python function receives a
:class:`Program` handle, calls ``work`` / ``spawn`` / ``sync`` /
``parallel_for``, and the recorder emits the corresponding (validated,
series-parallel) :class:`~repro.dag.graph.JobDag`.

Example -- the classic recursive Fibonacci skeleton::

    def fib(p: Program, n: int) -> None:
        if n < 2:
            p.work(1)
            return
        p.spawn(lambda q: fib(q, n - 1))
        p.spawn(lambda q: fib(q, n - 2))
        p.sync()
        p.work(1)          # combine

    dag = record_program(lambda p: fib(p, 6))

Semantics
---------
* ``work(w)`` runs ``w`` units serially at the current point;
* ``spawn(f)`` forks ``f`` to run concurrently with the continuation;
* ``sync()`` waits for every spawn since the enclosing strand began
  (fully-strict / Cilk-style semantics: a function's spawns are joined
  no later than its own end -- ``record_program`` inserts a trailing
  implicit sync);
* ``parallel_for(n, w)`` is ``n`` independent ``w``-unit iterations
  between the current point and an implicit join.

The recorder tracks, per strand, the *current node* (serial work
accumulates into it) and the outstanding spawned sub-DAG sinks; sync
creates a join node fed by all of them.  Zero-work strands are handled
by deferring node creation until work or structure forces one.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dag.graph import DagBuilder, DagValidationError, JobDag


class Program:
    """The recording handle passed to user program functions.

    Users never construct this directly; :func:`record_program` does.
    """

    def __init__(self, builder: DagBuilder, entry: Optional[int]) -> None:
        self._b = builder
        #: node the current strand last executed (None before any work)
        self._current: Optional[int] = entry
        #: sinks of outstanding spawned children awaiting the next sync
        self._pending: List[int] = []

    # -- linguistic constructs -------------------------------------------

    def work(self, units: int) -> None:
        """Execute ``units`` of serial work at the current point."""
        if not isinstance(units, int) or isinstance(units, bool) or units <= 0:
            raise DagValidationError(
                f"work units must be a positive integer, got {units!r}"
            )
        node = self._b.add_node(units)
        if self._current is not None:
            self._b.add_edge(self._current, node)
        self._current = node

    def spawn(self, child: Callable[["Program"], None]) -> None:
        """Fork ``child`` to run concurrently with this strand.

        The child begins after the work done so far on this strand (its
        data is ready then) and is joined at the next :meth:`sync`.
        """
        sub = Program(self._b, self._current)
        child(sub)
        sink = sub._finish()
        # A child that recorded nothing ends where it started (the
        # parent's current node); it contributes no sink -- legal no-op.
        if sink is not None and sink != self._current:
            self._pending.append(sink)

    def sync(self) -> None:
        """Join every child spawned on this strand since the last sync.

        A sync with outstanding children materializes a 1-unit join
        node (the same convention as the fork-join shape builders),
        except in the degenerate case of a single child on an otherwise
        empty strand, where the strand simply continues from the child.
        """
        if not self._pending:
            return  # sync with nothing outstanding is a no-op
        if self._current is None and len(self._pending) == 1:
            # Nothing ran on this strand: continue from the lone child.
            self._current = self._pending.pop()
            return
        join = self._b.add_node(1)
        for sink in self._pending:
            self._b.add_edge(sink, join)
        if self._current is not None:
            self._b.add_edge(self._current, join)
        self._pending.clear()
        self._current = join

    def parallel_for(self, iterations: int, iteration_work: int) -> None:
        """``iterations`` independent ``iteration_work``-unit bodies + join."""
        if iterations < 1:
            raise DagValidationError(
                f"parallel_for needs at least one iteration, got {iterations}"
            )
        for _ in range(iterations):
            self.spawn(lambda q: q.work(iteration_work))
        self.sync()

    # -- internals ---------------------------------------------------------

    def _finish(self) -> Optional[int]:
        """Implicit trailing sync; returns this strand's sink node id."""
        self.sync()
        return self._current


def record_program(
    program: Callable[[Program], None],
    root_work: int = 1,
) -> JobDag:
    """Run ``program`` against a recorder and return its DAG.

    ``root_work`` seeds an explicit entry node so that the resulting DAG
    always has a single root (the job's admission point in the
    work-stealing engine); set it to the work your program does before
    any parallelism, or leave the 1-unit default for pure skeletons.
    """
    b = DagBuilder()
    if not isinstance(root_work, int) or root_work <= 0:
        raise DagValidationError(
            f"root_work must be a positive integer, got {root_work!r}"
        )
    entry = b.add_node(root_work)
    p = Program(b, entry)
    program(p)
    p._finish()
    return b.build()
