"""Jobs and job sets: DAGs annotated with arrival times and weights.

A :class:`Job` couples an immutable :class:`~repro.dag.graph.JobDag` with
the online-arrival metadata of Section 2 of the paper: an arrival (release)
time ``r_i`` and a weight ``w_i`` (1.0 in the unweighted setting).  A
:class:`JobSet` is the unit of input consumed by every scheduler in
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.dag.graph import JobDag


@dataclass(frozen=True)
class Job:
    """One online job: a DAG, an arrival time, a weight and an id.

    Attributes
    ----------
    job_id:
        Dense integer identifier; schedulers index result arrays by it.
    dag:
        The job's computation DAG (structure is hidden from
        non-clairvoyant schedulers until nodes become ready).
    arrival:
        Release time ``r_i`` in time units.  The scheduler first learns of
        the job at this instant.
    weight:
        Priority weight ``w_i`` for the weighted max-flow objective;
        ``1.0`` in the unweighted setting.  Known at arrival, not
        necessarily correlated with the job's work.
    """

    job_id: int
    dag: JobDag
    arrival: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError(f"job {self.job_id} has negative arrival {self.arrival}")
        if self.weight <= 0:
            raise ValueError(f"job {self.job_id} has non-positive weight {self.weight}")

    @property
    def work(self) -> int:
        """Total work ``W_i`` of the job's DAG."""
        return self.dag.total_work

    @property
    def span(self) -> int:
        """Critical-path length ``P_i`` of the job's DAG."""
        return self.dag.span


class JobSet:
    """An ordered collection of jobs forming one scheduling instance.

    Jobs are stored sorted by arrival time (ties broken by ``job_id``),
    the order in which an online scheduler encounters them.  Construction
    re-identifies jobs so that ``jobset[i].job_id == i``, which lets every
    engine use dense arrays indexed by job id.

    An empty JobSet is legal -- generators and filters can legitimately
    produce zero jobs -- and every aggregate view degrades to its vacuous
    value (zero work, zero horizon, zero utilization).
    """

    def __init__(self, jobs: Iterable[Job]) -> None:
        ordered = sorted(jobs, key=lambda j: (j.arrival, j.job_id))
        self._jobs: Tuple[Job, ...] = tuple(
            Job(job_id=i, dag=j.dag, arrival=j.arrival, weight=j.weight)
            for i, j in enumerate(ordered)
        )

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, idx: int) -> Job:
        return self._jobs[idx]

    # -- aggregate views ----------------------------------------------------

    @property
    def jobs(self) -> Tuple[Job, ...]:
        """The jobs in arrival order."""
        return self._jobs

    @property
    def arrivals(self) -> List[float]:
        """Arrival times in arrival order."""
        return [j.arrival for j in self._jobs]

    @property
    def works(self) -> List[int]:
        """Total works ``W_i`` in arrival order."""
        return [j.work for j in self._jobs]

    @property
    def spans(self) -> List[int]:
        """Critical-path lengths ``P_i`` in arrival order."""
        return [j.span for j in self._jobs]

    @property
    def weights(self) -> List[float]:
        """Weights ``w_i`` in arrival order."""
        return [j.weight for j in self._jobs]

    @property
    def total_work(self) -> int:
        """Sum of all job works."""
        return sum(j.work for j in self._jobs)

    @property
    def max_span(self) -> int:
        """The largest critical-path length over all jobs (0 if empty)."""
        return max((j.span for j in self._jobs), default=0)

    @property
    def time_horizon(self) -> float:
        """Last arrival time -- the end of the online input (0.0 if empty)."""
        return self._jobs[-1].arrival if self._jobs else 0.0

    def utilization(self, m: int) -> float:
        """Offered load: total work divided by ``m`` times the arrival span.

        A value near 1.0 means the instance keeps ``m`` speed-1 processors
        saturated over the arrival window.  Values above 1.0 indicate an
        overloaded (eventually unbounded-backlog) instance.  A zero-horizon
        batch (all jobs arrive at once) is ``inf``; an empty instance
        offers no load at all, hence 0.0.
        """
        if not self._jobs:
            return 0.0
        horizon = self.time_horizon
        if horizon <= 0:
            return float("inf")
        return self.total_work / (m * horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobSet(n={len(self)}, total_work={self.total_work}, "
            f"horizon={self.time_horizon:.3f})"
        )


def jobs_from_dags(
    dags: Sequence[JobDag],
    arrivals: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> JobSet:
    """Zip parallel sequences of DAGs, arrivals and weights into a JobSet."""
    if len(dags) != len(arrivals):
        raise ValueError(
            f"{len(dags)} DAGs but {len(arrivals)} arrivals; lengths must match"
        )
    if weights is not None and len(weights) != len(dags):
        raise ValueError(
            f"{len(dags)} DAGs but {len(weights)} weights; lengths must match"
        )
    ws = weights if weights is not None else [1.0] * len(dags)
    return JobSet(
        Job(job_id=i, dag=d, arrival=float(a), weight=float(w))
        for i, (d, a, w) in enumerate(zip(dags, arrivals, ws))
    )
