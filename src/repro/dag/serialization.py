"""Serialization: DAGs, jobs and job sets <-> JSON-friendly dicts.

Enables saving generated instances (so an interesting run can be
re-examined later or shared as a bug report), replaying external traces
through :mod:`repro.workloads.trace`, and exporting DAGs to Graphviz DOT
for visual inspection.

The wire format is deliberately plain:

.. code-block:: json

    {"works": [1, 4, 4, 1],
     "edges": [[0, 1], [0, 2], [1, 3], [2, 3]]}

for a DAG, and ``{"dag": ..., "arrival": 3.25, "weight": 1.0}`` for a
job.  Job sets add a format version for forward compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.dag.graph import DagValidationError, JobDag
from repro.dag.job import Job, JobSet

#: Format version stamped into serialized job sets.
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def dag_to_dict(dag: JobDag) -> Dict[str, Any]:
    """A JSON-ready dict: node works plus an explicit edge list."""
    edges: List[List[int]] = []
    for v, succs in enumerate(dag.successors):
        for u in succs:
            edges.append([v, u])
    return {"works": list(dag.works), "edges": edges}


def dag_from_dict(data: Dict[str, Any]) -> JobDag:
    """Inverse of :func:`dag_to_dict`; validates on construction."""
    try:
        works = list(data["works"])
        edges = data.get("edges", [])
    except (KeyError, TypeError) as exc:
        raise DagValidationError(f"malformed DAG dict: {exc}") from exc
    successors: List[List[int]] = [[] for _ in works]
    for edge in edges:
        if len(edge) != 2:
            raise DagValidationError(f"edge {edge!r} is not a [src, dst] pair")
        src, dst = edge
        if not 0 <= src < len(works):
            raise DagValidationError(f"edge {edge!r} has out-of-range source")
        successors[src].append(int(dst))
    return JobDag(works, successors)


def job_to_dict(job: Job) -> Dict[str, Any]:
    """A JSON-ready dict for one job (id is positional, not stored)."""
    return {
        "dag": dag_to_dict(job.dag),
        "arrival": job.arrival,
        "weight": job.weight,
    }


def job_from_dict(data: Dict[str, Any], job_id: int = 0) -> Job:
    """Inverse of :func:`job_to_dict`."""
    return Job(
        job_id=job_id,
        dag=dag_from_dict(data["dag"]),
        arrival=float(data["arrival"]),
        weight=float(data.get("weight", 1.0)),
    )


def jobset_to_dict(jobset: JobSet) -> Dict[str, Any]:
    """A JSON-ready dict for a whole instance."""
    return {
        "format_version": FORMAT_VERSION,
        "jobs": [job_to_dict(j) for j in jobset],
    }


def jobset_from_dict(data: Dict[str, Any]) -> JobSet:
    """Inverse of :func:`jobset_to_dict`; re-sorts and re-ids jobs."""
    version = data.get("format_version", FORMAT_VERSION)
    if version > FORMAT_VERSION:
        raise ValueError(
            f"instance was written by format version {version}; this "
            f"library reads up to {FORMAT_VERSION}"
        )
    return JobSet(
        job_from_dict(jd, job_id=i) for i, jd in enumerate(data["jobs"])
    )


def save_jobset(jobset: JobSet, path: PathLike) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(jobset_to_dict(jobset)))


def load_jobset(path: PathLike) -> JobSet:
    """Read an instance from a JSON file written by :func:`save_jobset`."""
    return jobset_from_dict(json.loads(Path(path).read_text()))


def dag_to_dot(dag: JobDag, name: str = "job") -> str:
    """Graphviz DOT text for a DAG (node labels show id and work).

    Render with e.g. ``dot -Tpng job.dot -o job.png``; handy when
    debugging builders or explaining an instance in an issue.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for v in range(dag.n_nodes):
        lines.append(f'  n{v} [label="{v}\\nw={dag.works[v]}"];')
    for v, succs in enumerate(dag.successors):
        for u in succs:
            lines.append(f"  n{v} -> n{u};")
    lines.append("}")
    return "\n".join(lines)
