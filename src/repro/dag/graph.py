"""Immutable job-DAG container and its builder.

A :class:`JobDag` stores, for each node, an integer processing time (in
*work units* -- the amount of computation a speed-1 processor finishes in
one unit of time) and the list of successor node ids.  The structure is
validated once at construction time (acyclicity, positive work, in-range
edges) and is immutable afterwards, so schedulers can share a single DAG
instance across repeated simulations without defensive copies.

The representation is deliberately index-based (parallel tuples indexed by
node id) rather than object-based: simulations touch every node several
times per run and flat tuples keep that hot path allocation-free, per the
"be easy on the memory" guidance for numerical Python.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


class DagValidationError(ValueError):
    """Raised when a DAG under construction violates a structural rule.

    The offending condition (cycle, non-positive work, dangling edge,
    duplicate edge) is described in the exception message.
    """


class JobDag:
    """An immutable directed acyclic graph of computation nodes.

    Parameters
    ----------
    works:
        ``works[v]`` is the processing time of node ``v`` in integer work
        units; must be positive.
    successors:
        ``successors[v]`` lists the node ids that become closer to ready
        when ``v`` completes.  Edges must reference valid ids and the
        resulting digraph must be acyclic.

    Notes
    -----
    Instances are hashable by identity and safe to share between threads
    and between repeated simulation runs; all mutable execution state
    lives in the simulation engines, never on the DAG.
    """

    __slots__ = (
        "_works",
        "_successors",
        "_predecessor_counts",
        "_roots",
        "_total_work",
        "_span",
        "_topo_order",
    )

    def __init__(
        self,
        works: Sequence[int],
        successors: Sequence[Sequence[int]],
    ) -> None:
        if len(works) != len(successors):
            raise DagValidationError(
                f"works has {len(works)} entries but successors has "
                f"{len(successors)}; they must be parallel arrays"
            )
        if len(works) == 0:
            raise DagValidationError("a job DAG must contain at least one node")

        n = len(works)
        for v, w in enumerate(works):
            if not isinstance(w, (int,)) or isinstance(w, bool):
                raise DagValidationError(
                    f"node {v} has non-integer work {w!r}; work is measured "
                    "in integer work units"
                )
            if w <= 0:
                raise DagValidationError(f"node {v} has non-positive work {w}")

        pred_counts = [0] * n
        for v, succs in enumerate(successors):
            seen = set()
            for u in succs:
                if not 0 <= u < n:
                    raise DagValidationError(
                        f"edge {v} -> {u} references a node id outside [0, {n})"
                    )
                if u == v:
                    raise DagValidationError(f"self-loop on node {v}")
                if u in seen:
                    raise DagValidationError(f"duplicate edge {v} -> {u}")
                seen.add(u)
                pred_counts[u] += 1

        self._works: Tuple[int, ...] = tuple(int(w) for w in works)
        self._successors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(s) for s in successors
        )
        self._predecessor_counts: Tuple[int, ...] = tuple(pred_counts)
        self._roots: Tuple[int, ...] = tuple(
            v for v in range(n) if pred_counts[v] == 0
        )
        if not self._roots:
            raise DagValidationError("DAG has no root node; it must be cyclic")

        self._topo_order: Tuple[int, ...] = self._compute_topo_order()
        self._total_work: int = sum(self._works)
        self._span: int = self._compute_span()

    @classmethod
    def from_csr(cls, works, edge_offsets, edge_targets) -> "JobDag":
        """Trusted construction from CSR arrays (no structural validation).

        ``works[v]`` is node ``v``'s work; node ``v``'s successors are
        ``edge_targets[edge_offsets[v]:edge_offsets[v+1]]``.  The caller
        guarantees the arrays describe a valid DAG -- this path exists
        for :mod:`repro.dag.flat`, whose arrays were produced by
        flattening an already-validated :class:`JobDag`, so repeating the
        duplicate-edge / range / type checks of ``__init__`` would only
        re-pay the validation cost on every cache hit or shared-memory
        attach.  Derived structure (in-degrees, roots, topological
        order, span) is still computed, and Kahn's algorithm still
        raises :class:`DagValidationError` on a cyclic input.
        """
        self = object.__new__(cls)
        n = len(works)
        if n == 0:
            raise DagValidationError("a job DAG must contain at least one node")
        works_t = tuple(int(w) for w in works)
        offsets = [int(o) for o in edge_offsets]
        targets = [int(t) for t in edge_targets]
        successors = tuple(
            tuple(targets[offsets[v] : offsets[v + 1]]) for v in range(n)
        )
        pred_counts = [0] * n
        for u in targets:
            pred_counts[u] += 1
        self._works = works_t
        self._successors = successors
        self._predecessor_counts = tuple(pred_counts)
        self._roots = tuple(v for v in range(n) if pred_counts[v] == 0)
        if not self._roots:
            raise DagValidationError("DAG has no root node; it must be cyclic")
        self._topo_order = self._compute_topo_order()
        self._total_work = sum(works_t)
        self._span = self._compute_span()
        return self

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the DAG."""
        return len(self._works)

    @property
    def works(self) -> Tuple[int, ...]:
        """Per-node processing times in work units."""
        return self._works

    @property
    def successors(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-node successor id lists."""
        return self._successors

    @property
    def predecessor_counts(self) -> Tuple[int, ...]:
        """Per-node in-degrees (number of direct predecessors)."""
        return self._predecessor_counts

    @property
    def roots(self) -> Tuple[int, ...]:
        """Nodes with no predecessors -- ready the moment the job arrives."""
        return self._roots

    @property
    def n_edges(self) -> int:
        """Total number of precedence edges."""
        return sum(len(s) for s in self._successors)

    def work_of(self, node: int) -> int:
        """Processing time of ``node`` in work units."""
        return self._works[node]

    def successors_of(self, node: int) -> Tuple[int, ...]:
        """Successor ids of ``node``."""
        return self._successors[node]

    # ------------------------------------------------------------------
    # Derived scalar parameters (Section 2 of the paper)
    # ------------------------------------------------------------------

    @property
    def total_work(self) -> int:
        """Work ``W``: execution time of the job on one speed-1 processor."""
        return self._total_work

    @property
    def span(self) -> int:
        """Critical-path length ``P``: the longest weighted path.

        ``P`` lower-bounds the execution time of the job under *any*
        scheduler at speed 1 (the job cannot finish faster than its
        longest chain of sequential dependences).
        """
        return self._span

    @property
    def parallelism(self) -> float:
        """Average parallelism ``W / P`` -- the maximum useful speedup."""
        return self._total_work / self._span

    def topological_order(self) -> Tuple[int, ...]:
        """A topological ordering of node ids (stable across calls)."""
        return self._topo_order

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _compute_topo_order(self) -> Tuple[int, ...]:
        """Kahn's algorithm; raises :class:`DagValidationError` on cycles."""
        n = self.n_nodes
        remaining = list(self._predecessor_counts)
        frontier = [v for v in range(n) if remaining[v] == 0]
        order: List[int] = []
        head = 0
        while head < len(frontier):
            v = frontier[head]
            head += 1
            order.append(v)
            for u in self._successors[v]:
                remaining[u] -= 1
                if remaining[u] == 0:
                    frontier.append(u)
        if len(order) != n:
            raise DagValidationError(
                f"DAG contains a cycle ({n - len(order)} nodes unreachable "
                "from the roots under topological elimination)"
            )
        return tuple(order)

    def _compute_span(self) -> int:
        """Longest weighted path via a single topological sweep."""
        dist = [0] * self.n_nodes
        best = 0
        for v in self._topo_order:
            finish = dist[v] + self._works[v]
            if finish > best:
                best = finish
            for u in self._successors[v]:
                if finish > dist[u]:
                    dist[u] = finish
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobDag(n_nodes={self.n_nodes}, work={self.total_work}, "
            f"span={self.span})"
        )


class DagBuilder:
    """Mutable builder that assembles and validates a :class:`JobDag`.

    Example
    -------
    >>> b = DagBuilder()
    >>> root = b.add_node(2)
    >>> left, right = b.add_node(3), b.add_node(4)
    >>> b.add_edge(root, left); b.add_edge(root, right)
    >>> dag = b.build()
    >>> dag.total_work, dag.span
    (9, 6)
    """

    def __init__(self) -> None:
        self._works: List[int] = []
        self._successors: List[List[int]] = []

    @property
    def n_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._works)

    def add_node(self, work: int) -> int:
        """Add a node with the given integer processing time; returns its id."""
        if not isinstance(work, int) or isinstance(work, bool) or work <= 0:
            raise DagValidationError(
                f"node work must be a positive integer, got {work!r}"
            )
        self._works.append(work)
        self._successors.append([])
        return len(self._works) - 1

    def add_nodes(self, works: Iterable[int]) -> List[int]:
        """Add several nodes at once; returns their ids in order."""
        return [self.add_node(w) for w in works]

    def add_edge(self, src: int, dst: int) -> None:
        """Add a precedence edge ``src -> dst`` (``dst`` waits for ``src``)."""
        n = len(self._works)
        if not (0 <= src < n and 0 <= dst < n):
            raise DagValidationError(
                f"edge {src} -> {dst} references an unknown node "
                f"(only {n} nodes exist)"
            )
        self._successors[src].append(dst)

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Add several edges at once."""
        for src, dst in edges:
            self.add_edge(src, dst)

    def build(self) -> JobDag:
        """Validate and freeze the graph into an immutable :class:`JobDag`."""
        return JobDag(self._works, self._successors)


def merge_dags(
    dags: Sequence[JobDag],
    extra_edges: Optional[Iterable[Tuple[int, int]]] = None,
) -> JobDag:
    """Disjoint-union several DAGs into one, with optional bridging edges.

    Node ids of ``dags[i]`` are offset by the total node count of the
    preceding DAGs; ``extra_edges`` are expressed in the offset id space.
    Used by the series/parallel composition builders.
    """
    works: List[int] = []
    successors: List[List[int]] = []
    for dag in dags:
        offset = len(works)
        works.extend(dag.works)
        successors.extend([u + offset for u in succ] for succ in dag.successors)
    if extra_edges is not None:
        for src, dst in extra_edges:
            successors[src].append(dst)
    return JobDag(works, successors)
