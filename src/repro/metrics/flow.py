"""Flow-time metrics.

The paper's objective landscape (Sections 2 and 7):

* **flow time** ``F_i = c_i - r_i`` -- job latency;
* **maximum flow time** ``max_i F_i`` -- the primary objective;
* **maximum weighted flow time** ``max_i w_i F_i`` -- the Section 7
  objective;
* **maximum stretch** -- flow normalized by job size.  For DAG jobs the
  paper notes two natural normalizers (Section 7 remarks): total work
  (``F_i / (W_i / m)``: how much worse than a dedicated machine) and
  critical path (``F_i / P_i``: how much worse than infinite
  processors).  Both are provided.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.dag.job import JobSet
from repro.sim.result import ScheduleResult


def max_flow(result: ScheduleResult) -> float:
    """``max_i F_i`` -- the paper's primary objective."""
    return result.max_flow


def mean_flow(result: ScheduleResult) -> float:
    """Average flow time."""
    return result.mean_flow


def max_weighted_flow(result: ScheduleResult) -> float:
    """``max_i w_i F_i`` -- the Section 7 objective."""
    return result.max_weighted_flow


def flow_statistics(result: ScheduleResult) -> Dict[str, float]:
    """A fuller flow-time profile than the headline max.

    Returns min/mean/median/p90/p99/max plus the standard deviation; the
    experiment reports print these so readers can see whether a max-flow
    difference reflects the whole distribution or a single outlier.
    """
    flows = result.flows
    return {
        "min": float(flows.min()),
        "mean": float(flows.mean()),
        "median": float(np.median(flows)),
        "p90": float(np.percentile(flows, 90)),
        "p99": float(np.percentile(flows, 99)),
        "max": float(flows.max()),
        "std": float(flows.std()),
    }


def work_stretches(result: ScheduleResult, jobset: JobSet) -> np.ndarray:
    """Per-job stretch normalized by work: ``F_i / (W_i / m)``.

    The denominator is the job's execution time given the whole machine
    and perfect parallelism -- the fully-parallelizable reading of "job
    size" from the Section 7 stretch remarks.
    """
    works = np.asarray(jobset.works, dtype=np.float64)
    return result.flows / (works / result.m)


def span_stretches(result: ScheduleResult, jobset: JobSet) -> np.ndarray:
    """Per-job stretch normalized by span: ``F_i / P_i``.

    The denominator is the job's execution time on infinitely many
    processors -- the critical-path reading of "job size".
    """
    spans = np.asarray(jobset.spans, dtype=np.float64)
    return result.flows / spans


def competitive_ratio(
    result: ScheduleResult,
    opt_result: ScheduleResult,
    weighted: bool = False,
) -> float:
    """Empirical competitive ratio against the OPT *lower bound*.

    Because the denominator lower-bounds the true optimum, the returned
    value **upper-bounds** the scheduler's true empirical competitive
    ratio on this instance -- the conservative direction for reporting.

    Parameters
    ----------
    result:
        The scheduler's outcome.
    opt_result:
        Output of :func:`repro.core.opt.opt_lower_bound` (or any valid
        lower bound) on the same instance.
    weighted:
        Compare ``max w_i F_i`` instead of ``max F_i``.
    """
    if result.n_jobs != opt_result.n_jobs:
        raise ValueError(
            f"results cover {result.n_jobs} vs {opt_result.n_jobs} jobs; "
            "they must be for the same instance"
        )
    num = result.max_weighted_flow if weighted else result.max_flow
    den = opt_result.max_weighted_flow if weighted else opt_result.max_flow
    if den <= 0:
        raise ValueError("OPT lower bound is zero; ratio undefined")
    return num / den
