"""Time-series views of a schedule: backlog, throughput, windowed flow.

The headline max-flow number hides *when* the damage happened.  These
helpers recover the temporal structure from a
:class:`~repro.sim.result.ScheduleResult` alone (arrivals and
completions), with no tracing required:

* :func:`backlog_over_time` -- jobs in the system at sample instants
  (the queueing-theory backlog process);
* :func:`windowed_max_flow` -- the max flow among jobs completing in
  each consecutive window (shows whether one burst or a steady state
  drives the maximum);
* :func:`completion_throughput` -- completions per window (reveals
  throughput collapse, e.g. admit-first serializing at load).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sim.result import ScheduleResult


def backlog_over_time(
    result: ScheduleResult,
    times: Optional[np.ndarray] = None,
    n_samples: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Number of jobs present (arrived, not yet completed) over time.

    Parameters
    ----------
    result:
        Any schedule result.
    times:
        Sample instants; defaults to ``n_samples`` evenly spaced points
        across ``[0, makespan]``.

    Returns
    -------
    (times, backlog):
        Parallel arrays; ``backlog[i]`` counts jobs with
        ``arrival <= times[i] < completion``.
    """
    if times is None:
        times = np.linspace(0.0, result.makespan, n_samples)
    else:
        times = np.asarray(times, dtype=np.float64)
    arrivals = np.sort(result.arrivals)
    completions = np.sort(result.completions)
    arrived = np.searchsorted(arrivals, times, side="right")
    done = np.searchsorted(completions, times, side="right")
    return times, arrived - done


def peak_backlog(result: ScheduleResult) -> int:
    """The exact maximum backlog (evaluated at every arrival instant).

    The backlog process only increases at arrivals, so its maximum is
    attained at some arrival time; sampling there is exact.
    """
    times = result.arrivals
    arrivals = np.sort(result.arrivals)
    completions = np.sort(result.completions)
    arrived = np.searchsorted(arrivals, times, side="right")
    done = np.searchsorted(completions, times, side="right")
    return int((arrived - done).max())


def windowed_max_flow(
    result: ScheduleResult,
    window: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Max flow among jobs *completing* within consecutive time windows.

    Returns (window start times, per-window max flow); windows with no
    completions report 0.  ``window`` is in the result's time units.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    n_windows = int(np.ceil(result.makespan / window)) or 1
    starts = window * np.arange(n_windows)
    maxima = np.zeros(n_windows)
    idx = np.minimum((result.completions / window).astype(np.int64), n_windows - 1)
    np.maximum.at(maxima, idx, result.flows)
    return starts, maxima


def completion_throughput(
    result: ScheduleResult,
    window: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Completions per consecutive window (jobs finished per window)."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    n_windows = int(np.ceil(result.makespan / window)) or 1
    starts = window * np.arange(n_windows)
    counts = np.zeros(n_windows, dtype=np.int64)
    idx = np.minimum((result.completions / window).astype(np.int64), n_windows - 1)
    np.add.at(counts, idx, 1)
    return starts, counts
