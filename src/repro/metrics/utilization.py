"""Processor-time accounting: busy, stealing, idle.

The paper's analyses revolve around *processor idling steps* (time steps
where a processor is not working on a job -- Lemmas 3.2, 4.5, 4.6).
These helpers expose the same accounting from simulation statistics so
benches can report, e.g., the fraction of machine time steal-k-first
burned on steal attempts at each load level.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dag.job import JobSet
from repro.sim.result import ScheduleResult


def busy_fraction(result: ScheduleResult) -> float:
    """Fraction of machine ticks spent executing nodes (work stealing only).

    ``busy_steps / (m * elapsed_ticks)``.  Requires a tick-engine result;
    centralized-engine results do not track elapsed ticks (their natural
    notion of span is the makespan, not a tick count) and raise.
    """
    ticks = result.stats.elapsed_ticks
    if ticks <= 0:
        raise ValueError(
            f"result from {result.scheduler!r} has no tick accounting; "
            "busy_fraction applies to work-stealing runs"
        )
    return result.stats.busy_steps / (result.m * ticks)


def steal_fraction(result: ScheduleResult) -> float:
    """Steal attempts per machine tick (can exceed 1 with cheap steals).

    With ``steals_per_tick > 1`` multiple attempts fit in one tick, so
    this is attempts normalized by machine ticks rather than a fraction
    of time; it is the right x-axis-free congestion measure either way.
    """
    ticks = result.stats.elapsed_ticks
    if ticks <= 0:
        raise ValueError(
            f"result from {result.scheduler!r} has no tick accounting; "
            "steal_fraction applies to work-stealing runs"
        )
    return result.stats.steal_attempts / (result.m * ticks)


def offered_load(jobset: JobSet, m: int) -> float:
    """Total work over machine capacity across the arrival horizon."""
    return jobset.utilization(m)


def utilization_report(
    result: ScheduleResult, jobset: JobSet
) -> Dict[str, Optional[float]]:
    """Flat utilization summary for one run (keys stable for reports).

    For centralized-engine results the tick-based fields are reported as
    ``None`` -- they were not measured, which is not the same as being
    zero; report renderers show them as ``-``.  ``busy_fraction`` keeps
    its historical 0.0 (the tick denominator is genuinely absent), while
    work conservation and offered load remain meaningful everywhere.
    """
    stats = result.stats
    has_ticks = stats.elapsed_ticks > 0
    machine_ticks = result.m * stats.elapsed_ticks if has_ticks else 0
    has_steals = stats.steal_attempts is not None
    return {
        "offered_load": offered_load(jobset, result.m),
        "busy_steps": float(stats.busy_steps),
        "total_work": float(jobset.total_work),
        "busy_fraction": (stats.busy_steps / machine_ticks) if has_ticks else 0.0,
        "steal_attempts": float(stats.steal_attempts) if has_steals else None,
        "failed_steal_rate": (
            (stats.failed_steals or 0) / stats.steal_attempts
            if stats.steal_attempts
            else (0.0 if has_steals else None)
        ),
        "idle_steps": float(stats.idle_steps),
    }
