"""Scheduling-overhead accounting: preemptions, migrations, dispatches.

The paper motivates work stealing by the *implementation cost* of the
idealized FIFO: "an implementation of the ideal FIFO scheduler is likely
to have high overhead since it is centralized and potentially preempts
jobs and re-allocates processors at every time step" (Section 1).  The
simulator charges none of those costs -- so this module *counts* them
from execution traces, letting the ``ext-overheads`` bench put numbers
on the paper's motivation: how many preemptions and cross-worker
migrations FIFO's ideal schedule implies, against the steal count work
stealing actually pays.

Definitions (all derived from :class:`~repro.sim.trace.TraceRecorder`):

* **dispatch** -- one contiguous execution segment (a node being placed
  on a processor);
* **preemption** -- a node suspended before completion (it has more than
  one segment; each extra segment is one preemption);
* **migration** -- a node resuming on a *different* processor than its
  previous segment ran on (a cache-state loss on real hardware);
* **reallocation events** -- instants where the set of (worker, node)
  assignments changes; the centralized scheduler needs a coordination
  round at each.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.trace import TraceRecorder


def dispatch_count(trace: TraceRecorder) -> int:
    """Total execution segments (node placements on processors)."""
    return len(trace.intervals)


def _segments_by_node(
    trace: TraceRecorder,
) -> Dict[Tuple[int, int], List]:
    by_node: Dict[Tuple[int, int], List] = {}
    for iv in trace.intervals:
        by_node.setdefault((iv.job_id, iv.node), []).append(iv)
    for segs in by_node.values():
        segs.sort(key=lambda iv: iv.start)
    return by_node


def preemption_count(trace: TraceRecorder) -> int:
    """Suspensions of in-progress nodes (extra segments per node).

    Zero for any work-stealing run: stolen nodes are *ready*, never
    in-progress, so each node runs as one uninterrupted segment -- the
    structural reason the paper calls work stealing practical.
    """
    return sum(
        len(segs) - 1 for segs in _segments_by_node(trace).values()
    )


def migration_count(trace: TraceRecorder) -> int:
    """Node resumptions on a different processor than their last segment."""
    migrations = 0
    for segs in _segments_by_node(trace).values():
        for a, b in zip(segs, segs[1:]):
            if a.worker != b.worker:
                migrations += 1
    return migrations


def reallocation_event_count(trace: TraceRecorder) -> int:
    """Distinct instants at which some assignment starts or ends.

    The centralized scheduler must run a coordination round at each;
    a distributed runtime pays nothing here (its coordination is the
    steal attempts, counted by the engine's statistics).
    """
    events = set()
    for iv in trace.intervals:
        events.add(round(iv.start, 9))
        events.add(round(iv.end, 9))
    return len(events)


def overhead_report(trace: TraceRecorder) -> Dict[str, int]:
    """All overhead counters as a flat dict (keys stable for reports)."""
    return {
        "dispatches": dispatch_count(trace),
        "preemptions": preemption_count(trace),
        "migrations": migration_count(trace),
        "reallocation_events": reallocation_event_count(trace),
    }
