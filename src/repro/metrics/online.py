"""Online (single-pass, bounded-memory) metric accumulators.

The streaming engine (:mod:`repro.sim.stream_engine`) retires jobs as
they complete and frees their arrays, so nothing can be computed from
"all flows" after the fact.  These accumulators observe each completion
exactly once and keep O(1) state:

* :class:`OnlineMax` -- running maximum with argmax; **exact**, so the
  streaming max flow time is bit-identical to the offline
  ``ScheduleResult.max_flow`` (the paper's objective survives streaming
  unweakened).
* :class:`P2Quantile` -- the Jain & Chlamtac P^2 algorithm
  (CACM 1985): five markers track one quantile with parabolic
  interpolation.  An *estimate*, typically within a few percent of the
  exact empirical quantile for unimodal flow distributions; the
  documented tolerance is asserted by ``tests/metrics/test_online.py``.
* :class:`OnlineFlowStats` -- the bundle the engine threads through the
  hot loop: exact max/count/mean (running sum) plus one P^2 sketch per
  requested quantile.
* :class:`WindowedUtilization` -- busy-fraction time series over fixed
  tick windows, implementing the :class:`~repro.sim.sampling.
  SystemSampler` recording protocol (``maybe_record`` /
  ``record_boundary``).  Between consecutive sampler calls the busy
  count is constant (the engine samples every general tick and brackets
  fast-forwards with boundary snapshots), so step-hold integration is
  exact, not an approximation.

Every accumulator round-trips through ``state_dict()`` /
``load_state()`` with plain JSON-serializable values, which is how
streaming checkpoints persist them (docs/STREAMING.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


class OnlineMax:
    """Exact running maximum with the argmax key that achieved it."""

    __slots__ = ("value", "argmax", "count")

    def __init__(self) -> None:
        self.value: float = float("-inf")
        self.argmax: Optional[int] = None
        self.count: int = 0

    def update(self, value: float, key: Optional[int] = None) -> None:
        self.count += 1
        if value > self.value:
            self.value = value
            self.argmax = key

    def state_dict(self) -> Dict[str, object]:
        return {
            "value": self.value,
            "argmax": self.argmax,
            "count": self.count,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.value = float(state["value"])
        self.argmax = None if state["argmax"] is None else int(state["argmax"])  # type: ignore[arg-type]
        self.count = int(state["count"])


class P2Quantile:
    """P^2 single-quantile sketch (Jain & Chlamtac, CACM 1985).

    Five markers (min, two intermediates, the target quantile, max)
    drift toward their desired positions by parabolic (falling back to
    linear) height adjustment.  O(1) memory and O(1) per observation;
    the first five observations are stored exactly.
    """

    __slots__ = ("q", "count", "_heights", "_pos", "_desired", "_inc")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self.count = 0
        self._heights: List[float] = []
        self._pos: List[float] = []
        self._desired: List[float] = []
        self._inc: Tuple[float, ...] = (
            0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0
        )

    def update(self, x: float) -> None:
        x = float(x)
        self.count += 1
        h = self._heights
        if self.count <= 5:
            # Exact phase: insert sorted.
            lo = 0
            while lo < len(h) and h[lo] <= x:
                lo += 1
            h.insert(lo, x)
            if self.count == 5:
                q = self.q
                self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0
                ]
            return

        # Steady state.  This method runs once per sketch per completed
        # job in streaming runs, so the marker bookkeeping is unrolled
        # and the parabolic/linear formulas are inlined (a helper call
        # per adjustment would double the cost of the common case).
        pos = self._pos
        # Locate the cell containing x (extending extremes as needed).
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        if k == 0:
            pos[1] += 1.0
            pos[2] += 1.0
        elif k == 1:
            pos[2] += 1.0
        if k <= 2:
            pos[3] += 1.0
        pos[4] += 1.0
        desired = self._desired
        inc = self._inc
        desired[1] += inc[1]
        desired[2] += inc[2]
        desired[3] += inc[3]
        desired[4] += 1.0

        # Adjust the three interior markers toward their desired spots
        # (P^2 parabolic prediction, linear fallback when it would
        # leave the bracketing heights).
        for i in (1, 2, 3):
            ni = pos[i]
            d = desired[i] - ni
            if d >= 1.0:
                nr = pos[i + 1]
                if nr - ni > 1.0:
                    nl = pos[i - 1]
                    hi = h[i]
                    hr = h[i + 1]
                    hl = h[i - 1]
                    cand = hi + (
                        (ni - nl + 1.0) * (hr - hi) / (nr - ni)
                        + (nr - ni - 1.0) * (hi - hl) / (ni - nl)
                    ) / (nr - nl)
                    h[i] = (
                        cand
                        if hl < cand < hr
                        else hi + (hr - hi) / (nr - ni)
                    )
                    pos[i] = ni + 1.0
            elif d <= -1.0:
                nl = pos[i - 1]
                if nl - ni < -1.0:
                    nr = pos[i + 1]
                    hi = h[i]
                    hr = h[i + 1]
                    hl = h[i - 1]
                    cand = hi - (
                        (ni - nl - 1.0) * (hr - hi) / (nr - ni)
                        + (nr - ni + 1.0) * (hi - hl) / (ni - nl)
                    ) / (nr - nl)
                    h[i] = (
                        cand
                        if hl < cand < hr
                        else hi - (hl - hi) / (nl - ni)
                    )
                    pos[i] = ni - 1.0

    def value(self) -> float:
        """Current quantile estimate (nan before any observation)."""
        h = self._heights
        if self.count == 0:
            return float("nan")
        if self.count <= 5:
            # Exact linear-interpolated quantile of the stored sample.
            rank = self.q * (len(h) - 1)
            lo = int(rank)
            frac = rank - lo
            if lo + 1 >= len(h):
                return h[-1]
            return h[lo] + frac * (h[lo + 1] - h[lo])
        return h[2]

    def state_dict(self) -> Dict[str, object]:
        return {
            "q": self.q,
            "count": self.count,
            "heights": list(self._heights),
            "pos": list(self._pos),
            "desired": list(self._desired),
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if float(state["q"]) != self.q:  # type: ignore[arg-type]
            raise ValueError(
                f"checkpoint sketch tracks q={state['q']}, "
                f"this sketch tracks q={self.q}"
            )
        self.count = int(state["count"])  # type: ignore[arg-type]
        self._heights = [float(v) for v in state["heights"]]  # type: ignore[union-attr]
        self._pos = [float(v) for v in state["pos"]]  # type: ignore[union-attr]
        self._desired = [float(v) for v in state["desired"]]  # type: ignore[union-attr]


class OnlineFlowStats:
    """Per-completion flow-time accumulator bundle for streaming runs.

    Tracks the exact running max flow (with the achieving job id and its
    completion time), exact count/sum (mean), the exact last completion
    time (makespan end), and one :class:`P2Quantile` sketch per entry of
    ``quantiles``.
    """

    __slots__ = (
        "max_flow", "argmax_job", "argmax_completion",
        "count", "flow_sum", "last_completion", "sketches",
    )

    def __init__(self, quantiles: Sequence[float] = (0.5, 0.9, 0.99)) -> None:
        self.max_flow: float = float("-inf")
        self.argmax_job: Optional[int] = None
        self.argmax_completion: float = float("nan")
        self.count: int = 0
        self.flow_sum: float = 0.0
        self.last_completion: float = float("-inf")
        self.sketches: Dict[float, P2Quantile] = {
            float(q): P2Quantile(q) for q in quantiles
        }

    def observe(self, flow: float, completion: float, job_id: int) -> None:
        """Record one job completion (called once per job, in any order)."""
        self.count += 1
        self.flow_sum += flow
        if flow > self.max_flow:
            self.max_flow = flow
            self.argmax_job = job_id
            self.argmax_completion = completion
        if completion > self.last_completion:
            self.last_completion = completion
        for sketch in self.sketches.values():
            sketch.update(flow)

    @property
    def mean_flow(self) -> float:
        return self.flow_sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        return self.sketches[float(q)].value()

    def quantile_estimates(self) -> Dict[float, float]:
        return {q: s.value() for q, s in self.sketches.items()}

    def state_dict(self) -> Dict[str, object]:
        return {
            "max_flow": self.max_flow,
            "argmax_job": self.argmax_job,
            "argmax_completion": self.argmax_completion,
            "count": self.count,
            "flow_sum": self.flow_sum,
            "last_completion": self.last_completion,
            "sketches": {
                repr(q): s.state_dict() for q, s in self.sketches.items()
            },
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self.max_flow = float(state["max_flow"])  # type: ignore[arg-type]
        self.argmax_job = (
            None if state["argmax_job"] is None else int(state["argmax_job"])  # type: ignore[arg-type]
        )
        self.argmax_completion = float(state["argmax_completion"])  # type: ignore[arg-type]
        self.count = int(state["count"])  # type: ignore[arg-type]
        self.flow_sum = float(state["flow_sum"])  # type: ignore[arg-type]
        self.last_completion = float(state["last_completion"])  # type: ignore[arg-type]
        saved = state["sketches"]
        if set(saved) != {repr(q) for q in self.sketches}:  # type: ignore[arg-type]
            raise ValueError(
                f"checkpoint tracks quantiles {sorted(saved)}, "  # type: ignore[arg-type]
                f"run requested {sorted(repr(q) for q in self.sketches)}"
            )
        for q, sketch in self.sketches.items():
            sketch.load_state(saved[repr(q)])  # type: ignore[index]


class WindowedUtilization:
    """Busy-fraction time series over fixed tick windows, O(windows) memory.

    Implements the engine's sampler protocol (duck-typed like
    :class:`~repro.sim.sampling.SystemSampler`): the engine calls
    :meth:`maybe_record` every general tick and :meth:`record_boundary`
    at both edges of every fast-forward.  The busy-worker count is
    constant between consecutive calls, so integrating it as a step
    function is exact.  Windows are ``[k*window, (k+1)*window)`` in
    engine ticks; only the trailing ``max_windows`` window integrals are
    retained (older ones collapse into the global totals).
    """

    def __init__(
        self, m: int, window: int = 4096, max_windows: int = 1024
    ) -> None:
        if m < 1:
            raise ValueError(f"need at least one worker, got m={m}")
        if window < 1:
            raise ValueError(f"window must be >= 1 tick, got {window}")
        if max_windows < 1:
            raise ValueError(f"max_windows must be >= 1, got {max_windows}")
        self.m = int(m)
        self.window = int(window)
        self.max_windows = int(max_windows)
        self.busy_integral = 0  # sum of busy workers over all ticks
        self.first_tick: Optional[int] = None
        self.last_tick: Optional[int] = None
        self._last_busy = 0
        # Trailing per-window integrals: aligned window index -> integral.
        self._windows: List[List[int]] = []  # [window_index, integral]

    # -- sampler protocol -------------------------------------------------

    def maybe_record(
        self,
        tick: int,
        n_busy: int,
        queue_length: int = 0,
        stealable: int = 0,
        completed: int = 0,
    ) -> None:
        # Called once per simulated tick: the idle case (previous busy
        # count zero) and the within-one-window integration are inlined
        # rather than delegated, so the per-tick cost is a couple of
        # comparisons, not a call chain.
        tick = int(tick)
        last = self.last_tick
        if last is None:
            self.first_tick = tick
        elif tick > last:
            # The previous busy count held for [last, tick).
            busy = self._last_busy
            if busy:
                self.busy_integral += busy * (tick - last)
                w = self.window
                k = last // w
                if tick <= (k + 1) * w:
                    wins = self._windows
                    if wins and wins[-1][0] == k:
                        wins[-1][1] += busy * (tick - last)
                    else:
                        self._bump(k, busy * (tick - last))
                else:
                    self._integrate(last, tick, busy)
        elif tick < last:
            raise ValueError(
                f"utilization samples must be non-decreasing in time "
                f"(got tick {tick} after {last})"
            )
        self.last_tick = tick
        self._last_busy = int(n_busy)

    record_boundary = maybe_record

    def _integrate(self, start: int, stop: int, busy: int) -> None:
        """Spread ``busy`` over ``[start, stop)`` across window edges."""
        w = self.window
        k = start // w
        while start < stop:
            edge = min(stop, (k + 1) * w)
            self._bump(k, busy * (edge - start))
            start = edge
            k += 1

    def _bump(self, window_index: int, amount: int) -> None:
        wins = self._windows
        if wins and wins[-1][0] == window_index:
            wins[-1][1] += amount
        else:
            wins.append([window_index, amount])
            if len(wins) > self.max_windows:
                del wins[0 : len(wins) - self.max_windows]

    # -- readers ----------------------------------------------------------

    @property
    def elapsed_ticks(self) -> int:
        if self.first_tick is None or self.last_tick is None:
            return 0
        return self.last_tick - self.first_tick

    def overall(self) -> float:
        """Mean busy fraction over the whole observed span (exact)."""
        span = self.elapsed_ticks
        if span <= 0:
            return 0.0
        return self.busy_integral / (self.m * span)

    def series(self) -> List[Tuple[int, float]]:
        """Trailing ``(window_start_tick, busy_fraction)`` samples.

        The last window may still be partial; its fraction is normalized
        by the ticks actually observed inside it so far.
        """
        out: List[Tuple[int, float]] = []
        last = self.last_tick
        for window_index, integral in self._windows:
            start = window_index * self.window
            covered = self.window
            if last is not None and last < start + self.window:
                covered = max(1, last - max(
                    start, self.first_tick or start
                ))
            out.append((start, integral / (self.m * covered)))
        return out

    # -- checkpoint round-trip -------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "m": self.m,
            "window": self.window,
            "max_windows": self.max_windows,
            "busy_integral": self.busy_integral,
            "first_tick": self.first_tick,
            "last_tick": self.last_tick,
            "last_busy": self._last_busy,
            "windows": [list(w) for w in self._windows],
        }

    def load_state(self, state: Dict[str, object]) -> None:
        if (
            int(state["m"]) != self.m  # type: ignore[arg-type]
            or int(state["window"]) != self.window  # type: ignore[arg-type]
        ):
            raise ValueError(
                "checkpoint utilization accumulator was configured with "
                f"m={state['m']}, window={state['window']}; this one has "
                f"m={self.m}, window={self.window}"
            )
        self.max_windows = int(state["max_windows"])  # type: ignore[arg-type]
        self.busy_integral = int(state["busy_integral"])  # type: ignore[arg-type]
        self.first_tick = (
            None if state["first_tick"] is None else int(state["first_tick"])  # type: ignore[arg-type]
        )
        self.last_tick = (
            None if state["last_tick"] is None else int(state["last_tick"])  # type: ignore[arg-type]
        )
        self._last_busy = int(state["last_busy"])  # type: ignore[arg-type]
        self._windows = [
            [int(a), int(b)] for a, b in state["windows"]  # type: ignore[union-attr]
        ]
