"""Side-by-side scheduler comparison tables.

:class:`ComparisonTable` collects :class:`~repro.sim.result.ScheduleResult`
objects for the *same instance* and renders the rows the way the
experiment harness prints them -- scheduler name, max flow, mean flow,
tail percentiles, and the ratio to a designated baseline (normally the
OPT lower bound), mirroring how Figure 2 of the paper compares OPT /
steal-k-first / admit-first.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.result import ScheduleResult


class ComparisonTable:
    """Accumulates results on one instance and renders a comparison.

    Parameters
    ----------
    baseline:
        Name of the result to normalize ratios against (added later via
        :meth:`add`); usually ``"opt-lb"``.
    time_unit:
        Multiplier applied to all time columns for display (e.g.
        ``0.25`` to print milliseconds when one time unit is 0.25 ms).
    time_label:
        Unit suffix used in the header.
    """

    def __init__(
        self,
        baseline: Optional[str] = "opt-lb",
        time_unit: float = 1.0,
        time_label: str = "units",
    ) -> None:
        if time_unit <= 0:
            raise ValueError(f"time_unit must be positive, got {time_unit}")
        self.baseline = baseline
        self.time_unit = float(time_unit)
        self.time_label = time_label
        self._results: "Dict[str, ScheduleResult]" = {}

    def add(self, result: ScheduleResult, name: Optional[str] = None) -> None:
        """Add a result under ``name`` (defaults to the scheduler's label)."""
        key = name if name is not None else result.scheduler
        if key in self._results:
            raise ValueError(f"duplicate result name {key!r}")
        first = next(iter(self._results.values()), None)
        if first is not None and first.n_jobs != result.n_jobs:
            raise ValueError(
                "all results in a comparison must cover the same instance "
                f"({first.n_jobs} vs {result.n_jobs} jobs)"
            )
        self._results[key] = result

    @property
    def names(self) -> List[str]:
        """Result names in insertion order."""
        return list(self._results)

    def __getitem__(self, name: str) -> ScheduleResult:
        return self._results[name]

    def rows(self) -> List[Dict[str, float]]:
        """Structured rows (dicts) for programmatic consumption."""
        base = None
        if self.baseline is not None and self.baseline in self._results:
            base = self._results[self.baseline].max_flow
        out = []
        for name, r in self._results.items():
            row: Dict[str, float] = {
                "name": name,  # type: ignore[dict-item]
                "max_flow": r.max_flow * self.time_unit,
                "mean_flow": r.mean_flow * self.time_unit,
                "p99_flow": r.flow_percentile(99) * self.time_unit,
                "max_weighted_flow": r.max_weighted_flow * self.time_unit,
            }
            if base:
                row["vs_baseline"] = r.max_flow / base
            out.append(row)
        return out

    def render(self) -> str:
        """ASCII table, one scheduler per row."""
        if not self._results:
            return "(no results)"
        has_ratio = self.baseline in self._results if self.baseline else False
        header = (
            f"{'scheduler':<18} {'max_flow':>12} {'mean_flow':>12} "
            f"{'p99_flow':>12}"
        )
        if has_ratio:
            header += f" {'vs ' + str(self.baseline):>12}"
        lines = [
            f"(times in {self.time_label})",
            header,
            "-" * len(header),
        ]
        for row in self.rows():
            line = (
                f"{row['name']:<18} {row['max_flow']:>12.3f} "
                f"{row['mean_flow']:>12.3f} {row['p99_flow']:>12.3f}"
            )
            if has_ratio:
                line += f" {row.get('vs_baseline', float('nan')):>11.2f}x"
            lines.append(line)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComparisonTable(n_results={len(self._results)})"
