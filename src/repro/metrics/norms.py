"""lk-norms of flow time.

The paper's conclusion poses the open question "are there online
algorithms with strong performance guarantees for other objectives such
as the lk-norms of flow time?" -- the family
``(sum_i F_i^k)^(1/k)`` that interpolates between total/average flow
(k = 1) and maximum flow (k -> infinity).  These helpers evaluate a
schedule on the whole family, and the ``ext-norms`` bench shows where
each scheduler's sweet spot sits along it (mean-flow policies win small
k, the paper's FIFO-ordered policies win large k).
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.sim.result import ScheduleResult


def lk_norm(values: np.ndarray, k: float) -> float:
    """``(sum v_i^k)^(1/k)``, computed stably in log space.

    ``k = math.inf`` returns the maximum.  Plain powers overflow float64
    around ``v^k ~ 1e308``, which a flow of 1000 hits at k = 100; the
    log-sum-exp form is exact in the same regime and never overflows.
    """
    if k <= 0:
        raise ValueError(f"norm order must be positive, got {k}")
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("cannot take a norm of zero values")
    if np.any(v < 0):
        raise ValueError("lk norms are defined for non-negative values")
    vmax = float(v.max())
    if math.isinf(k) or vmax == 0.0:
        return vmax
    # (sum v^k)^(1/k) = vmax * (sum (v/vmax)^k)^(1/k)
    scaled = v / vmax
    return vmax * float(np.sum(scaled**k)) ** (1.0 / k)


def lk_norm_flow(result: ScheduleResult, k: float) -> float:
    """The lk-norm of the schedule's flow times."""
    return lk_norm(result.flows, k)


def normalized_lk_norm_flow(result: ScheduleResult, k: float) -> float:
    """``lk norm / n^(1/k)`` -- the generalized mean of the flows.

    Unlike the raw norm, this is comparable across instance sizes: it
    equals the mean flow at k = 1 and converges to the max flow as
    k grows, so a scheduler's profile over k reads as "mean -> tail".
    """
    if math.isinf(k):
        return lk_norm_flow(result, k)
    return lk_norm_flow(result, k) / result.n_jobs ** (1.0 / k)


def norm_profile(
    result: ScheduleResult,
    ks: Sequence[float] = (1.0, 2.0, 4.0, 16.0, math.inf),
) -> Dict[float, float]:
    """Normalized lk norms over a ladder of k values (``inf`` = max flow)."""
    return {k: normalized_lk_norm_flow(result, k) for k in ks}
