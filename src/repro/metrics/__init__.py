"""Evaluation metrics over schedule results.

Free-function counterparts (and extensions) of the properties on
:class:`~repro.sim.result.ScheduleResult`, plus cross-scheduler
aggregation:

* :mod:`~repro.metrics.flow` -- flow-time statistics, the weighted
  objective, both DAG readings of stretch, and empirical competitive
  ratios against the OPT lower bound;
* :mod:`~repro.metrics.utilization` -- busy/steal/idle accounting and
  offered-load bookkeeping;
* :mod:`~repro.metrics.summary` -- side-by-side comparison tables
  rendered the way the experiment reports print them;
* :mod:`~repro.metrics.online` -- single-pass accumulators (exact
  running max, P^2 quantile sketches, windowed utilization) for
  streaming runs, where per-job arrays never exist.
"""

from repro.metrics.flow import (
    competitive_ratio,
    flow_statistics,
    max_flow,
    max_weighted_flow,
    mean_flow,
    span_stretches,
    work_stretches,
)
from repro.metrics.utilization import (
    busy_fraction,
    offered_load,
    steal_fraction,
    utilization_report,
)
from repro.metrics.online import (
    OnlineFlowStats,
    OnlineMax,
    P2Quantile,
    WindowedUtilization,
)
from repro.metrics.summary import ComparisonTable
from repro.metrics.overheads import (
    dispatch_count,
    migration_count,
    overhead_report,
    preemption_count,
    reallocation_event_count,
)
from repro.metrics.norms import (
    lk_norm,
    lk_norm_flow,
    norm_profile,
    normalized_lk_norm_flow,
)
from repro.metrics.timeseries import (
    backlog_over_time,
    completion_throughput,
    peak_backlog,
    windowed_max_flow,
)

__all__ = [
    "competitive_ratio",
    "flow_statistics",
    "max_flow",
    "max_weighted_flow",
    "mean_flow",
    "span_stretches",
    "work_stretches",
    "busy_fraction",
    "offered_load",
    "steal_fraction",
    "utilization_report",
    "ComparisonTable",
    "OnlineMax",
    "P2Quantile",
    "OnlineFlowStats",
    "WindowedUtilization",
    "dispatch_count",
    "preemption_count",
    "migration_count",
    "reallocation_event_count",
    "overhead_report",
    "lk_norm",
    "lk_norm_flow",
    "normalized_lk_norm_flow",
    "norm_profile",
    "backlog_over_time",
    "peak_backlog",
    "windowed_max_flow",
    "completion_throughput",
]
