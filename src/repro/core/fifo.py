"""The idealized FIFO scheduler (Section 3 of the paper).

At every instant FIFO orders live jobs by arrival time and hands
processors to ready nodes job-by-job in that order until processors or
ready nodes run out.  Theorem 3.1: FIFO with ``(1+eps)``-speed is
``O(1/eps)``-competitive (the proof gives ``3/eps``) for maximum
unweighted flow time.

The paper calls this scheduler *idealized* because a real implementation
would pay heavy preemption and centralization costs -- the motivation for
the work-stealing schedulers of Section 4, which approximate FIFO
distributively.  In simulation those costs vanish, so FIFO doubles as the
strongest practical comparator next to the OPT lower bound.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Scheduler
from repro.dag.job import JobSet
from repro.sim.events import run_centralized
from repro.sim.result import ScheduleResult
from repro.sim.rng import SeedLike
from repro.sim.trace import TraceRecorder


class FifoScheduler(Scheduler):
    """First-In-First-Out over jobs, greedy over each job's ready nodes.

    Non-clairvoyant and deterministic: priority is ``(arrival, job_id)``
    -- exactly the information available at job release.  Ties in arrival
    time are broken by job id, a concrete instance of the paper's
    "breaking ties arbitrarily".
    """

    @property
    def name(self) -> str:
        return "fifo"

    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ScheduleResult:
        del seed  # deterministic policy
        return run_centralized(
            jobset,
            m=m,
            speed=speed,
            priority_key=lambda je: (je.arrival, je.job_id),
            scheduler_name=self.name,
            trace=trace,
        )
