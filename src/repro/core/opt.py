"""The simulated-OPT lower bound (Section 6 of the paper).

The true optimal max-flow schedule is unknown, so the paper bounds it
from below: assume every job is *fully parallelizable* with no preemption
overhead, i.e. it can run at rate ``m`` using all processors.  Then the
``m``-processor problem collapses to scheduling sequential jobs of size
``W_i / m`` on a single speed-1 machine, where FIFO is known to be optimal
for maximum flow time (Bender et al.; Ambuehl & Mastrolilli).  The
resulting max flow is therefore **at most** that of any feasible schedule
of the real DAG jobs on ``m`` unit-speed processors.

Two refinements preserved from the theory:

* a job can never finish faster than its critical path, so each job's
  completion is additionally lower-bounded by ``r_i + P_i / speed``;
* the bound is evaluated at the *comparison* speed (1 by default): when a
  competitor runs with resource augmentation ``s``, the theorems compare
  it against OPT at speed 1, which is how the benches use this class.

The computation is a single O(n) pass (jobs are already in arrival
order), so OPT curves are essentially free next to the simulations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import Scheduler
from repro.dag.job import JobSet
from repro.sim.result import ScheduleResult, SimulationStats
from repro.sim.rng import SeedLike
from repro.sim.trace import TraceRecorder


def opt_lower_bound(
    jobset: JobSet,
    m: int,
    speed: float = 1.0,
    use_span_bound: bool = True,
) -> ScheduleResult:
    """Compute the Section 6 lower bound as a :class:`ScheduleResult`.

    Parameters
    ----------
    jobset:
        The instance.
    m:
        Number of processors of the hypothetical optimal schedule.
    speed:
        Speed of the hypothetical optimal schedule (1.0 in every paper
        comparison; exposed for sensitivity studies).
    use_span_bound:
        Also apply the per-job critical-path lower bound
        ``c_i >= r_i + P_i / speed``.  The aggregate-machine relaxation
        alone can undercut the span of highly sequential jobs; adding the
        span bound tightens the result while remaining a valid lower
        bound (both relaxations hold for every feasible schedule).
        Note the span refinement is per-job only -- it does not force the
        FIFO queue behind a long job to wait, keeping the whole
        computation a lower bound.

    Returns
    -------
    ScheduleResult
        ``completions`` of the relaxed schedule; its ``max_flow`` is the
        number the paper plots as "OPT".
    """
    if m < 1:
        raise ValueError(f"need at least one processor, got m={m}")
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")

    arrivals = np.asarray(jobset.arrivals, dtype=np.float64)
    works = np.asarray(jobset.works, dtype=np.float64)
    spans = np.asarray(jobset.spans, dtype=np.float64)
    weights = np.asarray(jobset.weights, dtype=np.float64)
    n = arrivals.size

    # Single-machine FIFO on sequential jobs of size W_i / m at the given
    # speed: c_i = max(r_i, c_{i-1}) + W_i / (m * speed), in arrival order.
    service = works / (m * speed)
    completions = np.empty(n, dtype=np.float64)
    clock = 0.0
    for i in range(n):
        a = arrivals[i]
        if a > clock:
            clock = a
        clock += service[i]
        completions[i] = clock

    if use_span_bound:
        np.maximum(completions, arrivals + spans / speed, out=completions)

    stats = SimulationStats(busy_steps=int(round(float(works.sum()))))
    return ScheduleResult(
        scheduler="opt-lb",
        m=m,
        speed=speed,
        arrivals=arrivals,
        completions=completions,
        weights=weights,
        stats=stats,
    )


class OptLowerBound(Scheduler):
    """Scheduler-shaped wrapper around :func:`opt_lower_bound`.

    *Not a feasible scheduler*: its "completions" can be unachievable by
    any real execution -- that is the point of a lower bound.  It is
    clairvoyant by construction (reads each job's total work), exactly as
    the paper's simulated OPT is.
    """

    clairvoyant = True

    def __init__(self, use_span_bound: bool = True) -> None:
        self.use_span_bound = use_span_bound

    @property
    def name(self) -> str:
        return "opt-lb"

    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ScheduleResult:
        del seed, trace  # deterministic, and no real execution to trace
        return opt_lower_bound(
            jobset, m=m, speed=speed, use_span_bound=self.use_span_bound
        )
