"""The paper's schedulers: the primary contribution of the reproduction.

Every scheduler implements the :class:`~repro.core.base.Scheduler`
interface (``run(jobset, m, speed, ...) -> ScheduleResult``):

================================  ======================================
:class:`FifoScheduler`            Idealized FIFO (Section 3):
                                  ``(1+eps)``-speed ``O(1/eps)``-
                                  competitive for max flow time.
:class:`BwfScheduler`             Biggest-Weight-First (Section 7):
                                  ``(1+eps)``-speed ``O(1/eps^2)``-
                                  competitive for max *weighted* flow.
:class:`WorkStealingScheduler`    steal-k-first / admit-first
                                  (Section 4): distributed randomized
                                  work stealing with a global FIFO
                                  admission queue.
:class:`OptLowerBound`            The simulated-OPT lower bound of
                                  Section 6 (fully-parallelizable
                                  reduction to single-machine FIFO).
:class:`LifoScheduler`,           Centralized list-scheduling baselines
:class:`SjfScheduler`,            used by the comparison benches;
:class:`RandomPriorityScheduler`  SJF is clairvoyant by design.
================================  ======================================
"""

from repro.core.base import Scheduler
from repro.core.fifo import FifoScheduler
from repro.core.bwf import BwfScheduler
from repro.core.work_stealing import (
    AdmitFirstScheduler,
    WeightedWorkStealingScheduler,
    WorkStealingScheduler,
)
from repro.core.opt import OptLowerBound, opt_lower_bound
from repro.core.greedy import (
    LifoScheduler,
    RandomPriorityScheduler,
    SjfScheduler,
)
from repro.core.dynamic import (
    LeastAttainedServiceScheduler,
    ShortestRemainingWorkScheduler,
)

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "BwfScheduler",
    "WorkStealingScheduler",
    "AdmitFirstScheduler",
    "WeightedWorkStealingScheduler",
    "OptLowerBound",
    "opt_lower_bound",
    "LifoScheduler",
    "SjfScheduler",
    "RandomPriorityScheduler",
    "LeastAttainedServiceScheduler",
    "ShortestRemainingWorkScheduler",
]
