"""Dynamic-priority baselines: LAS and SRPT.

Neither appears in the paper; both are classic single-machine policies
that the scheduling literature constantly contrasts with FIFO, so the
ablation benches include them to show *why* the paper builds on FIFO
ordering for the max-flow objective:

* :class:`LeastAttainedServiceScheduler` (LAS / foreground-background):
  strict priority to the job that has received the least service so
  far.  Non-clairvoyant and excellent for mean flow under heavy tails --
  and terrible for max flow, because large jobs starve behind every
  newcomer.
* :class:`SrptScheduler2` is intentionally *not* provided under that
  name -- see :class:`ShortestRemainingWorkScheduler`, the DAG-model
  analogue of SRPT: strict priority to the smallest remaining total
  work.  Clairvoyant (it reads remaining work, which an online
  scheduler cannot know); optimal-ish for mean flow, unbounded for max.

Both run on the event engine in ``dynamic`` mode, which re-sorts
priorities every event and applies a one-work-unit scheduling quantum
(see :func:`repro.sim.events.run_centralized`).
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Scheduler
from repro.dag.job import JobSet
from repro.sim.events import run_centralized
from repro.sim.result import ScheduleResult
from repro.sim.rng import SeedLike
from repro.sim.trace import TraceRecorder


class LeastAttainedServiceScheduler(Scheduler):
    """LAS: the job with the least executed work so far runs first.

    Non-clairvoyant (attained service is observable by definition) and
    dynamic.  Ties (e.g. a fresh arrival vs. another fresh arrival)
    break by arrival then id, so brand-new jobs preempt everything --
    the foreground-background behaviour.
    """

    @property
    def name(self) -> str:
        return "las"

    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ScheduleResult:
        del seed  # deterministic policy
        return run_centralized(
            jobset,
            m=m,
            speed=speed,
            priority_key=lambda je: (je.attained, je.arrival, je.job_id),
            scheduler_name=self.name,
            trace=trace,
            dynamic=True,
        )


class ShortestRemainingWorkScheduler(Scheduler):
    """SRPT analogue for DAG jobs: least remaining *total work* first.

    Clairvoyant: remaining work presumes knowing each job's full size up
    front, which the paper's model forbids -- labeled accordingly and
    used only as a mean-flow-oriented contrast in ablations.
    """

    clairvoyant = True

    @property
    def name(self) -> str:
        return "srw"

    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ScheduleResult:
        del seed  # deterministic policy
        return run_centralized(
            jobset,
            m=m,
            speed=speed,
            priority_key=lambda je: (
                je.job.dag.total_work - je.attained,
                je.arrival,
                je.job_id,
            ),
            scheduler_name=self.name,
            trace=trace,
            dynamic=True,
        )
