"""The scheduler interface shared by every policy in :mod:`repro.core`.

A :class:`Scheduler` is a stateless description of a policy; calling
:meth:`Scheduler.run` simulates it on an instance and returns a
:class:`~repro.sim.result.ScheduleResult`.  Statelessness means one
scheduler object can be reused across sweeps and repetitions -- all
per-run state lives inside the engines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.dag.job import JobSet
from repro.sim.result import ScheduleResult
from repro.sim.rng import SeedLike
from repro.sim.trace import TraceRecorder


class Scheduler(ABC):
    """Abstract scheduling policy.

    Subclasses document two contract points:

    * **clairvoyance** -- the paper's algorithms are non-clairvoyant
      (no access to job structure, work or span before nodes become
      ready); baselines that peek must say so in their docstring and set
      :attr:`clairvoyant`;
    * **randomness** -- deterministic policies ignore ``seed``.
    """

    #: True if the policy inspects job internals unavailable to an
    #: online non-clairvoyant scheduler.  Purely informational; used by
    #: reports to label baselines.
    clairvoyant: bool = False

    @property
    @abstractmethod
    def name(self) -> str:
        """Short, stable identifier used in reports and result labels."""

    @abstractmethod
    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ScheduleResult:
        """Simulate the policy on ``jobset`` with ``m`` speed-``speed`` workers.

        Parameters
        ----------
        jobset:
            The instance to schedule.
        m:
            Number of identical processors.
        speed:
            Resource augmentation factor ``s >= 1`` (1.0 = no
            augmentation).
        seed:
            Seed or generator for randomized policies; ignored by
            deterministic ones.
        trace:
            Optional recorder capturing execution intervals for
            feasibility audits.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
