"""Biggest-Weight-First for maximum weighted flow time (Section 7).

BWF is FIFO's sibling for the weighted objective ``max_i w_i F_i``: at
every instant it orders live jobs by *decreasing weight* (ties broken by
arrival, then id) and hands processors to ready nodes job-by-job in that
order.  Theorem 7.1: BWF with ``(1+eps)``-speed is
``O(1/eps^2)``-competitive for maximum weighted flow time -- essentially
the best possible online, since without resource augmentation every
algorithm is ``Omega(W^0.4)``-competitive in the max weight ratio
(Chekuri, Im & Moseley), even for sequential unit jobs.

BWF is non-clairvoyant: the weight is declared at arrival (Section 2) and
is the only job property the priority reads.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Scheduler
from repro.dag.job import JobSet
from repro.sim.events import run_centralized
from repro.sim.result import ScheduleResult
from repro.sim.rng import SeedLike
from repro.sim.trace import TraceRecorder


class BwfScheduler(Scheduler):
    """Biggest-Weight-First: strict priority to the heaviest live jobs.

    With unit weights BWF's ordering collapses to arrival order, i.e. it
    degenerates to FIFO exactly -- a property the test suite checks.
    """

    @property
    def name(self) -> str:
        return "bwf"

    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ScheduleResult:
        del seed  # deterministic policy
        return run_centralized(
            jobset,
            m=m,
            speed=speed,
            priority_key=lambda je: (-je.weight, je.arrival, je.job_id),
            scheduler_name=self.name,
            trace=trace,
        )
