"""Centralized list-scheduling baselines for the comparison benches.

None of these carry guarantees for maximum flow time -- that is what
makes them useful contrast: the ablation benches show how FIFO-ordering
(the paper's Theorem 3.1) is what controls the max-flow objective, not
centralization or greediness per se.

* :class:`LifoScheduler` -- newest job first.  Pathological for max flow
  (early jobs starve under sustained load); the anti-FIFO control.
* :class:`SjfScheduler` -- smallest *total work* first.  Clairvoyant (it
  reads ``W_i``, which an online scheduler cannot know); good for mean
  flow, unbounded for max flow.
* :class:`RandomPriorityScheduler` -- a uniform random static priority
  per job; the "no policy at all" control.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Scheduler
from repro.dag.job import JobSet
from repro.sim.events import run_centralized
from repro.sim.result import ScheduleResult
from repro.sim.rng import SeedLike, make_rng
from repro.sim.trace import TraceRecorder


class LifoScheduler(Scheduler):
    """Last-In-First-Out: strict priority to the most recently arrived job.

    Non-clairvoyant and deterministic.  Under sustained load LIFO starves
    the oldest jobs, so its max flow can exceed FIFO's by the full length
    of a busy period -- the benches use it to show how much the FIFO
    ordering matters.
    """

    @property
    def name(self) -> str:
        return "lifo"

    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ScheduleResult:
        del seed
        return run_centralized(
            jobset,
            m=m,
            speed=speed,
            priority_key=lambda je: (-je.arrival, -je.job_id),
            scheduler_name=self.name,
            trace=trace,
        )


class SjfScheduler(Scheduler):
    """Smallest-Job-First by total work ``W_i`` (clairvoyant baseline).

    Reads ``job.dag.total_work`` up front, which the paper's online model
    forbids; included purely as a mean-flow-oriented comparator.
    """

    clairvoyant = True

    @property
    def name(self) -> str:
        return "sjf"

    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ScheduleResult:
        del seed
        return run_centralized(
            jobset,
            m=m,
            speed=speed,
            priority_key=lambda je: (je.job.dag.total_work, je.arrival, je.job_id),
            scheduler_name=self.name,
            trace=trace,
        )


class RandomPriorityScheduler(Scheduler):
    """A uniform random static priority per job (seeded).

    Serves as the null-policy control in the scheduler-comparison bench:
    any structured policy should beat it on max flow under load.
    """

    @property
    def name(self) -> str:
        return "random-priority"

    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
    ) -> ScheduleResult:
        rng = make_rng(seed)
        priorities = rng.random(len(jobset))
        return run_centralized(
            jobset,
            m=m,
            speed=speed,
            priority_key=lambda je: (priorities[je.job_id], je.job_id),
            scheduler_name=self.name,
            trace=trace,
        )
