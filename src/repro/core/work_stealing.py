"""The steal-k-first and admit-first work-stealing schedulers (Section 4).

These are the practical schedulers the paper proposes: distributed
randomized work stealing (one deque per worker) extended to online
multi-job arrival with a global FIFO admission queue.  The single policy
knob is ``k``:

* ``k = 0`` -- **admit-first**: a free worker admits the head-of-line job
  whenever the queue is non-empty, and steals only when it is empty.
  Theoretically strongest: ``(1+eps)``-speed with max flow
  ``O((1/eps^2) max{OPT, ln n})`` w.h.p. (Corollary 4.3).
* ``k > 0`` -- **steal-k-first**: a free worker tries random steals first
  and admits only after ``k`` consecutive failures.  Theorem 4.1 gives
  ``(k+1+(k+2)eps)``-speed with the same flow bound; in *practice* larger
  ``k`` tracks FIFO more closely (admitted jobs get parallelism before new
  jobs are opened) and beats admit-first at high load -- the paper's
  experiments use ``k = 16`` and Section 6 shows admit-first up to 2x
  worse at high utilization, which our benches reproduce.

Both variants are non-clairvoyant and randomized (victim selection only).
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import Scheduler
from repro.dag.job import JobSet
from repro.sim.engine import _run_work_stealing
from repro.sim.result import ScheduleResult
from repro.sim.rng import SeedLike
from repro.sim.sampling import SystemSampler
from repro.sim.trace import TraceRecorder


class WorkStealingScheduler(Scheduler):
    """steal-k-first work stealing with a global FIFO admission queue.

    Parameters
    ----------
    k:
        Consecutive failed steal attempts required before a free worker
        admits a new job from the global queue.  ``0`` yields admit-first.
        The paper's experiments use ``k = 16`` (one per core on their
        16-core testbed); the Section 4 discussion recommends ``k >= m``
        so that, in expectation, stealable work is found if any exists.

    Notes
    -----
    Randomness is confined to victim selection; pass ``seed`` to
    :meth:`run` for reproducible runs.  Each steal attempt costs one time
    step, exactly as in the paper's analysis.
    """

    def __init__(
        self,
        k: int = 0,
        steals_per_tick: int = 1,
        victim_policy: str = "uniform",
        steal_half: bool = False,
        admission: str = "fifo",
    ) -> None:
        if k < 0:
            raise ValueError(f"steal-k-first requires k >= 0, got {k}")
        if steals_per_tick < 1:
            raise ValueError(
                f"steals_per_tick must be >= 1, got {steals_per_tick}"
            )
        if victim_policy not in ("uniform", "round-robin", "max-deque"):
            raise ValueError(f"unknown victim policy {victim_policy!r}")
        if admission not in ("fifo", "weight"):
            raise ValueError(f"unknown admission policy {admission!r}")
        self.k = int(k)
        #: Acquisition cost model: 1 = the paper's theoretical unit-time
        #: steal; larger values model cheap (sub-unit-time) steals as in
        #: the paper's TBB experiments.  See
        #: :func:`repro.sim.engine.run_work_stealing`.
        self.steals_per_tick = int(steals_per_tick)
        #: Victim selection (see :mod:`repro.sim.policies`).
        self.victim_policy = victim_policy
        #: Steal half the victim's deque per successful steal (ablation
        #: knob; the paper's analyzed policy steals one node).
        self.steal_half = bool(steal_half)
        #: Admission order: "fifo" (the paper) or "weight" (BWF-style,
        #: this repository's weighted-objective extension).
        self.admission = admission

    @property
    def name(self) -> str:
        base = f"steal-{self.k}-first" if self.k > 0 else "admit-first"
        suffix = ""
        if self.victim_policy != "uniform":
            suffix += f"/{self.victim_policy}"
        if self.steal_half:
            suffix += "/half"
        if self.admission != "fifo":
            suffix += f"/{self.admission}-admission"
        return base + suffix

    def run(
        self,
        jobset: JobSet,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[TraceRecorder] = None,
        sampler: Optional[SystemSampler] = None,
    ) -> ScheduleResult:
        return _run_work_stealing(
            jobset,
            m=m,
            speed=speed,
            k=self.k,
            seed=seed,
            trace=trace,
            steals_per_tick=self.steals_per_tick,
            victim_policy=self.victim_policy,
            steal_half=self.steal_half,
            admission=self.admission,
            sampler=sampler,
        )


class AdmitFirstScheduler(WorkStealingScheduler):
    """Admit-first work stealing -- steal-k-first with ``k = 0``.

    Provided as a named class because the paper treats admit-first as a
    distinct algorithm (Corollary 4.3) and the experiments compare it
    against steal-16-first by name.
    """

    def __init__(self) -> None:
        super().__init__(k=0)


class WeightedWorkStealingScheduler(WorkStealingScheduler):
    """Work stealing with biggest-weight-first admission (extension).

    The paper analyzes the weighted objective only for the centralized
    BWF (Section 7) and work stealing only with FIFO admission
    (Section 4).  This class combines them: the global queue admits the
    heaviest waiting job, so steal-k-first approximates BWF the way
    FIFO-admission approximates FIFO.  No competitive bound is claimed;
    the ``ext-wws`` bench measures the empirical gap to centralized BWF
    on weighted workloads.
    """

    def __init__(
        self,
        k: int = 16,
        steals_per_tick: int = 64,
        victim_policy: str = "uniform",
        steal_half: bool = False,
    ) -> None:
        super().__init__(
            k=k,
            steals_per_tick=steals_per_tick,
            victim_policy=victim_policy,
            steal_half=steal_half,
            admission="weight",
        )
