"""repro -- online scheduling of parallelizable DAG jobs for max flow time.

A production-quality reproduction of

    Kunal Agrawal, Jing Li, Kefu Lu, Benjamin Moseley.
    "Scheduling Parallelizable Jobs Online to Minimize the Maximum Flow
    Time." SPAA 2016.

The library provides:

* a dynamic-multithreaded (DAG) job model (:mod:`repro.dag`);
* exact simulation engines for centralized preemptive scheduling and for
  randomized work stealing with unit-time steal attempts
  (:mod:`repro.sim`);
* the paper's schedulers -- FIFO, BWF, admit-first and steal-k-first work
  stealing -- plus the simulated-OPT lower bound and contrast baselines
  (:mod:`repro.core`);
* workload generators for the paper's Bing / finance / log-normal
  experiments and the Section 5 adversarial lower-bound instance
  (:mod:`repro.workloads`);
* flow-time metrics (:mod:`repro.metrics`), the theorems' bound formulas
  with run-vs-bound validators (:mod:`repro.theory`), and a harness that
  regenerates every figure of the paper's evaluation
  (:mod:`repro.experiments`).

Quickstart
----------
>>> import repro
>>> from repro import (FifoScheduler, WorkStealingScheduler, OptLowerBound,
...                    parallel_for, jobs_from_dags)
>>> dags = [parallel_for(total_body_work=64, grain=8) for _ in range(20)]
>>> jobs = jobs_from_dags(dags, arrivals=[2.0 * i for i in range(20)])
>>> opt = repro.run(OptLowerBound(), jobs, m=4)
>>> ws = repro.run(WorkStealingScheduler(k=4), jobs, m=4, seed=0)
>>> opt.max_flow <= ws.max_flow
True

:func:`repro.run` is the single entrypoint for every engine (scheduler
instances, ``"work-stealing"``, ``"speedup-fifo"``, ``"speedup-equi"``)
and the attachment point for :class:`repro.obs.Telemetry`
observability; see docs/OBSERVABILITY.md.

:func:`repro.sweep` is its grid-scale sibling: the same scheduler forms
crossed over a parameter grid on a fault-tolerant process pool (per-cell
deadlines, bounded deterministic retries, pool respawn, lossless
``resume=True`` checkpointing); see docs/ROBUSTNESS.md.  Failures
surface as the typed :mod:`repro.errors` hierarchy (all subclasses of
:class:`repro.errors.ReproError`).

Sweeps scale across hosts: ``repro.sweep(shard=(i, n), cache=...)``
runs a deterministic slice of the grid, and :func:`repro.merge_caches`
combines the shard caches into one resumable cache (content-hash
conflict detection, bit-identical resume-after-merge); see
EXPERIMENTS.md.

:func:`repro.search` and :func:`repro.ablate` answer *questions* on top
of the cached sweep path: deterministic successive halving / bisection
over a candidate space (including the paper's minimum speed
augmentation meeting a flow-time budget), and declarative baseline +
deltas ablation reports -- every candidate evaluation is a cached,
byte-identical sweep cell, so refinement and repetition are nearly
free; see EXPERIMENTS.md ("Ask a question, not a grid").
"""

from repro.core import (
    AdmitFirstScheduler,
    BwfScheduler,
    FifoScheduler,
    LifoScheduler,
    OptLowerBound,
    RandomPriorityScheduler,
    Scheduler,
    SjfScheduler,
    WorkStealingScheduler,
    opt_lower_bound,
)
from repro.dag import (
    DagBuilder,
    Job,
    JobDag,
    JobSet,
    adversarial_fork,
    balanced_tree,
    chain,
    diamond,
    fork_join,
    jobs_from_dags,
    map_reduce,
    parallel_chains,
    parallel_for,
    random_layered_dag,
    single_node,
)
from repro.dag import (
    FlatInstance,
    content_hash,
    flatten_jobset,
    load_flat,
    save_flat,
    to_jobset,
)
from repro.sim import (
    ScheduleResult,
    SimulationStats,
    TraceRecorder,
    audit_trace,
    derive_seed,
    make_rng,
    run_centralized,
    run_work_stealing,  # deprecated shim; importable, not in __all__
)
from repro.api import ablate, run, search, sweep
from repro.errors import (
    CacheCorruptError,
    CacheMergeConflictError,
    CellCrashedError,
    CellTimeoutError,
    ReproError,
    SearchInfeasibleError,
    SweepConfigError,
    UnkeyableFactoryError,
)
from repro.obs import Telemetry
from repro.sim.stream_engine import StreamResult
from repro.workloads import StreamSpec, WorkloadSpec

__version__ = "1.7.0"


def merge_caches(sources, dest, telemetry=None):
    """Merge sharded sweep caches into one resumable cache.

    Top-level convenience for
    :func:`repro.experiments.shard.merge_caches` (imported lazily so
    ``import repro`` stays light); see that function for the full
    contract -- verbatim copies for new keys, silent tolerance of
    identical overlap, and a provenance-bearing
    :class:`~repro.errors.CacheMergeConflictError` when the same key
    holds different content.
    """
    from repro.experiments.shard import merge_caches as _merge

    return _merge(sources, dest, telemetry=telemetry)


__all__ = [
    "__version__",
    # unified entrypoints + observability (ISSUE 3 / ISSUE 4)
    "run",
    "sweep",
    "merge_caches",
    "Telemetry",
    # adaptive experimentation (ISSUE 9)
    "search",
    "ablate",
    # typed error hierarchy (ISSUE 4)
    "ReproError",
    "SweepConfigError",
    "UnkeyableFactoryError",
    "CacheCorruptError",
    "CacheMergeConflictError",
    "CellCrashedError",
    "CellTimeoutError",
    "SearchInfeasibleError",
    # core
    "Scheduler",
    "FifoScheduler",
    "BwfScheduler",
    "WorkStealingScheduler",
    "AdmitFirstScheduler",
    "OptLowerBound",
    "opt_lower_bound",
    "LifoScheduler",
    "SjfScheduler",
    "RandomPriorityScheduler",
    # dag
    "DagBuilder",
    "JobDag",
    "Job",
    "JobSet",
    "jobs_from_dags",
    "single_node",
    "chain",
    "diamond",
    "fork_join",
    "parallel_for",
    "parallel_chains",
    "balanced_tree",
    "map_reduce",
    "adversarial_fork",
    "random_layered_dag",
    # flat interchange format
    "FlatInstance",
    "flatten_jobset",
    "to_jobset",
    "content_hash",
    "save_flat",
    "load_flat",
    # workloads
    "WorkloadSpec",
    # streaming (ISSUE 7)
    "StreamSpec",
    "StreamResult",
    # sim
    "ScheduleResult",
    "SimulationStats",
    "TraceRecorder",
    "audit_trace",
    "derive_seed",
    "make_rng",
    "run_centralized",
]
