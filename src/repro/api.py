"""The :func:`repro.run` facade: one entrypoint for every engine.

Before ISSUE 3 the package exposed four divergent ways to simulate a
schedule -- :meth:`repro.core.base.Scheduler.run`,
``run_work_stealing``, ``run_speedup_fifo`` and ``run_speedup_equi`` --
with inconsistently named knobs (``m`` vs ``num_workers``, ``speed`` vs
``augmentation``).  :func:`run` folds them behind a single call:

* pass a :class:`~repro.core.base.Scheduler` *instance* (or a Scheduler
  subclass, instantiated with defaults) to dispatch through its
  polymorphic ``run``;
* pass an *engine name string* to reach an engine directly:
  ``"work-stealing"`` (the reference tick engine; extra keyword
  arguments such as ``k``, ``steals_per_tick``, ``trace`` forward to
  it), ``"flat"`` (the vectorized flat-CSR kernel of
  :mod:`repro.sim.flat_engine` -- bit-identical to the reference and
  additionally accepts a :class:`~repro.dag.flat.FlatInstance`
  directly), ``"batch"`` (the rep-batched arena kernel of
  :mod:`repro.sim.batch_engine` -- same semantics and knobs as
  ``"flat"``; :func:`repro.sim.batch_engine.run_batch` amortizes the
  dispatch cost over many replicates at once) or ``"speedup-fifo"`` /
  ``"speedup-equi"`` (the speedup-curves engines, which take a
  :class:`~repro.speedup.model.SpeedupJobSet`).

The old module-level entrypoints survive as thin shims that emit one
:class:`DeprecationWarning` per process and forward unchanged -- results
stay bit-identical, and tier-1 CI runs with ``-W
error::DeprecationWarning`` to keep internal code off them.

The facade is also where observability attaches: pass
``telemetry=Telemetry(...)`` and the run emits ``run.start`` /
``run.done`` events (scheduler label, machine size, wall time, and the
full :class:`~repro.sim.result.SimulationStats` snapshot).  With
``telemetry=None`` nothing is recorded and the schedule is
bit-identical -- the engines never see the telemetry object at all.

ISSUE 4 adds the sibling :func:`repro.sweep` facade: the same scheduler
forms and keyword normalization, dispatched to
:func:`~repro.experiments.sweep.grid_sweep`'s fault-tolerant executor
(per-cell deadlines, bounded retries, pool respawn, lossless resume).
One mental model covers both: ``repro.run`` simulates one instance,
``repro.sweep`` crosses a parameter grid over generated instances.
"""

from __future__ import annotations

import copy
import time
from typing import Any, Callable, Dict, Optional, Sequence, Union

from repro.core.base import Scheduler
from repro.errors import SweepConfigError
from repro.sim.result import ScheduleResult
from repro.sim.rng import SeedLike

#: Engine-name strings accepted by :func:`run`.
ENGINE_NAMES = ("work-stealing", "flat", "batch", "speedup-fifo", "speedup-equi")

#: The valid instance/stream combinations, quoted by configuration
#: errors so the fix is visible in the message itself.
_STREAM_COMBINATIONS = (
    "valid combinations:\n"
    "  repro.run(engine_or_scheduler, jobset, m=...)        "
    "-- materialized instance (any engine)\n"
    "  repro.run('flat', stream=spec.stream(), m=...)       "
    "-- streaming run (bounded memory, returns StreamResult)\n"
    "  repro.sweep(scheduler, grid, workload, m=...)        "
    "-- grid sweep over materialized instances (no stream=)"
)


def _n_jobs(jobset: Any) -> int:
    """Job count of either instance form (JobSet or FlatInstance)."""
    n = getattr(jobset, "n_jobs", None)
    return int(n) if n is not None else len(jobset)


def _resolve_size(
    m: Optional[int], num_workers: Optional[int], who: str = "run()"
) -> int:
    """Normalize the machine-size aliases (``m`` wins the docs)."""
    if m is not None and num_workers is not None and m != num_workers:
        raise TypeError(
            f"got both m={m} and num_workers={num_workers}; "
            f"they are aliases -- pass exactly one"
        )
    size = m if m is not None else num_workers
    if size is None:
        raise TypeError(f"{who} requires a machine size: pass m=...")
    return int(size)


def _resolve_speed(
    speed: Optional[float], augmentation: Optional[float]
) -> float:
    """Normalize the speed aliases (``speed`` is canonical)."""
    if speed is not None and augmentation is not None and speed != augmentation:
        raise TypeError(
            f"got both speed={speed} and augmentation={augmentation}; "
            f"they are aliases -- pass exactly one"
        )
    if speed is not None:
        return float(speed)
    if augmentation is not None:
        return float(augmentation)
    return 1.0


def run(
    scheduler: Union[Scheduler, type, str],
    jobset: Any = None,
    *,
    stream: Optional[Any] = None,
    m: Optional[int] = None,
    num_workers: Optional[int] = None,
    speed: Optional[float] = None,
    augmentation: Optional[float] = None,
    seed: SeedLike = None,
    telemetry: Optional[Any] = None,
    **engine_kwargs: Any,
) -> ScheduleResult:
    """Simulate ``scheduler`` on ``jobset`` (see module docstring).

    Parameters
    ----------
    scheduler:
        A :class:`~repro.core.base.Scheduler` instance, a Scheduler
        subclass (instantiated with its defaults), or an engine name
        from :data:`ENGINE_NAMES`.
    jobset:
        A :class:`~repro.dag.job.JobSet` (DAG engines) or
        :class:`~repro.speedup.model.SpeedupJobSet` (speedup engines).
        Omit it when passing ``stream=``.
    stream:
        A :class:`~repro.workloads.stream.StreamSpec` (from
        :meth:`WorkloadSpec.stream`) for a bounded-memory streaming run;
        only valid with the ``"flat"`` engine name and exclusive with
        ``jobset``.  The run returns a
        :class:`~repro.sim.stream_engine.StreamResult` (online metrics,
        no per-job arrays); streaming keyword arguments
        (``checkpoint_dir``, ``checkpoint_every``, ``resume``,
        ``quantiles``, ``utilization_window``, ...) forward to
        :func:`~repro.sim.stream_engine._run_stream`.  See
        docs/STREAMING.md.
    m, num_workers:
        Machine size; ``num_workers`` is an accepted alias, pass exactly
        one.
    speed, augmentation:
        Resource augmentation factor (default 1.0); ``augmentation`` is
        an accepted alias, pass exactly one.
    seed:
        Seed for randomized policies.  The deterministic speedup engines
        take no seed and reject a non-None one loudly rather than
        silently ignoring it.
    telemetry:
        Optional :class:`repro.obs.Telemetry`; when given, ``run.start``
        and ``run.done`` events are emitted around the simulation.
        Never alters the schedule.
    **engine_kwargs:
        Forwarded to the dispatch target (e.g. ``k=16`` for
        ``"work-stealing"``, ``trace=...``/``sampler=...`` for
        schedulers that accept them).

    Returns
    -------
    ScheduleResult
        Bit-identical to calling the underlying engine directly.
        (Streaming runs return a StreamResult instead.)
    """
    size = _resolve_size(m, num_workers)
    s = _resolve_speed(speed, augmentation)

    if stream is not None:
        return _run_streaming(
            scheduler,
            jobset,
            stream,
            size,
            s,
            seed,
            telemetry,
            engine_kwargs,
        )
    if jobset is None:
        raise SweepConfigError(
            "run() got no instance: pass a JobSet/FlatInstance as the "
            "second argument, or stream= a StreamSpec.\n"
            + _STREAM_COMBINATIONS
        )

    if isinstance(scheduler, type) and issubclass(scheduler, Scheduler):
        scheduler = scheduler()

    if isinstance(scheduler, Scheduler):
        label = scheduler.name
        engine = "scheduler"

        def dispatch() -> ScheduleResult:
            return scheduler.run(
                jobset, m=size, speed=s, seed=seed, **engine_kwargs
            )

    elif isinstance(scheduler, str):
        label = scheduler
        engine = scheduler
        if scheduler == "work-stealing":
            from repro.sim.engine import _run_work_stealing

            def dispatch() -> ScheduleResult:
                return _run_work_stealing(
                    jobset, m=size, speed=s, seed=seed, **engine_kwargs
                )

        elif scheduler == "flat":
            from repro.sim.flat_engine import _run_flat

            def dispatch() -> ScheduleResult:
                return _run_flat(
                    jobset, m=size, speed=s, seed=seed, **engine_kwargs
                )

        elif scheduler == "batch":
            from repro.sim.batch_engine import run_batch

            def dispatch() -> ScheduleResult:
                return run_batch(
                    [jobset],
                    m=size,
                    speed=s,
                    seeds=[seed],
                    **engine_kwargs,
                )[0]

        elif scheduler in ("speedup-fifo", "speedup-equi"):
            from repro.speedup.engine import (
                _run_speedup_equi,
                _run_speedup_fifo,
            )

            target = (
                _run_speedup_fifo
                if scheduler == "speedup-fifo"
                else _run_speedup_equi
            )
            if seed is not None:
                raise TypeError(
                    f"{scheduler!r} is deterministic and takes no seed; "
                    f"got seed={seed!r}"
                )
            if engine_kwargs:
                raise TypeError(
                    f"{scheduler!r} accepts no extra engine arguments; "
                    f"got {sorted(engine_kwargs)}"
                )

            def dispatch() -> ScheduleResult:
                return target(jobset, m=size, speed=s)

        else:
            raise ValueError(
                f"unknown engine name {scheduler!r}; "
                f"expected one of {ENGINE_NAMES} or a Scheduler"
            )
    else:
        raise TypeError(
            f"scheduler must be a Scheduler, a Scheduler subclass, or an "
            f"engine name string, got {type(scheduler).__name__}"
        )

    if telemetry is None:
        return dispatch()

    telemetry.emit(
        "run.start",
        scheduler=label,
        engine=engine,
        m=size,
        speed=s,
        seed=seed,
        n_jobs=_n_jobs(jobset),
    )
    if engine in ("flat", "batch"):
        # Surface configs that silently fall off the flat kernel onto
        # the ~8x-slower reference engine (the engine itself also emits
        # a one-time RuntimeWarning; this event records every run).
        from repro.sim.flat_engine import _slow_path_reasons

        reasons = _slow_path_reasons(
            engine_kwargs.get("victim_policy", "uniform"),
            bool(engine_kwargs.get("steal_half", False)),
            engine_kwargs.get("admission", "fifo"),
            engine_kwargs.get("trace"),
        )
        if reasons:
            telemetry.emit(
                "dispatch.slow_path",
                engine=engine,
                reasons=list(reasons),
            )
    t0 = time.perf_counter()
    result = dispatch()
    telemetry.emit(
        "run.done",
        scheduler=result.scheduler,
        engine=engine,
        m=size,
        speed=s,
        wall_s=round(time.perf_counter() - t0, 6),
        max_flow=result.max_flow,
        stats=result.stats.as_dict(),
    )
    return result


def _run_streaming(
    scheduler: Union[Scheduler, type, str],
    jobset: Any,
    stream: Any,
    size: int,
    s: float,
    seed: SeedLike,
    telemetry: Optional[Any],
    engine_kwargs: Dict[str, Any],
) -> Any:
    """Validate the ``stream=`` combination and dispatch to the engine.

    All rejections are :class:`~repro.errors.SweepConfigError` with the
    valid-combination table in the message -- a bounded-memory 10M-job
    run that dies on a bare ``TypeError`` hours in is the failure mode
    this guards against, so misconfiguration must be caught before any
    simulation starts.
    """
    from repro.sim.stream_engine import _run_stream
    from repro.workloads.stream import StreamSpec

    if jobset is not None:
        raise SweepConfigError(
            f"run() got both a materialized instance "
            f"({type(jobset).__name__}) and stream=: a run is either "
            f"materialized or streaming, never both.\n"
            + _STREAM_COMBINATIONS
        )
    if not isinstance(stream, StreamSpec):
        hint = (
            " (call .stream() on it to get a StreamSpec)"
            if hasattr(stream, "stream")
            else ""
        )
        raise SweepConfigError(
            f"stream= expects a StreamSpec, got "
            f"{type(stream).__name__}{hint}.\n" + _STREAM_COMBINATIONS
        )
    if not (isinstance(scheduler, str) and scheduler == "flat"):
        shown = (
            repr(scheduler)
            if isinstance(scheduler, str)
            else type(scheduler).__name__
        )
        raise SweepConfigError(
            f"streaming runs are only supported by the 'flat' engine "
            f"(got {shown}): the streaming kernel is the flat kernel "
            f"over a sliding window.\n" + _STREAM_COMBINATIONS
        )

    if telemetry is None:
        return _run_stream(
            stream, size, speed=s, seed=seed, **engine_kwargs
        )
    telemetry.emit(
        "run.start",
        scheduler="flat",
        engine="stream",
        m=size,
        speed=s,
        seed=seed,
        n_jobs=stream.n_jobs,
    )
    t0 = time.perf_counter()
    result = _run_stream(
        stream, size, speed=s, seed=seed, telemetry=telemetry, **engine_kwargs
    )
    telemetry.emit(
        "run.done",
        scheduler=result.scheduler,
        engine="stream",
        m=size,
        speed=s,
        wall_s=round(time.perf_counter() - t0, 6),
        max_flow=result.max_flow,
        stats=result.stats.as_dict(),
    )
    return result


# ----------------------------------------------------------------------
# The repro.sweep() facade (ISSUE 4)
# ----------------------------------------------------------------------


class _EngineScheduler(Scheduler):
    """Adapter presenting a named engine as a :class:`Scheduler`.

    Exists so :func:`sweep` can cross a parameter grid over an engine
    name exactly as it does over a scheduler class: the sweep's grid
    keyword arguments become engine keyword arguments (e.g. ``k=16``
    for ``"work-stealing"``).  Module-level and attribute-only, hence
    picklable across pool workers; its ``repr`` is content-stable so
    the cell cache can key on it.
    """

    def __init__(self, engine: str, **engine_kwargs: Any):
        if engine not in ENGINE_NAMES:
            raise SweepConfigError(
                f"unknown engine name {engine!r}; "
                f"expected one of {ENGINE_NAMES} or a Scheduler"
            )
        if engine not in ("work-stealing", "flat", "batch") and engine_kwargs:
            raise TypeError(
                f"{engine!r} accepts no extra engine arguments; "
                f"got {sorted(engine_kwargs)}"
            )
        self.engine = engine
        self.engine_kwargs = engine_kwargs

    @property
    def name(self) -> str:
        return self.engine

    @property
    def consumes_flat(self) -> bool:
        """Whether :meth:`run` can take a raw :class:`FlatInstance`.

        The sweep dispatch layer checks this to hand the flat kernel the
        attached CSR arrays directly (no ``to_jobset()`` round trip in
        pool workers).
        """
        return self.engine in ("flat", "batch")

    def run(
        self,
        jobset: Any,
        m: int,
        speed: float = 1.0,
        seed: SeedLike = None,
        trace: Optional[Any] = None,
    ) -> ScheduleResult:
        if self.engine in ("work-stealing", "flat", "batch"):
            if self.engine == "work-stealing":
                from repro.sim.engine import _run_work_stealing as target
            else:
                # A batch of one replicate has nothing to amortize: the
                # "batch" engine evaluates single cells on the flat
                # kernel (bit-identical); the sweep dispatch layer does
                # the actual cross-rep batching (see _grid_sweep).
                from repro.sim.flat_engine import _run_flat as target

            kwargs = dict(self.engine_kwargs)
            if trace is not None:
                kwargs["trace"] = trace
            return target(jobset, m=m, speed=speed, seed=seed, **kwargs)
        from repro.speedup.engine import _run_speedup_equi, _run_speedup_fifo

        target = (
            _run_speedup_fifo
            if self.engine == "speedup-fifo"
            else _run_speedup_equi
        )
        # The speedup engines are deterministic: the sweep's derived
        # cell seeds carry no information for them and are dropped.
        return target(jobset, m=m, speed=speed)

    def __repr__(self) -> str:
        opts = "".join(
            f", {k}={self.engine_kwargs[k]!r}"
            for k in sorted(self.engine_kwargs)
        )
        return f"_EngineScheduler({self.engine!r}{opts})"


class _InstanceFactory:
    """Per-cell factory cloning a prototype scheduler instance.

    ``sweep(WorkStealingScheduler(k=4, steals_per_tick=64), ...)`` must
    vary grid parameters while keeping the prototype's other
    configuration.  Each cell gets a shallow copy of the prototype with
    the cell's grid parameters assigned over it -- schedulers are
    stateless policy descriptions (see :class:`repro.core.base`), so a
    shallow copy is a faithful clone.  Unknown parameter names fail
    loudly: silently creating attributes would "sweep" nothing.

    Picklable (the prototype travels by value) and content-keyed: the
    ``repr`` folds in the prototype's full ``vars()``, so two factories
    over differently configured prototypes never share cache cells.
    """

    def __init__(self, prototype: Scheduler):
        self.prototype = prototype

    def __call__(self, **params: Any) -> Scheduler:
        sched = copy.copy(self.prototype)
        for key, value in params.items():
            if not hasattr(sched, key):
                raise SweepConfigError(
                    f"{type(sched).__name__} has no parameter {key!r}; "
                    f"grid keys must name attributes of the prototype "
                    f"scheduler"
                )
            setattr(sched, key, value)
        return sched

    def __repr__(self) -> str:
        state = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self.prototype).items())
        )
        return (
            f"_InstanceFactory({type(self.prototype).__qualname__}({state}))"
        )


def _as_factory(scheduler: Union[Scheduler, type, str, Callable]) -> Callable:
    """Normalize every accepted scheduler form into a cell factory."""
    if isinstance(scheduler, type):
        if not issubclass(scheduler, Scheduler):
            raise TypeError(
                f"scheduler class must subclass Scheduler, got "
                f"{scheduler.__name__}"
            )
        return scheduler
    if isinstance(scheduler, Scheduler):
        return _InstanceFactory(scheduler)
    if isinstance(scheduler, str):
        if scheduler not in ENGINE_NAMES:
            raise SweepConfigError(
                f"unknown engine name {scheduler!r}; "
                f"expected one of {ENGINE_NAMES} or a Scheduler"
            )
        import functools

        return functools.partial(_EngineScheduler, scheduler)
    if callable(scheduler):
        return scheduler
    raise TypeError(
        f"scheduler must be a Scheduler, a Scheduler subclass, an engine "
        f"name string, or a factory callable, got "
        f"{type(scheduler).__name__}"
    )


def sweep(
    scheduler: Union[Scheduler, type, str, Callable],
    grid: Dict[str, Sequence[Any]],
    workload: Callable[[int], Any],
    *,
    stream: Optional[Any] = None,
    m: Optional[int] = None,
    num_workers: Optional[int] = None,
    speed: Optional[float] = None,
    augmentation: Optional[float] = None,
    reps: int = 1,
    seed: int = 0,
    metrics: Sequence[str] = ("max_flow", "mean_flow"),
    max_workers: Optional[int] = None,
    cache: Any = None,
    resume: bool = False,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    telemetry: Optional[Any] = None,
    shard: Union[tuple, str, None] = None,
):
    """Run a fault-tolerant parameter-grid sweep (mirror of :func:`run`).

    ``repro.run`` simulates one instance; ``repro.sweep`` crosses a
    parameter grid over generated instances, on the supervised executor
    of :mod:`repro.experiments.parallel` (per-cell deadlines, bounded
    deterministic retries, pool respawn, incremental checkpointing into
    the content-addressed cache, guaranteed shared-memory cleanup).

    Parameters
    ----------
    scheduler:
        The same forms :func:`run` accepts, plus a factory callable:

        * a :class:`~repro.core.base.Scheduler` *subclass* -- called
          with one keyword argument per grid dimension;
        * a Scheduler *instance* -- used as a prototype: each cell gets
          a copy with the grid parameters assigned over it (they must
          name existing attributes);
        * an *engine name* (``"work-stealing"``, ``"flat"``,
          ``"batch"``, ``"speedup-fifo"``, ``"speedup-equi"``) -- grid
          parameters forward to the engine (the deterministic speedup
          engines accept none and ignore seeds).  ``"flat"`` and
          ``"batch"`` additionally run pool workers straight on the
          attached shared-memory CSR arrays, skipping the per-worker
          object-graph rebuild;
        * any other *callable* -- passed through unchanged, i.e. the
          raw :func:`~repro.experiments.sweep.grid_sweep` contract.
    grid:
        Parameter name -> values to sweep (full cross product).
    workload:
        Callable mapping a derived repetition seed to an instance; a
        :class:`~repro.workloads.WorkloadSpec` works directly and
        additionally unlocks the instance cache and the vectorized
        build path.
    stream:
        Not supported: sweeps materialize per-repetition instances.
        Passing a value raises :class:`~repro.errors.SweepConfigError`
        pointing at ``repro.run('flat', stream=...)``.
    m, num_workers:
        Machine size; aliases, pass exactly one.
    speed, augmentation:
        Resource augmentation factor (default 1.0); aliases, pass
        exactly one.
    reps, seed, metrics, max_workers, cache, resume, telemetry:
        Forwarded to :func:`~repro.experiments.sweep.grid_sweep`
        unchanged.
    cell_timeout, retries:
        Fault-tolerance knobs (see
        :func:`repro.experiments.parallel.parallel_map`): per-cell
        deadline in seconds and retry budget for crashed / hung cells.
        Defaults resolve from ``REPRO_CELL_TIMEOUT`` / ``REPRO_RETRIES``
        (the CLI's ``--cell-timeout`` / ``--retries``).
    shard:
        Run one shard of the grid for multi-host scale-out: ``(index,
        count)`` or ``"index/count"`` (identical after normalization;
        invalid values raise :class:`~repro.errors.SweepConfigError`).
        Shards partition the grid's cells disjointly and exhaustively,
        each writing into its own ``cache`` dir with a shard manifest;
        :func:`repro.merge_caches` combines them into one resumable
        cache, and a final ``resume=True`` sweep over it is
        bit-identical to an unsharded run.  Requires an explicit
        ``cache`` (or ``REPRO_CACHE``).  See
        :func:`repro.experiments.sweep.grid_sweep` and EXPERIMENTS.md.

    Returns
    -------
    SweepResult
        Cells in cross-product order (the shard's slice when ``shard=``
        is given); bit-identical to an undisturbed serial run even when
        workers crashed, hung, or were retried.
    """
    if stream is not None:
        raise SweepConfigError(
            "sweep() does not take stream=: a sweep crosses a grid over "
            "*materialized* per-repetition instances, while a streaming "
            "run is one bounded-memory simulation -- use "
            "repro.run('flat', stream=..., m=...) for that.\n"
            + _STREAM_COMBINATIONS
        )
    # Lazy import: repro.api must stay importable without pulling the
    # experiments stack (numpy-heavy) until a sweep actually runs.
    from repro.experiments.sweep import _grid_sweep

    size = _resolve_size(m, num_workers, who="sweep()")
    s = _resolve_speed(speed, augmentation)
    factory = _as_factory(scheduler)
    return _grid_sweep(
        factory,
        grid,
        workload,
        m=size,
        reps=reps,
        seed=seed,
        speed=s,
        metrics=metrics,
        max_workers=max_workers,
        cache=cache,
        resume=resume,
        telemetry=telemetry,
        cell_timeout=cell_timeout,
        retries=retries,
        shard=shard,
    )


# ----------------------------------------------------------------------
# The repro.search() / repro.ablate() facades (ISSUE 9)
# ----------------------------------------------------------------------


def search(
    scheduler: Union[Scheduler, type, str, Callable],
    space: Dict[str, Sequence[Any]],
    workload: Callable[[int], Any],
    *,
    budget: Optional[float] = None,
    objective: str = "max_flow",
    metrics: Optional[Sequence[str]] = None,
    m: Optional[int] = None,
    num_workers: Optional[int] = None,
    speed: Optional[float] = None,
    augmentation: Optional[float] = None,
    r0: int = 1,
    eta: int = 2,
    rounds: Optional[int] = None,
    reps: int = 1,
    seed: int = 0,
    refine: Optional[str] = None,
    refine_generations: int = 3,
    refine_population: Optional[int] = None,
    cache: Any = None,
    max_workers: Optional[int] = None,
    telemetry: Optional[Any] = None,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
):
    """Adaptively search a candidate space instead of sweeping it.

    The third member of the facade family: ``repro.run`` simulates one
    instance, ``repro.sweep`` pays for every grid point, ``repro.search``
    answers the *question* behind the grid while evaluating only the
    candidates that stay competitive.  Two modes, picked by ``budget``:

    * **optimize** (``budget=None``) -- deterministic successive halving
      over the full ``space`` (optionally polished by a ``refine="ga"``
      stage): round ``r`` evaluates the surviving candidates at
      ``r0 * eta**r`` repetitions and keeps the best ``1/eta`` fraction.
      Returns the incumbent as a
      :class:`~repro.experiments.search.SearchResult`.
    * **threshold** (``budget=<float>``) -- ``space`` must hold exactly
      one axis, sorted ascending; bisects it for the smallest value
      whose ``objective`` meets the budget, assuming the objective is
      non-increasing along the axis.  The axis may be a scheduler knob
      or the speed axis itself (``{"speed": [...]}`` /
      ``{"augmentation": [...]}``) -- the paper's minimum-epsilon
      question::

          repro.search(
              WorkStealingScheduler(k=16),
              {"speed": [1.0, 1.1, 1.25, 1.5, 2.0]},
              workload, m=16, budget=150.0, reps=3,
          )

        raises :class:`~repro.errors.SearchInfeasibleError` when even
        the largest candidate misses the budget.

    Accepts every scheduler form of :func:`run`/:func:`sweep` (instance
    prototype, subclass, engine name, raw factory) and the same keyword
    aliases (``num_workers``≡``m``, ``augmentation``≡``speed``).  Every
    candidate evaluation routes through the content-addressed cell
    cache with *global* cell identity, so search cells are byte-identical
    to exhaustive-sweep cells, refinement rounds re-hitting a coordinate
    are nearly free, and a rerun against the same ``cache`` directory is
    almost entirely cache hits.  Same seed, same pruning decisions, same
    incumbent -- bit-for-bit.
    """
    from repro.experiments.search import successive_halving, threshold_search

    size = _resolve_size(m, num_workers, who="search()")
    s = _resolve_speed(speed, augmentation)
    factory = _as_factory(scheduler)
    if budget is not None:
        if not isinstance(space, dict) or len(space) != 1:
            raise SweepConfigError(
                f"threshold search (budget=...) needs exactly one "
                f"candidate axis, got "
                f"{sorted(space) if isinstance(space, dict) else space!r}; "
                f"pass space={{param: sorted_values}}"
            )
        ((param, values),) = space.items()
        return threshold_search(
            factory,
            param,
            values,
            workload,
            m=size,
            budget=budget,
            objective=objective,
            metrics=metrics,
            reps=reps,
            seed=seed,
            speed=s,
            cache=cache,
            max_workers=max_workers,
            telemetry=telemetry,
            cell_timeout=cell_timeout,
            retries=retries,
        )
    if reps != 1:
        raise SweepConfigError(
            f"reps={reps} only applies to threshold mode (budget=...); "
            f"successive halving controls repetitions through r0/eta "
            f"(round r evaluates at r0 * eta**r reps)"
        )
    return successive_halving(
        factory,
        space,
        workload,
        m=size,
        objective=objective,
        metrics=metrics,
        r0=r0,
        eta=eta,
        rounds=rounds,
        seed=seed,
        speed=s,
        refine=refine,
        refine_generations=refine_generations,
        refine_population=refine_population,
        cache=cache,
        max_workers=max_workers,
        telemetry=telemetry,
        cell_timeout=cell_timeout,
        retries=retries,
    )


def ablate(
    scheduler: Union[Scheduler, type, str, Callable],
    baseline: Dict[str, Any],
    deltas: Dict[str, Dict[str, Any]],
    workload: Callable[[int], Any],
    *,
    objective: str = "max_flow",
    metrics: Optional[Sequence[str]] = None,
    m: Optional[int] = None,
    num_workers: Optional[int] = None,
    speed: Optional[float] = None,
    augmentation: Optional[float] = None,
    reps: int = 1,
    seed: int = 0,
    cache: Any = None,
    max_workers: Optional[int] = None,
    telemetry: Optional[Any] = None,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
):
    """Declarative ablation: baseline + named deltas -> ranked impact.

    Runs the baseline configuration and one variant per entry of
    ``deltas`` (each applied independently on top of the baseline) on
    the **same** instances -- identical repetition seeds, so every
    impact number is a paired comparison -- and returns an
    :class:`~repro.experiments.ablate.AblationReport` ranked by
    ``|impact on the objective|`` with ``summary()`` /
    ``to_markdown()`` / ``as_dict()`` renderings.

    Delta (and baseline) mappings address all knob layers: scheduler
    parameters (``{"k": 0}``), machine size (``m`` / ``num_workers``),
    speed (``speed`` / ``augmentation``), workload fields
    (``{"workload.qps": 1500}``), and the engine itself
    (``{"scheduler": "flat"}`` -- any scheduler form :func:`run`
    accepts).  See :mod:`repro.experiments.ablate` for the full
    vocabulary and an example.

    Accepts every scheduler form of :func:`run`/:func:`sweep`; all
    variants run through the content-addressed cell cache, so repeated
    reports are free.
    """
    from repro.experiments.ablate import ablate as _ablate

    size = _resolve_size(m, num_workers, who="ablate()")
    s = _resolve_speed(speed, augmentation)
    factory = _as_factory(scheduler)

    def normalize(who: str, overrides: Any) -> Any:
        # Engine deltas: the core harness wants a factory callable; the
        # facade accepts the full scheduler vocabulary there too.
        if isinstance(overrides, dict) and "scheduler" in overrides:
            overrides = dict(overrides)
            overrides["scheduler"] = _as_factory(overrides["scheduler"])
        return overrides

    baseline = normalize("baseline", baseline)
    if isinstance(deltas, dict):
        deltas = {
            name: normalize(name, overrides)
            for name, overrides in deltas.items()
        }
    return _ablate(
        factory,
        baseline,
        deltas,
        workload,
        m=size,
        objective=objective,
        metrics=metrics,
        reps=reps,
        seed=seed,
        speed=s,
        cache=cache,
        max_workers=max_workers,
        telemetry=telemetry,
        cell_timeout=cell_timeout,
        retries=retries,
    )
