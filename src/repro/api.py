"""The :func:`repro.run` facade: one entrypoint for every engine.

Before ISSUE 3 the package exposed four divergent ways to simulate a
schedule -- :meth:`repro.core.base.Scheduler.run`,
``run_work_stealing``, ``run_speedup_fifo`` and ``run_speedup_equi`` --
with inconsistently named knobs (``m`` vs ``num_workers``, ``speed`` vs
``augmentation``).  :func:`run` folds them behind a single call:

* pass a :class:`~repro.core.base.Scheduler` *instance* (or a Scheduler
  subclass, instantiated with defaults) to dispatch through its
  polymorphic ``run``;
* pass an *engine name string* to reach an engine directly:
  ``"work-stealing"`` (the tick engine; extra keyword arguments such as
  ``k``, ``steals_per_tick``, ``trace`` forward to it) or
  ``"speedup-fifo"`` / ``"speedup-equi"`` (the speedup-curves engines,
  which take a :class:`~repro.speedup.model.SpeedupJobSet`).

The old module-level entrypoints survive as thin shims that emit one
:class:`DeprecationWarning` per process and forward unchanged -- results
stay bit-identical, and tier-1 CI runs with ``-W
error::DeprecationWarning`` to keep internal code off them.

The facade is also where observability attaches: pass
``telemetry=Telemetry(...)`` and the run emits ``run.start`` /
``run.done`` events (scheduler label, machine size, wall time, and the
full :class:`~repro.sim.result.SimulationStats` snapshot).  With
``telemetry=None`` nothing is recorded and the schedule is
bit-identical -- the engines never see the telemetry object at all.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Union

from repro.core.base import Scheduler
from repro.sim.result import ScheduleResult
from repro.sim.rng import SeedLike

#: Engine-name strings accepted by :func:`run`.
ENGINE_NAMES = ("work-stealing", "speedup-fifo", "speedup-equi")


def _resolve_size(m: Optional[int], num_workers: Optional[int]) -> int:
    """Normalize the machine-size aliases (``m`` wins the docs)."""
    if m is not None and num_workers is not None and m != num_workers:
        raise TypeError(
            f"got both m={m} and num_workers={num_workers}; "
            f"they are aliases -- pass exactly one"
        )
    size = m if m is not None else num_workers
    if size is None:
        raise TypeError("run() requires a machine size: pass m=...")
    return int(size)


def _resolve_speed(
    speed: Optional[float], augmentation: Optional[float]
) -> float:
    """Normalize the speed aliases (``speed`` is canonical)."""
    if speed is not None and augmentation is not None and speed != augmentation:
        raise TypeError(
            f"got both speed={speed} and augmentation={augmentation}; "
            f"they are aliases -- pass exactly one"
        )
    if speed is not None:
        return float(speed)
    if augmentation is not None:
        return float(augmentation)
    return 1.0


def run(
    scheduler: Union[Scheduler, type, str],
    jobset: Any,
    *,
    m: Optional[int] = None,
    num_workers: Optional[int] = None,
    speed: Optional[float] = None,
    augmentation: Optional[float] = None,
    seed: SeedLike = None,
    telemetry: Optional[Any] = None,
    **engine_kwargs: Any,
) -> ScheduleResult:
    """Simulate ``scheduler`` on ``jobset`` (see module docstring).

    Parameters
    ----------
    scheduler:
        A :class:`~repro.core.base.Scheduler` instance, a Scheduler
        subclass (instantiated with its defaults), or an engine name
        from :data:`ENGINE_NAMES`.
    jobset:
        A :class:`~repro.dag.job.JobSet` (DAG engines) or
        :class:`~repro.speedup.model.SpeedupJobSet` (speedup engines).
    m, num_workers:
        Machine size; ``num_workers`` is an accepted alias, pass exactly
        one.
    speed, augmentation:
        Resource augmentation factor (default 1.0); ``augmentation`` is
        an accepted alias, pass exactly one.
    seed:
        Seed for randomized policies.  The deterministic speedup engines
        take no seed and reject a non-None one loudly rather than
        silently ignoring it.
    telemetry:
        Optional :class:`repro.obs.Telemetry`; when given, ``run.start``
        and ``run.done`` events are emitted around the simulation.
        Never alters the schedule.
    **engine_kwargs:
        Forwarded to the dispatch target (e.g. ``k=16`` for
        ``"work-stealing"``, ``trace=...``/``sampler=...`` for
        schedulers that accept them).

    Returns
    -------
    ScheduleResult
        Bit-identical to calling the underlying engine directly.
    """
    size = _resolve_size(m, num_workers)
    s = _resolve_speed(speed, augmentation)

    if isinstance(scheduler, type) and issubclass(scheduler, Scheduler):
        scheduler = scheduler()

    if isinstance(scheduler, Scheduler):
        label = scheduler.name
        engine = "scheduler"

        def dispatch() -> ScheduleResult:
            return scheduler.run(
                jobset, m=size, speed=s, seed=seed, **engine_kwargs
            )

    elif isinstance(scheduler, str):
        label = scheduler
        engine = scheduler
        if scheduler == "work-stealing":
            from repro.sim.engine import _run_work_stealing

            def dispatch() -> ScheduleResult:
                return _run_work_stealing(
                    jobset, m=size, speed=s, seed=seed, **engine_kwargs
                )

        elif scheduler in ("speedup-fifo", "speedup-equi"):
            from repro.speedup.engine import (
                _run_speedup_equi,
                _run_speedup_fifo,
            )

            target = (
                _run_speedup_fifo
                if scheduler == "speedup-fifo"
                else _run_speedup_equi
            )
            if seed is not None:
                raise TypeError(
                    f"{scheduler!r} is deterministic and takes no seed; "
                    f"got seed={seed!r}"
                )
            if engine_kwargs:
                raise TypeError(
                    f"{scheduler!r} accepts no extra engine arguments; "
                    f"got {sorted(engine_kwargs)}"
                )

            def dispatch() -> ScheduleResult:
                return target(jobset, m=size, speed=s)

        else:
            raise ValueError(
                f"unknown engine name {scheduler!r}; "
                f"expected one of {ENGINE_NAMES} or a Scheduler"
            )
    else:
        raise TypeError(
            f"scheduler must be a Scheduler, a Scheduler subclass, or an "
            f"engine name string, got {type(scheduler).__name__}"
        )

    if telemetry is None:
        return dispatch()

    telemetry.emit(
        "run.start",
        scheduler=label,
        engine=engine,
        m=size,
        speed=s,
        seed=seed,
        n_jobs=len(jobset),
    )
    t0 = time.perf_counter()
    result = dispatch()
    telemetry.emit(
        "run.done",
        scheduler=result.scheduler,
        engine=engine,
        m=size,
        speed=s,
        wall_s=round(time.perf_counter() - t0, 6),
        max_flow=result.max_flow,
        stats=result.stats.as_dict(),
    )
    return result
