"""`repro.testing`: deterministic chaos tooling for the test suite.

The only resident today is :mod:`repro.testing.faults`, the env-driven
fault-injection harness behind ``tests/experiments/test_faults.py`` and
the CI chaos job.  Nothing in here runs unless ``REPRO_FAULTS`` is set,
so importing the package (or shipping it) costs production runs
nothing.
"""

from repro.testing.faults import (
    FAULTS_DIR_ENV,
    FAULTS_ENV,
    FaultSpec,
    clear_fault_state,
    faults_active,
    maybe_inject,
    parse_faults,
)

__all__ = [
    "FAULTS_DIR_ENV",
    "FAULTS_ENV",
    "FaultSpec",
    "clear_fault_state",
    "faults_active",
    "maybe_inject",
    "parse_faults",
]
