"""Deterministic fault injection for the supervised experiment executor.

The robustness layer of :mod:`repro.experiments.parallel` claims to
survive crashed workers, hung cells, and failed cache writes while
keeping sweep results bit-identical.  Claims like that rot unless they
are exercised, so this module plants *deterministic* faults at the
pipeline's four stages -- instance **publish**, task **dispatch**, the
**cell** body, and the cache **store** -- driven entirely by two
environment variables (hence visible to pool workers, which inherit the
parent's environment):

``REPRO_FAULTS``
    A semicolon-separated list of fault clauses::

        action:stage[:key=value]...

    * ``action`` -- ``kill`` (``os._exit(17)``, simulating a worker
      segfault/OOM-kill), ``hang`` (sleep ``seconds``, simulating a
      livelock; pair with a cell deadline), or ``raise`` (raise
      :class:`repro.errors.FaultInjected`, a retryable in-cell error).
    * ``stage`` -- ``publish``, ``dispatch``, ``cell``, ``cache`` or
      ``checkpoint`` (where the hook fires; see the call sites in
      :mod:`repro.experiments` and :mod:`repro.sim.stream_engine`).
    * options -- ``index=N`` restricts the clause to the task with
      global task index ``N`` (stages that carry one); ``times=K``
      injects at most ``K`` times (default 1); ``seconds=S`` sets the
      hang duration (default 30).

    Example -- kill the worker running task 2, once, and hang task 4
    for 30 s, once::

        REPRO_FAULTS="kill:cell:index=2;hang:cell:index=4:seconds=30"

``REPRO_FAULTS_DIR``
    A directory for cross-process claim markers.  ``times=K`` must hold
    across *all* processes of a sweep (the killed worker's replacement
    must not be killed again, or no retry budget would ever suffice),
    so each injection atomically claims a marker file
    (``O_CREAT | O_EXCL``) before acting.  Without a directory, claims
    fall back to per-process counters -- fine for single-process
    (serial) runs, not for pools.

``kill`` and ``hang`` are meant for *worker* stages (``dispatch``,
``cell``); planting them at parent-side stages (``publish``, ``cache``)
would kill or stall the sweep parent itself, which is occasionally
useful (resume tests) but never what the retry layer can recover from.

Determinism: clauses select by coordinates (task index), never by
wall-clock or pid, and the claim protocol makes each clause fire exactly
``times`` times per fault directory.  A disturbed sweep therefore takes
one reproducible detour and must still produce the exact floats of an
undisturbed run -- which is precisely what the chaos suite asserts.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultInjected, ReproError

__all__ = [
    "FAULTS_DIR_ENV",
    "FAULTS_ENV",
    "FaultSpec",
    "clear_fault_state",
    "faults_active",
    "maybe_inject",
    "parse_faults",
]

#: Environment variable holding the fault clauses.
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable naming the cross-process claim directory.
FAULTS_DIR_ENV = "REPRO_FAULTS_DIR"

#: Stages the experiment pipeline exposes hooks at.  ``checkpoint``
#: fires in the streaming engine right after a checkpoint file is
#: durably written (``index`` = checkpoint sequence number), so chaos
#: tests can kill a run at a known save point and assert that
#: ``resume=True`` reproduces the undisturbed result float-identically.
STAGES = ("publish", "dispatch", "cell", "cache", "checkpoint")

#: Actions a clause may request.
ACTIONS = ("kill", "hang", "raise")

#: Exit code used by ``kill`` so a post-mortem can tell an injected
#: death from a genuine crash.
KILL_EXIT_CODE = 17


@dataclass(frozen=True)
class FaultSpec:
    """One parsed clause of ``REPRO_FAULTS``."""

    action: str
    stage: str
    index: Optional[int] = None  #: restrict to this global task index
    times: int = 1  #: fire at most this many times (across processes)
    seconds: float = 30.0  #: hang duration for ``action="hang"``


def parse_faults(text: str) -> List[FaultSpec]:
    """Parse a ``REPRO_FAULTS`` value into :class:`FaultSpec` clauses.

    Raises :class:`repro.errors.ReproError` on malformed input: a chaos
    run with a typo'd spec must fail loudly, not silently run
    undisturbed and "pass".
    """
    specs: List[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) < 2:
            raise ReproError(
                f"malformed fault clause {clause!r}: want action:stage[:k=v]"
            )
        action, stage = parts[0].strip(), parts[1].strip()
        if action not in ACTIONS:
            raise ReproError(
                f"unknown fault action {action!r} (expected one of {ACTIONS})"
            )
        if stage not in STAGES:
            raise ReproError(
                f"unknown fault stage {stage!r} (expected one of {STAGES})"
            )
        kwargs: Dict[str, object] = {}
        for opt in parts[2:]:
            key, sep, value = opt.partition("=")
            key = key.strip()
            if not sep or key not in ("index", "times", "seconds"):
                raise ReproError(
                    f"bad fault option {opt!r} in clause {clause!r} "
                    f"(expected index=/times=/seconds=)"
                )
            try:
                kwargs[key] = (
                    float(value) if key == "seconds" else int(value)
                )
            except ValueError:
                raise ReproError(
                    f"non-numeric value in fault option {opt!r}"
                ) from None
        specs.append(FaultSpec(action=action, stage=stage, **kwargs))
    return specs


def faults_active() -> bool:
    """Whether ``REPRO_FAULTS`` requests any injection (cheap check)."""
    return bool(os.environ.get(FAULTS_ENV, "").strip())


#: Parsed-spec cache keyed by the raw env string, so the hot-path hook
#: re-parses only when the environment actually changes.
_PARSE_CACHE: Tuple[Optional[str], List[FaultSpec]] = (None, [])

#: Per-process claim counts, used when no claim directory is set.
_LOCAL_CLAIMS: Dict[int, int] = {}


def _specs_from_env() -> List[FaultSpec]:
    global _PARSE_CACHE
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if _PARSE_CACHE[0] != raw:
        _PARSE_CACHE = (raw, parse_faults(raw) if raw else [])
    return _PARSE_CACHE[1]


def _claim(clause_idx: int, spec: FaultSpec) -> bool:
    """Atomically claim one of the clause's ``times`` injection slots.

    With a claim directory the slots are marker files created with
    ``O_CREAT | O_EXCL`` -- exactly one process wins each, no matter how
    many workers race.  Without one, slots are per-process counters.
    """
    directory = os.environ.get(FAULTS_DIR_ENV, "").strip()
    if not directory:
        used = _LOCAL_CLAIMS.get(clause_idx, 0)
        if used >= spec.times:
            return False
        _LOCAL_CLAIMS[clause_idx] = used + 1
        return True
    os.makedirs(directory, exist_ok=True)
    for slot in range(spec.times):
        marker = os.path.join(directory, f"fault-{clause_idx}-{slot}.claim")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.write(fd, f"pid={os.getpid()}\n".encode())
        os.close(fd)
        return True
    return False


def clear_fault_state() -> None:
    """Reset claims: per-process counters, parse cache, and markers.

    Tests call this between scenarios so clauses re-arm; the marker
    directory itself is usually a fresh ``tmp_path`` anyway.
    """
    global _PARSE_CACHE
    _LOCAL_CLAIMS.clear()
    _PARSE_CACHE = (None, [])
    directory = os.environ.get(FAULTS_DIR_ENV, "").strip()
    if directory and os.path.isdir(directory):
        for name in os.listdir(directory):
            if name.startswith("fault-") and name.endswith(".claim"):
                try:
                    os.unlink(os.path.join(directory, name))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass


def maybe_inject(stage: str, index: Optional[int] = None) -> None:
    """Fire any armed fault clause matching ``stage`` (and ``index``).

    Called from the pipeline's injection points.  The no-fault fast
    path is a single environment lookup, so production sweeps pay
    nothing.  Actions: ``kill`` exits the process immediately with
    :data:`KILL_EXIT_CODE`; ``hang`` sleeps ``spec.seconds`` then
    returns (the cell still completes if nothing kills it first);
    ``raise`` raises :class:`~repro.errors.FaultInjected`.
    """
    if not faults_active():
        return
    for clause_idx, spec in enumerate(_specs_from_env()):
        if spec.stage != stage:
            continue
        if spec.index is not None and spec.index != index:
            continue
        if not _claim(clause_idx, spec):
            continue
        if spec.action == "kill":
            # os._exit skips finally/atexit on purpose: a SIGKILLed or
            # segfaulted worker does not unwind either.
            os._exit(KILL_EXIT_CODE)
        elif spec.action == "hang":
            time.sleep(spec.seconds)
        else:  # "raise"
            raise FaultInjected(stage, f"clause {clause_idx} index={index}")
