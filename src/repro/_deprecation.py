"""Deprecation plumbing for the pre-:func:`repro.run` entrypoints.

ISSUE 3 folded the four divergent entrypoints (``Scheduler.run``,
``run_work_stealing``, ``run_speedup_fifo``, ``run_speedup_equi``)
behind the single :func:`repro.run` facade.  The module-level engine
functions remain importable as thin shims that forward to their private
implementations, but each warns -- once per process, not once per call,
so a sweep over thousands of cells stays readable -- that new code
should go through the facade.

Tier-1 CI runs with ``-W error::DeprecationWarning``: internal code must
never route through a shim.
"""

from __future__ import annotations

import warnings

#: Shim names that have already warned this process.  Tests reset this
#: to assert the exactly-once behavior.
_WARNED: set = set()


def warn_once(name: str, replacement: str) -> None:
    """Emit one :class:`DeprecationWarning` per process for ``name``.

    ``stacklevel=3`` points the warning at the shim's *caller* (user
    code), skipping both this helper and the shim frame.
    """
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; call {replacement} instead. "
        f"Results are bit-identical.",
        DeprecationWarning,
        stacklevel=3,
    )
