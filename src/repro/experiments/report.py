"""ASCII rendering of experiment outputs, paper-style.

The paper's figures are bar/line charts; the harness prints the same
data as aligned text tables (one row per x-value, one column per series)
plus crude unicode bar strips for the histograms, so results are
reviewable in a terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    value_format: str = "{:>12.3f}",
    x_format: str = "{:>8g}",
) -> str:
    """Render ``series`` (name -> y-values aligned with x_values) as a table.

    Example output::

        Figure 2(a): Bing workload -- max flow time (ms) vs QPS
        QPS          opt-lb  steal-16-first   admit-first
        800           6.861           9.158        11.213
        ...
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} values for "
                f"{len(x_values)} x-values"
            )
    width = max(12, *(len(n) + 2 for n in names))
    header = f"{x_label:<10}" + "".join(f"{n:>{width}}" for n in names)
    lines = [title, header, "-" * len(header)]
    for i, x in enumerate(x_values):
        row = x_format.format(x).ljust(10)
        for name in names:
            row += value_format.format(series[name][i]).rjust(width)
        lines.append(row)
    return "\n".join(lines)


def render_histogram(
    title: str,
    edges: np.ndarray,
    probabilities: np.ndarray,
    max_bar: int = 40,
    max_rows: int = 26,
) -> str:
    """Render a probability histogram as labeled unicode bars.

    Mirrors the Figure 3 panels: x = work bins (ms), y = probability.
    Rows beyond ``max_rows`` are pooled into a final ``>=`` bucket so
    long tails stay readable.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.float64)
    if probabilities.size != edges.size - 1:
        raise ValueError(
            f"{probabilities.size} probabilities need {probabilities.size + 1} "
            f"edges, got {edges.size}"
        )
    rows: List[str] = [title]
    peak = probabilities.max() if probabilities.size else 1.0
    n_shown = min(max_rows, probabilities.size)
    pooled = probabilities[n_shown:].sum() if n_shown < probabilities.size else 0.0
    for i in range(n_shown):
        frac = probabilities[i] / peak if peak > 0 else 0.0
        bar = "#" * max(0, round(frac * max_bar))
        rows.append(
            f"{edges[i]:6.0f}-{edges[i+1]:<6.0f} {probabilities[i]:7.4f} {bar}"
        )
    if pooled > 0:
        rows.append(f">={edges[n_shown]:<11.0f} {pooled:7.4f} (pooled tail)")
    return "\n".join(rows)


def render_checks(title: str, checks: Sequence) -> str:
    """Render a list of :class:`repro.theory.validate.BoundCheck` results."""
    lines = [title]
    lines.extend(str(c) for c in checks)
    n_pass = sum(1 for c in checks if c.passed)
    lines.append(f"-- {n_pass}/{len(checks)} checks passed")
    return "\n".join(lines)


def render_chart(
    title: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    log_y: bool = False,
) -> str:
    """Render series as an ASCII scatter/line chart (one symbol per series).

    A terminal-friendly companion to :func:`render_series` for eyeballing
    *shape* (crossings, knees, divergence); the table remains the source
    of exact numbers.  With ``log_y`` the y-axis is log-scaled, which the
    theorem-envelope figures need (bounds dwarf measurements).
    """
    if height < 3:
        raise ValueError(f"chart height must be >= 3, got {height}")
    names = list(series)
    if not names or not x_values:
        return f"{title}\n(no data)"
    symbols = "*o+x#@%&"
    values = [v for name in names for v in series[name]]
    if log_y:
        if any(v <= 0 for v in values):
            raise ValueError("log_y requires strictly positive values")
        transform = math.log10
    else:
        transform = float
    lo = min(transform(v) for v in values)
    hi = max(transform(v) for v in values)
    span = (hi - lo) or 1.0

    width = len(x_values)
    grid = [[" "] * width for _ in range(height)]
    for si, name in enumerate(names):
        sym = symbols[si % len(symbols)]
        for xi, v in enumerate(series[name]):
            row = round((transform(v) - lo) / span * (height - 1))
            cell = grid[height - 1 - row][xi]
            # Overlapping points from different series render as '?'.
            grid[height - 1 - row][xi] = sym if cell in (" ", sym) else "?"

    axis = "log10" if log_y else "linear"
    lines = [f"{title}  [y: {axis}]"]
    for r, row in enumerate(grid):
        y_val = hi - (hi - lo) * r / (height - 1)
        label = f"{10 ** y_val:9.3g}" if log_y else f"{y_val:9.3g}"
        lines.append(f"{label} |" + "  ".join(row))
    lines.append(" " * 10 + "+" + "-" * (3 * width - 2))
    x_row = " " * 11 + "".join(f"{x:<3g}"[:3] for x in x_values)
    lines.append(x_row)
    lines.append(
        "legend: " + "  ".join(f"{symbols[i % len(symbols)]}={n}" for i, n in enumerate(names))
    )
    return "\n".join(lines)
