"""Process-pool execution of embarrassingly parallel experiment cells.

Every experiment sweep in this package decomposes into independent cells
-- one (workload, QPS, repetition) triple, or one (grid point,
repetition) pair -- whose seeds derive from their *coordinates* via
:func:`repro.sim.rng.derive_seed`, never from execution order.  That
discipline makes cell fan-out safe: running cells across a process pool
produces bit-identical per-cell results to running them serially, in any
order, and ``tests/experiments/test_parallel.py`` asserts it.

Worker-count resolution (first match wins):

1. an explicit ``max_workers`` argument;
2. the ``REPRO_JOBS`` environment variable (also settable via the CLI's
   ``--jobs`` flag);
3. ``os.cpu_count()``.

``max_workers <= 1`` -- or any failure to stand up or use the pool
(sandboxed platforms without process support, unpicklable callables such
as lambda factories) -- degrades gracefully to the plain serial loop,
which is always semantically equivalent.  Losing parallelism that was
implicitly requested is worth knowing about, so the fallback emits a
one-time :class:`RuntimeWarning` naming the callable.

Zero-copy dispatch
------------------

Shipping a whole :class:`~repro.dag.job.JobSet` object graph to each
worker (the pre-ISSUE-2 design) pays pickling cost proportional to the
instance's node count *per task*.  :class:`SharedInstance` instead
publishes the instance's flat CSR arrays (:mod:`repro.dag.flat`) into a
``multiprocessing.shared_memory`` block once; tasks then carry only a
tiny layout dict, and each worker attaches the block and rebuilds the
object view once, caching it for every subsequent task that references
the same block (:func:`attach_jobset`).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.dag.flat import FlatInstance, pack_into, to_jobset, unpack_from
from repro.dag.job import JobSet

T = TypeVar("T")
R = TypeVar("R")

#: Callables already warned about (by identity token), so a sweep with
#: hundreds of cells warns once, not per call.
_FALLBACK_WARNED: set = set()


def default_workers() -> int:
    """Worker-process count: ``REPRO_JOBS`` env override, else CPU count.

    A malformed or non-positive ``REPRO_JOBS`` falls back to the CPU
    count rather than erroring: an experiment run should never die on a
    stale environment variable.
    """
    env = os.environ.get("REPRO_JOBS")
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value >= 1:
            return value
    return os.cpu_count() or 1


def _warn_serial_fallback(fn: Callable, exc: BaseException) -> None:
    """One-time warning that a pool attempt degraded to the serial loop.

    The silent version of this fallback cost users real time: a lambda
    factory quietly serialized a sweep that looked parallel.  The
    warning names the callable and the triggering error so the fix
    (module-level function) is obvious; results are unaffected.
    """
    token = (
        getattr(fn, "__module__", "?"),
        getattr(fn, "__qualname__", repr(fn)),
    )
    if token in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(token)
    warnings.warn(
        f"parallel_map: process pool unusable for {fn!r} "
        f"({type(exc).__name__}: {exc}); falling back to serial "
        f"execution. Results are identical but nothing runs in "
        f"parallel -- use a module-level (picklable) callable to "
        f"restore pool execution.",
        RuntimeWarning,
        stacklevel=3,
    )


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = None,
    chunksize: int = 1,
    telemetry: Optional[Any] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, using a process pool when it pays off.

    Results are returned in input order.  ``fn`` must be a pure function
    of its argument (every cell task in this package is: the cell seed
    travels inside the argument), so the parallel and serial paths are
    interchangeable and the fallback can simply re-run serially.

    Serial execution is used when ``max_workers`` resolves to 1, when
    there are fewer than two items, or when the pool cannot be used at
    all (no OS support, unpicklable ``fn``/items -- e.g. lambda
    factories); the last case emits a one-time :class:`RuntimeWarning`
    naming the callable.  Exceptions raised by ``fn`` itself always
    propagate, re-raised from the serial loop if the pool attempt was
    the one that surfaced them ambiguously.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, optional) records how
    the batch was actually dispatched -- ``dispatch.serial``,
    ``dispatch.pool``, or ``dispatch.fallback`` with the triggering
    error -- which is how a sweep that silently lost its parallelism
    shows up in a telemetry summary.
    """
    work: Sequence[T] = list(items)
    workers = default_workers() if max_workers is None else int(max_workers)
    if workers <= 1 or len(work) <= 1:
        if telemetry is not None:
            telemetry.emit("dispatch.serial", n_tasks=len(work))
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if telemetry is not None:
                telemetry.emit(
                    "dispatch.pool",
                    n_tasks=len(work),
                    workers=workers,
                    chunksize=chunksize,
                )
            return list(pool.map(fn, work, chunksize=chunksize))
    except (PicklingError, AttributeError, TypeError, ImportError,
            BrokenProcessPool, OSError, NotImplementedError) as exc:
        # Pool machinery failed (not necessarily fn itself: pickling
        # errors surface here too).  The serial loop is semantically
        # identical and re-raises any genuine error from fn directly.
        _warn_serial_fallback(fn, exc)
        if telemetry is not None:
            telemetry.emit(
                "dispatch.fallback",
                n_tasks=len(work),
                error=f"{type(exc).__name__}: {exc}",
            )
        return [fn(item) for item in work]


# ----------------------------------------------------------------------
# Shared-memory instance transport
# ----------------------------------------------------------------------

try:  # pragma: no cover - stdlib since 3.8; guarded for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def shared_memory_available() -> bool:
    """Whether this platform can publish instances via shared memory."""
    return _shared_memory is not None


#: Jobsets rebuilt from attached shared-memory blocks, keyed by block
#: name.  Lives at module level so a pool worker pays the attach +
#: rebuild cost once per instance, not once per task.
_ATTACH_CACHE: Dict[str, Tuple[Any, JobSet]] = {}

#: Instances published by THIS process (the sweep parent), keyed by
#: block name.  The serial fallback path resolves against it directly,
#: avoiding a same-process re-attach.
_PUBLISHED_LOCAL: Dict[str, JobSet] = {}

#: Attach-cache bound: a sweep references one block per repetition, so
#: a handful is plenty; the bound keeps long-lived workers from pinning
#: every instance they ever saw.
_ATTACH_CACHE_LIMIT = 8


class SharedInstance:
    """A :class:`FlatInstance` published in a shared-memory block.

    Created by the sweep parent.  ``handle`` is the tiny picklable
    payload tasks carry; :func:`attach_jobset` turns it back into a
    (cached) :class:`JobSet` inside any process.  The parent must keep
    the object alive until every task referencing it has finished, then
    :meth:`close` it (also unlinks the block).
    """

    def __init__(self, flat: FlatInstance, jobset: Optional[JobSet] = None):
        if _shared_memory is None:  # pragma: no cover - exotic builds
            raise NotImplementedError("shared memory is unavailable")
        self._shm = _shared_memory.SharedMemory(
            create=True, size=max(1, flat.nbytes)
        )
        try:
            meta = pack_into(flat, self._shm.buf)
            meta["shm_name"] = self._shm.name
            self.handle: Dict[str, Any] = meta
            # Parent-side shortcut for the serial path: reuse the
            # already materialized object view instead of re-attaching
            # in-process.
            _PUBLISHED_LOCAL[self._shm.name] = (
                jobset if jobset is not None else to_jobset(flat)
            )
        except BaseException:
            # A failed publish must not leak the freshly created block
            # (it would otherwise pin /dev/shm until interpreter exit).
            self.close()
            raise

    @property
    def jobset(self) -> JobSet:
        """The parent-side object view of the published instance."""
        return _PUBLISHED_LOCAL[self._shm.name]

    def close(self) -> None:
        """Release and unlink the block (idempotent)."""
        _PUBLISHED_LOCAL.pop(self._shm.name, None)
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedInstance":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _evict_attach_cache() -> None:
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_LIMIT:
        name, (shm, _) = next(iter(_ATTACH_CACHE.items()))
        del _ATTACH_CACHE[name]
        try:
            shm.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


def attach_jobset(handle: Dict[str, Any]) -> JobSet:
    """Resolve a :attr:`SharedInstance.handle` into a :class:`JobSet`.

    Zero-copy on the wire: only the handle dict crosses the process
    boundary; the arrays are read directly out of the shared block.  The
    rebuilt object view is cached per process, so repeated tasks over
    the same instance (every cell of a sweep repetition) share one
    reconstruction.
    """
    name = handle["shm_name"]
    local = _PUBLISHED_LOCAL.get(name)
    if local is not None:  # serial path inside the publishing process
        return local
    cached = _ATTACH_CACHE.get(name)
    if cached is not None:
        return cached[1]
    shm = _shared_memory.SharedMemory(name=name)
    # Workers only borrow the block; unregister it from the resource
    # tracker so worker exit does not try to destroy (or warn about)
    # a segment the parent still owns.
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    flat = unpack_from(shm.buf, handle)
    jobset = to_jobset(flat)
    _ATTACH_CACHE[name] = (shm, jobset)
    _evict_attach_cache()
    return jobset
