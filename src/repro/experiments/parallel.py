"""Process-pool execution of embarrassingly parallel experiment cells.

Every experiment sweep in this package decomposes into independent cells
-- one (workload, QPS, repetition) triple, or one (grid point,
repetition) pair -- whose seeds derive from their *coordinates* via
:func:`repro.sim.rng.derive_seed`, never from execution order.  That
discipline makes cell fan-out safe: running cells across a process pool
produces bit-identical per-cell results to running them serially, in any
order, and ``tests/experiments/test_parallel.py`` asserts it.

Worker-count resolution (first match wins):

1. an explicit ``max_workers`` argument;
2. the ``REPRO_JOBS`` environment variable (also settable via the CLI's
   ``--jobs`` flag);
3. ``os.cpu_count()``.

``max_workers <= 1`` -- or any failure to stand up or use the pool
(sandboxed platforms without process support, unpicklable callables such
as lambda factories) -- degrades gracefully to the plain serial loop,
which is always semantically equivalent.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker-process count: ``REPRO_JOBS`` env override, else CPU count.

    A malformed or non-positive ``REPRO_JOBS`` falls back to the CPU
    count rather than erroring: an experiment run should never die on a
    stale environment variable.
    """
    env = os.environ.get("REPRO_JOBS")
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value >= 1:
            return value
    return os.cpu_count() or 1


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, using a process pool when it pays off.

    Results are returned in input order.  ``fn`` must be a pure function
    of its argument (every cell task in this package is: the cell seed
    travels inside the argument), so the parallel and serial paths are
    interchangeable and the fallback can simply re-run serially.

    Serial execution is used when ``max_workers`` resolves to 1, when
    there are fewer than two items, or when the pool cannot be used at
    all (no OS support, unpicklable ``fn``/items -- e.g. lambda
    factories); exceptions raised by ``fn`` itself always propagate,
    re-raised from the serial loop if the pool attempt was the one that
    surfaced them ambiguously.
    """
    work: Sequence[T] = list(items)
    workers = default_workers() if max_workers is None else int(max_workers)
    if workers <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, work, chunksize=chunksize))
    except (PicklingError, AttributeError, TypeError, ImportError,
            BrokenProcessPool, OSError, NotImplementedError):
        # Pool machinery failed (not necessarily fn itself: pickling
        # errors surface here too).  The serial loop is semantically
        # identical and re-raises any genuine error from fn directly.
        return [fn(item) for item in work]
