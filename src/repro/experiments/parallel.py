"""Supervised process-pool execution of parallel experiment cells.

Every experiment sweep in this package decomposes into independent cells
-- one (workload, QPS, repetition) triple, or one (grid point,
repetition) pair -- whose seeds derive from their *coordinates* via
:func:`repro.sim.rng.derive_seed`, never from execution order.  That
discipline makes cell fan-out safe: running cells across a process pool
produces bit-identical per-cell results to running them serially, in any
order, and ``tests/experiments/test_parallel.py`` asserts it.  It also
makes cells safely *re-runnable*: a cell that died or timed out can be
executed again from the same task tuple and must produce the same
floats, which is the foundation the fault tolerance below stands on.

Worker-count resolution (first match wins):

1. an explicit ``max_workers`` argument;
2. the ``REPRO_JOBS`` environment variable (also settable via the CLI's
   ``--jobs`` flag);
3. ``os.cpu_count()``.

``max_workers <= 1`` -- or any failure to stand up or use the pool
(sandboxed platforms without process support, unpicklable callables such
as lambda factories) -- degrades gracefully to the plain serial loop,
which is always semantically equivalent.  Losing parallelism that was
implicitly requested is worth knowing about, so the fallback emits a
one-time :class:`RuntimeWarning` naming the callable (and a
``dispatch.fallback`` telemetry event).

Fault tolerance (ISSUE 4)
-------------------------

Paper-scale sweeps (100k jobs per point) run for hours; pre-ISSUE-4, a
single crashed or hung pool worker aborted the whole run and could leak
``multiprocessing.shared_memory`` blocks.  :func:`parallel_map` now
*supervises* its pool:

* **per-cell deadlines** -- ``cell_timeout`` (argument >
  ``REPRO_CELL_TIMEOUT`` env > the CLI's ``--cell-timeout``): a cell
  running past its deadline is declared hung, the pool is torn down
  (hung workers are terminated), and the cell is retried;
* **bounded retry with deterministic exponential backoff** --
  ``retries`` (argument > ``REPRO_RETRIES`` > default 2): a crashed,
  hung, or :class:`~repro.errors.FaultInjected` cell re-runs from its
  coordinate-derived task tuple, so the recovered result is
  bit-identical; the backoff schedule is a pure function
  (:func:`backoff_schedule`) with no jitter, so recovery behavior is as
  reproducible as the results;
* **pool respawn** -- a :class:`BrokenProcessPool` (worker killed by
  the OS, segfault, injected ``os._exit``) recycles the executor and
  resubmits every incomplete cell.  Cells that already completed keep
  their results; completed work is never lost;
* **incremental checkpointing** -- the ``on_result`` callback fires in
  the parent as each cell completes (in completion order), which is how
  sweeps flush finished cells to the content-addressed cache *before*
  the batch ends: a killed sweep resumes losslessly with ``--resume``;
* **guaranteed shared-memory cleanup** -- every published block lands
  in a process-wide unlink registry reclaimed by ``finally`` blocks and
  an ``atexit`` sweep (:func:`reclaim_shared_memory`), so even a parent
  dying mid-sweep leaves ``/dev/shm`` clean.

Permanent failures surface as typed exceptions
(:class:`~repro.errors.CellTimeoutError`,
:class:`~repro.errors.CellCrashedError`) once the retry budget is
exhausted.  Every recovery action emits a structured telemetry event
(``fault.timeout``, ``fault.crash``, ``fault.cell_error``,
``fault.retry``, ``fault.giveup``, ``pool.respawn``, ``shm.reclaim``),
so ``summarize_events`` / ``audit_events`` can report fault counts per
run and ``tools/bench_gate.py --telemetry`` can refuse bench runs that
needed unrecovered faults.  The deterministic chaos harness in
:mod:`repro.testing.faults` exists to prove all of the above.

Zero-copy dispatch
------------------

Shipping a whole :class:`~repro.dag.job.JobSet` object graph to each
worker (the pre-ISSUE-2 design) pays pickling cost proportional to the
instance's node count *per task*.  :class:`SharedInstance` instead
publishes the instance's flat CSR arrays (:mod:`repro.dag.flat`) into a
``multiprocessing.shared_memory`` block once; tasks then carry only a
tiny layout dict, and each worker attaches the block and rebuilds the
object view once, caching it for every subsequent task that references
the same block (:func:`attach_jobset`).
"""

from __future__ import annotations

import atexit
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pickle import PicklingError
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.dag.flat import (
    FlatInstance,
    flatten_jobset,
    pack_into,
    to_jobset,
    unpack_from,
)
from repro.dag.job import JobSet
from repro.errors import CellCrashedError, CellTimeoutError, FaultInjected

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable for the per-cell deadline in seconds (the CLI's
#: ``--cell-timeout`` flag).  Unset / non-positive means no deadline.
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"

#: Environment variable for the per-cell retry budget (the CLI's
#: ``--retries`` flag).
RETRIES_ENV = "REPRO_RETRIES"

#: Environment variable overriding the base backoff delay in seconds
#: (tests set it tiny so chaos runs stay fast).
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Default retry budget per cell: one crash plus one unlucky rerun.
DEFAULT_RETRIES = 2

#: Default base backoff delay (doubles per attempt) and its cap.
DEFAULT_BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Exceptions from the cell body that the supervisor retries.  Worker
#: death (``BrokenProcessPool``) and deadline expiry are always
#: retried; in-cell exceptions are, by default, treated as deterministic
#: user errors and propagated immediately -- except these.
RETRYABLE_EXCEPTIONS: Tuple[type, ...] = (FaultInjected,)

#: Pool-machinery failures that degrade the whole batch to the serial
#: loop (which reproduces any genuine error from ``fn`` directly).
_FALLBACK_EXCEPTIONS = (
    PicklingError,
    AttributeError,
    TypeError,
    ImportError,
    OSError,
    NotImplementedError,
)

#: Callables already warned about (by identity token), so a sweep with
#: hundreds of cells warns once, not per call.
_FALLBACK_WARNED: set = set()


def default_workers() -> int:
    """Worker-process count: ``REPRO_JOBS`` env override, else CPU count.

    The fallback is ``os.cpu_count()`` -- the machine's *logical* CPU
    count, SMT threads included, not the physical core count and not
    the process affinity mask (``BENCH_engine.json``'s host block
    records all three side by side).  On an SMT host that oversubscribes
    the physical cores roughly 2x, which is usually right for these
    simulation workloads; set ``REPRO_JOBS`` explicitly to pin a
    different width.  A malformed or non-positive ``REPRO_JOBS`` falls
    back to the CPU count rather than erroring: an experiment run
    should never die on a stale environment variable.
    """
    env = os.environ.get("REPRO_JOBS")
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value >= 1:
            return value
    return os.cpu_count() or 1


def default_cell_timeout() -> Optional[float]:
    """Per-cell deadline from ``REPRO_CELL_TIMEOUT``, or None.

    Malformed or non-positive values mean "no deadline" -- same
    philosophy as :func:`default_workers`: stale environment must never
    kill a run.
    """
    env = os.environ.get(CELL_TIMEOUT_ENV)
    if env is None:
        return None
    try:
        value = float(env)
    except ValueError:
        return None
    return value if value > 0 else None


def default_retries() -> int:
    """Retry budget from ``REPRO_RETRIES``, else :data:`DEFAULT_RETRIES`."""
    env = os.environ.get(RETRIES_ENV)
    if env is not None:
        try:
            value = int(env)
        except ValueError:
            value = -1
        if value >= 0:
            return value
    return DEFAULT_RETRIES


def default_backoff_base() -> float:
    """Base backoff delay from ``REPRO_RETRY_BACKOFF``, else the default."""
    env = os.environ.get(BACKOFF_ENV)
    if env is not None:
        try:
            value = float(env)
        except ValueError:
            value = -1.0
        if value >= 0:
            return value
    return DEFAULT_BACKOFF_BASE


def backoff_schedule(
    retries: int,
    base: Optional[float] = None,
    cap: float = BACKOFF_CAP,
) -> List[float]:
    """The deterministic delay (seconds) before each retry attempt.

    Pure exponential doubling from ``base``, capped at ``cap``, with
    **no jitter**: two identical chaos runs must take identical
    recovery detours, or "bit-identical under faults" would be
    unfalsifiable.  ``schedule[k]`` is the pause before retry ``k + 1``.
    """
    if base is None:
        base = default_backoff_base()
    return [min(cap, base * (2.0 ** k)) for k in range(max(0, retries))]


def _backoff_delay(attempt: int, base: Optional[float] = None) -> float:
    """Delay before retry number ``attempt`` (1-based)."""
    if base is None:
        base = default_backoff_base()
    return min(BACKOFF_CAP, base * (2.0 ** max(0, attempt - 1)))


def _warn_serial_fallback(fn: Callable, exc: BaseException) -> None:
    """One-time warning that a pool attempt degraded to the serial loop.

    The silent version of this fallback cost users real time: a lambda
    factory quietly serialized a sweep that looked parallel.  The
    warning names the callable and the triggering error so the fix
    (module-level function) is obvious; results are unaffected.
    """
    token = (
        getattr(fn, "__module__", "?"),
        getattr(fn, "__qualname__", repr(fn)),
    )
    if token in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(token)
    warnings.warn(
        f"parallel_map: process pool unusable for {fn!r} "
        f"({type(exc).__name__}: {exc}); falling back to serial "
        f"execution. Results are identical but nothing runs in "
        f"parallel -- use a module-level (picklable) callable to "
        f"restore pool execution.",
        RuntimeWarning,
        stacklevel=4,
    )


class _SerialFallback(Exception):
    """Internal signal: abandon the pool and re-run the batch serially."""

    def __init__(self, cause: BaseException):
        self.cause = cause


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard, hung workers included.

    ``shutdown()`` alone would join workers that will never exit (a hung
    cell sleeps forever), so the supervisor terminates the worker
    processes first.  Reaching into ``_processes`` is unavoidable --
    the executor API offers no kill switch -- and is confined here.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for proc in processes:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    for proc in processes:
        try:
            proc.join(timeout=5)
        except Exception:  # pragma: no cover - best effort
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - best effort
        pass


def _serial_run(
    fn: Callable[[T], R],
    work: Sequence[T],
    retries: int,
    backoff_base: float,
    telemetry: Optional[Any],
    on_result: Optional[Callable[[int, R], None]],
) -> List[R]:
    """The serial loop, with the same retry contract for retryable
    in-cell faults (deadlines cannot be enforced without a pool)."""
    out: List[R] = []
    for idx, item in enumerate(work):
        attempt = 0
        while True:
            try:
                value = fn(item)
                break
            except RETRYABLE_EXCEPTIONS as exc:
                attempt += 1
                if telemetry is not None:
                    telemetry.emit(
                        "fault.cell_error",
                        index=idx,
                        attempt=attempt,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                if attempt > retries:
                    if telemetry is not None:
                        telemetry.emit(
                            "fault.giveup", index=idx, attempts=attempt,
                            kind="cell_error",
                        )
                    raise CellCrashedError(
                        f"cell {idx} failed after {attempt} attempt(s): {exc}",
                        attempts=attempt,
                    ) from exc
                delay = _backoff_delay(attempt, backoff_base)
                if telemetry is not None:
                    telemetry.emit(
                        "fault.retry", index=idx, attempt=attempt,
                        delay_s=delay,
                    )
                time.sleep(delay)
        out.append(value)
        if on_result is not None:
            on_result(idx, value)
    return out


def _supervised_pool_run(
    fn: Callable[[T], R],
    work: Sequence[T],
    workers: int,
    cell_timeout: Optional[float],
    retries: int,
    backoff_base: float,
    telemetry: Optional[Any],
    on_result: Optional[Callable[[int, R], None]],
) -> List[R]:
    """Run the batch on a supervised pool (see module docstring).

    Raises :class:`_SerialFallback` when the pool machinery itself is
    unusable, :class:`CellTimeoutError` / :class:`CellCrashedError` when
    a cell exhausts its retry budget, and re-raises genuine (non-
    retryable) exceptions from ``fn`` directly.
    """
    n = len(work)
    sentinel = object()
    results: List[Any] = [sentinel] * n
    attempts = [0] * n
    pending: Set[int] = set(range(n))
    generation = 0

    def emit(event: str, **fields: Any) -> None:
        if telemetry is not None:
            telemetry.emit(event, **fields)

    def charge(idx: int, kind: str, error: Optional[str] = None) -> None:
        """Record one burned execution of cell ``idx``; raise on budget
        exhaustion, otherwise announce the coming retry."""
        attempts[idx] += 1
        fields: Dict[str, Any] = {"index": idx, "attempt": attempts[idx]}
        if error is not None:
            fields["error"] = error
        if kind == "timeout":
            fields["timeout_s"] = cell_timeout
        emit(f"fault.{kind}", **fields)
        if attempts[idx] > retries:
            emit("fault.giveup", index=idx, attempts=attempts[idx], kind=kind)
            if kind == "timeout":
                raise CellTimeoutError(
                    f"cell {idx} exceeded its {cell_timeout}s deadline on "
                    f"all {attempts[idx]} attempt(s) "
                    f"(retries={retries}; raise --retries/--cell-timeout "
                    f"or run serially)",
                    timeout=cell_timeout or 0.0,
                    attempts=attempts[idx],
                )
            raise CellCrashedError(
                f"cell {idx} failed on all {attempts[idx]} attempt(s) "
                f"({error or kind}); retries={retries}",
                attempts=attempts[idx],
            )
        emit(
            "fault.retry",
            index=idx,
            attempt=attempts[idx],
            delay_s=_backoff_delay(attempts[idx], backoff_base),
        )

    while pending:
        if generation > 0:
            # Deterministic exponential pause before standing the pool
            # back up: the most-burned pending cell sets the delay.
            hottest = max(attempts[i] for i in pending)
            time.sleep(_backoff_delay(max(1, hottest), backoff_base))
        pool = ProcessPoolExecutor(max_workers=workers)
        futures: Dict[Future, int] = {}
        try:
            for i in sorted(pending):
                futures[pool.submit(fn, work[i])] = i
        except BaseException as exc:
            _kill_pool(pool)
            if isinstance(exc, _FALLBACK_EXCEPTIONS):
                raise _SerialFallback(exc) from exc
            raise
        recycle = False
        started: Dict[Future, float] = {}
        try:
            not_done: Set[Future] = set(futures)
            while not_done and not recycle:
                now = time.monotonic()
                for f in not_done:
                    if f not in started and f.running():
                        started[f] = now
                timeout = None
                if cell_timeout is not None:
                    deadlines = [
                        started[f] + cell_timeout
                        for f in not_done
                        if f in started
                    ]
                    timeout = (
                        max(0.0, min(deadlines) - now)
                        if deadlines
                        else cell_timeout
                    )
                done, _ = wait(
                    not_done, timeout=timeout, return_when=FIRST_COMPLETED
                )
                for f in done:
                    not_done.discard(f)
                    idx = futures[f]
                    try:
                        value = f.result()
                    except BrokenProcessPool as exc:
                        # A worker died.  Every incomplete cell in this
                        # pool is charged one attempt -- the executor
                        # cannot say which cell the dead worker was
                        # running, and a pool that keeps dying must
                        # eventually exhaust someone's budget rather
                        # than respawn forever.
                        for j in sorted(pending):
                            if results[j] is sentinel:
                                charge(
                                    j,
                                    "crash",
                                    error=f"{type(exc).__name__}: {exc}",
                                )
                        recycle = True
                        break
                    except RETRYABLE_EXCEPTIONS as exc:
                        charge(
                            idx,
                            "cell_error",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                        # The pool itself is healthy: resubmit in place.
                        time.sleep(
                            _backoff_delay(attempts[idx], backoff_base)
                        )
                        nf = pool.submit(fn, work[idx])
                        futures[nf] = idx
                        not_done.add(nf)
                        continue
                    except _FALLBACK_EXCEPTIONS as exc:
                        # Pool machinery failure (unpicklable fn or
                        # payload surfaces here) -- or a genuine error
                        # from fn of the same type.  The serial loop
                        # distinguishes them for us: it re-raises real
                        # fn errors and simply works otherwise.
                        raise _SerialFallback(exc) from exc
                    results[idx] = value
                    pending.discard(idx)
                    if on_result is not None:
                        on_result(idx, value)
                if recycle or not not_done:
                    break
                if cell_timeout is None or done:
                    continue
                # Nothing completed within the deadline window: charge
                # every running cell past its deadline and recycle.
                now = time.monotonic()
                expired = [
                    f
                    for f in not_done
                    if f in started
                    and f.running()
                    and now - started[f] >= cell_timeout
                ]
                if not expired:
                    continue
                for f in expired:
                    charge(futures[f], "timeout")
                recycle = True
        except _SerialFallback:
            _kill_pool(pool)
            raise
        except BaseException:
            # Budget exhaustion or an unexpected error: never leave a
            # (possibly hung) pool behind.
            _kill_pool(pool)
            raise
        if recycle:
            generation += 1
            _kill_pool(pool)
            emit(
                "pool.respawn",
                generation=generation,
                n_resubmitted=len(pending),
                workers=workers,
            )
        else:
            pool.shutdown(wait=True)
    return results  # type: ignore[return-value]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = None,
    chunksize: int = 1,
    telemetry: Optional[Any] = None,
    *,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` on a supervised process pool.

    Results are returned in input order.  ``fn`` must be a pure function
    of its argument (every cell task in this package is: the cell seed
    travels inside the argument), so the parallel and serial paths are
    interchangeable, the fallback can simply re-run serially, and a
    crashed or timed-out task can be retried bit-identically.

    Serial execution is used when ``max_workers`` resolves to 1, when
    there are fewer than two items, or when the pool cannot be used at
    all (no OS support, unpicklable ``fn``/items -- e.g. lambda
    factories); the last case emits a one-time :class:`RuntimeWarning`
    naming the callable.  Genuine exceptions raised by ``fn`` itself
    always propagate, re-raised from the serial loop if the pool attempt
    was the one that surfaced them ambiguously.

    Parameters
    ----------
    cell_timeout:
        Per-task deadline in seconds (default: ``REPRO_CELL_TIMEOUT``,
        else none).  A task running past it is declared hung; the pool
        is torn down (terminating the hung worker) and the task retried.
        Unenforceable on the serial path.
    retries:
        How many times a crashed / hung / retryable-faulted task may be
        re-run (default: ``REPRO_RETRIES``, else 2).  Exhaustion raises
        :class:`~repro.errors.CellTimeoutError` or
        :class:`~repro.errors.CellCrashedError`.
    on_result:
        ``on_result(index, result)``, called in the parent as each task
        completes (completion order, not input order).  Sweeps use it to
        checkpoint finished cells into the cache immediately.  Must be
        idempotent per index: the serial fallback re-runs the whole
        batch and fires it again.
    chunksize:
        Accepted for backward compatibility; the supervised executor
        tracks every task individually, so batching no longer applies.
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  Records how the batch
        was dispatched (``dispatch.serial`` / ``dispatch.pool`` /
        ``dispatch.fallback``) and every recovery action
        (``fault.timeout``, ``fault.crash``, ``fault.cell_error``,
        ``fault.retry``, ``fault.giveup``, ``pool.respawn``).
    """
    work: Sequence[T] = list(items)
    workers = default_workers() if max_workers is None else int(max_workers)
    if cell_timeout is None:
        cell_timeout = default_cell_timeout()
    if retries is None:
        retries = default_retries()
    backoff_base = default_backoff_base()
    if workers <= 1 or len(work) <= 1:
        if telemetry is not None:
            telemetry.emit("dispatch.serial", n_tasks=len(work))
        return _serial_run(
            fn, work, retries, backoff_base, telemetry, on_result
        )
    try:
        if telemetry is not None:
            telemetry.emit(
                "dispatch.pool",
                n_tasks=len(work),
                workers=workers,
                cell_timeout=cell_timeout,
                retries=retries,
            )
        return _supervised_pool_run(
            fn,
            work,
            workers,
            cell_timeout,
            retries,
            backoff_base,
            telemetry,
            on_result,
        )
    except _SerialFallback as fallback:
        # Pool machinery failed (not necessarily fn itself: pickling
        # errors surface identically).  The serial loop is semantically
        # equivalent and re-raises any genuine error from fn directly.
        exc = fallback.cause
        _warn_serial_fallback(fn, exc)
        if telemetry is not None:
            telemetry.emit(
                "dispatch.fallback",
                n_tasks=len(work),
                error=f"{type(exc).__name__}: {exc}",
            )
        return _serial_run(
            fn, work, retries, backoff_base, telemetry, on_result
        )


# ----------------------------------------------------------------------
# Shared-memory instance transport
# ----------------------------------------------------------------------

try:  # pragma: no cover - stdlib since 3.8; guarded for exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None


def shared_memory_available() -> bool:
    """Whether this platform can publish instances via shared memory."""
    return _shared_memory is not None


#: Jobsets rebuilt from attached shared-memory blocks, keyed by block
#: name.  Lives at module level so a pool worker pays the attach +
#: rebuild cost once per instance, not once per task.
_ATTACH_CACHE: Dict[str, Tuple[Any, JobSet]] = {}

#: Flat views of attached shared-memory blocks, keyed by block name.
#: Sibling of ``_ATTACH_CACHE`` for flat-consuming schedulers
#: (``engine="flat"``): the cached :class:`FlatInstance` wraps views
#: straight into the shared block -- no object graph is ever built --
#: and carries the kernel's derived-table cache across tasks.
_FLAT_ATTACH_CACHE: Dict[str, Tuple[Any, FlatInstance]] = {}

#: Instances published by THIS process (the sweep parent), keyed by
#: block name.  The serial fallback path resolves against it directly,
#: avoiding a same-process re-attach.
_PUBLISHED_LOCAL: Dict[str, JobSet] = {}

#: Attach-cache bound: a sweep references one block per repetition, so
#: a handful is plenty; the bound keeps long-lived workers from pinning
#: every instance they ever saw.
_ATTACH_CACHE_LIMIT = 8

#: Unlink registry: every shared-memory block THIS process has created
#: and not yet unlinked, keyed by block name.  ``SharedInstance``
#: registers on publish and unregisters on close; whatever remains is
#: reclaimed by :func:`reclaim_shared_memory` -- called from sweep
#: ``finally`` blocks and, as a last line, at interpreter exit -- so a
#: sweep killed mid-flight (KeyboardInterrupt in the parent, worker
#: death before attach) cannot pin ``/dev/shm`` segments.
_UNLINK_REGISTRY: Dict[str, Any] = {}


def reclaim_shared_memory(telemetry: Optional[Any] = None) -> List[str]:
    """Close and unlink every still-registered shared-memory block.

    Idempotent and safe to call at any time: blocks already closed by
    their owners are no longer registered.  Returns the names of the
    blocks actually reclaimed and emits one ``shm.reclaim`` telemetry
    event when any were (to the given sink, else the process-default
    one) -- a reclaim firing means some code path dropped a block, and
    that should be visible.
    """
    reclaimed: List[str] = []
    for name in list(_UNLINK_REGISTRY):
        shm = _UNLINK_REGISTRY.pop(name, None)
        if shm is None:
            continue
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        except Exception:  # pragma: no cover - best-effort cleanup
            pass
        _PUBLISHED_LOCAL.pop(name, None)
        reclaimed.append(name)
    if reclaimed:
        sink = telemetry
        if sink is None:
            try:
                from repro.obs.telemetry import default_telemetry

                sink = default_telemetry()
            except Exception:  # pragma: no cover - interpreter teardown
                sink = None
        if sink is not None:
            try:
                sink.emit("shm.reclaim", blocks=reclaimed)
            except Exception:  # pragma: no cover - closed sink at exit
                pass
    return reclaimed


atexit.register(reclaim_shared_memory)


class SharedInstance:
    """A :class:`FlatInstance` published in a shared-memory block.

    Created by the sweep parent.  ``handle`` is the tiny picklable
    payload tasks carry; :func:`attach_jobset` turns it back into a
    (cached) :class:`JobSet` inside any process.  The parent must keep
    the object alive until every task referencing it has finished, then
    :meth:`close` it (also unlinks the block).  Every created block is
    additionally tracked in the module's unlink registry, so
    :func:`reclaim_shared_memory` sweeps up anything a crashed parent
    left behind.
    """

    def __init__(self, flat: FlatInstance, jobset: Optional[JobSet] = None):
        if _shared_memory is None:  # pragma: no cover - exotic builds
            raise NotImplementedError("shared memory is unavailable")
        self._shm = _shared_memory.SharedMemory(
            create=True, size=max(1, flat.nbytes)
        )
        # Register *before* packing: if packing dies, the reclaim sweep
        # still knows about the block.
        _UNLINK_REGISTRY[self._shm.name] = self._shm
        try:
            from repro.testing.faults import maybe_inject

            maybe_inject("publish")
            meta = pack_into(flat, self._shm.buf)
            meta["shm_name"] = self._shm.name
            self.handle: Dict[str, Any] = meta
            # Parent-side shortcut for the serial path: reuse the
            # already materialized object view instead of re-attaching
            # in-process.
            _PUBLISHED_LOCAL[self._shm.name] = (
                jobset if jobset is not None else to_jobset(flat)
            )
        except BaseException:
            # A failed publish must not leak the freshly created block
            # (it would otherwise pin /dev/shm until interpreter exit).
            self.close()
            raise

    @property
    def jobset(self) -> JobSet:
        """The parent-side object view of the published instance."""
        return _PUBLISHED_LOCAL[self._shm.name]

    def close(self) -> None:
        """Release and unlink the block (idempotent)."""
        _PUBLISHED_LOCAL.pop(self._shm.name, None)
        _UNLINK_REGISTRY.pop(self._shm.name, None)
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedInstance":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _evict_attach_cache() -> None:
    for cache in (_ATTACH_CACHE, _FLAT_ATTACH_CACHE):
        while len(cache) > _ATTACH_CACHE_LIMIT:
            name, (shm, _) = next(iter(cache.items()))
            del cache[name]
            try:
                shm.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass


def attach_jobset(handle: Dict[str, Any]) -> JobSet:
    """Resolve a :attr:`SharedInstance.handle` into a :class:`JobSet`.

    Zero-copy on the wire: only the handle dict crosses the process
    boundary; the arrays are read directly out of the shared block.  The
    rebuilt object view is cached per process, so repeated tasks over
    the same instance (every cell of a sweep repetition) share one
    reconstruction.
    """
    name = handle["shm_name"]
    local = _PUBLISHED_LOCAL.get(name)
    if local is not None:  # serial path inside the publishing process
        return local
    cached = _ATTACH_CACHE.get(name)
    if cached is not None:
        return cached[1]
    shm = _borrow_shared_block(name)
    flat = unpack_from(shm.buf, handle)
    jobset = to_jobset(flat)
    _ATTACH_CACHE[name] = (shm, jobset)
    _evict_attach_cache()
    return jobset


def _borrow_shared_block(name: str):
    """Attach a parent-owned shared block without claiming ownership.

    Workers only borrow the block; unregister it from the resource
    tracker so worker exit does not try to destroy (or warn about) a
    segment the parent still owns.
    """
    shm = _shared_memory.SharedMemory(name=name)
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return shm


def attach_flat(handle: Dict[str, Any]) -> FlatInstance:
    """Resolve a :attr:`SharedInstance.handle` into a :class:`FlatInstance`.

    The flat sibling of :func:`attach_jobset`, for schedulers that
    consume CSR state directly (``engine="flat"``): the returned
    instance's arrays are views straight into the shared block, so a
    pool worker never rebuilds the per-job object graph at all.  Cached
    per process like the jobset view, which also keeps the flat
    kernel's derived tables warm across every task over the same
    instance.
    """
    name = handle["shm_name"]
    local = _PUBLISHED_LOCAL.get(name)
    if local is not None:
        # Serial path inside the publishing process: the published
        # jobset carries its flat view (flatten_jobset caches it), so
        # this is a dict lookup, not a re-flatten.
        return flatten_jobset(local)
    cached = _FLAT_ATTACH_CACHE.get(name)
    if cached is not None:
        return cached[1]
    shm = _borrow_shared_block(name)
    flat = unpack_from(shm.buf, handle)
    _FLAT_ATTACH_CACHE[name] = (shm, flat)
    _evict_attach_cache()
    return flat
