"""Adaptive search over scheduler/workload knobs (ISSUE 9).

The paper's headline results are *threshold* questions -- the minimum
speed augmentation ``1 + eps`` at which steal-k-first's max flow time
meets an ``O(1/eps)``-style budget -- but an exhaustive
:func:`repro.sweep` answers them by paying for every grid point at full
repetition count.  This module answers the same questions adaptively:

* :func:`successive_halving` -- evaluate *all* candidates cheaply (few
  repetitions), keep the best ``1/eta`` fraction, multiply the
  repetition count by ``eta``, repeat.  An optional GA refinement stage
  (``refine="ga"``, in the style of psim's ``run/ga.py``) then breeds
  new grid coordinates from the survivors.
* :func:`threshold_search` -- bisect a sorted 1-D candidate axis for the
  smallest value whose objective meets a budget, raising
  :class:`~repro.errors.SearchInfeasibleError` when none does.

Both drivers route **every** candidate evaluation through the grid-sweep
executor's ``cells=`` subset mode (:func:`_grid_sweep`), which preserves
*global* cell identity: run seeds and content-addressed cache keys
derive from a candidate's position in the full cross product, never
from which round (or which search) evaluated it.  Three properties fall
out of that single design decision:

1. every evaluated cell is byte-identical to the cell an exhaustive
   ``repro.sweep`` of the same grid would produce;
2. a round re-hitting a coordinate already evaluated at a lower
   repetition count pays only for the *new* repetitions (the rest are
   cell-cache hits -- round 2 of a halving run is >= ``1/eta`` cached);
3. the whole search is resumable: rerun with the same cache directory
   and every previously computed (cell, rep) task is served from disk.

Determinism: pruning sorts candidates by ``(score, global index)`` and
the GA draws from :func:`numpy.random.default_rng` seeded via
:func:`repro.sim.rng.derive_seed`, so the same seed reproduces the same
pruning decisions, the same incumbent trajectory, and the same final
answer -- bit-for-bit, across processes (``tools/search_smoke.py``
pins this in CI).

Facade: :func:`repro.search` wraps both drivers with the same
scheduler-form acceptance and alias normalization as :func:`repro.run`.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dag.job import JobSet
from repro.errors import SearchInfeasibleError, SweepConfigError
from repro.experiments.sweep import METRICS, SweepCell, _grid_sweep
from repro.sim.rng import derive_seed

__all__ = [
    "SearchRound",
    "SearchResult",
    "successive_halving",
    "threshold_search",
]


@dataclass(frozen=True)
class SearchRound:
    """One evaluated round of an adaptive search.

    ``stage`` is ``"halving"``, ``"ga"`` or ``"bisect"``; ``survivors``
    holds the *global* cross-product indices still alive after the
    round's pruning (for a bisection probe: the remaining candidate
    span).  ``n_cold`` / ``n_cached`` count (cell, repetition) tasks,
    exactly as :class:`~repro.experiments.sweep.SweepResult` does.
    """

    round: int
    stage: str
    reps: int
    n_candidates: int
    n_cold: int
    n_cached: int
    best_params: Dict[str, Any]
    best_value: float
    survivors: Tuple[int, ...]


@dataclass
class SearchResult:
    """Outcome of an adaptive search, with a paper-style rendering.

    ``best`` is the incumbent cell (parameters + metric means at its
    final repetition count); ``best_index`` its global cross-product
    index.  ``trajectory`` lists the incumbent objective value after
    each round -- two runs with the same seed must produce identical
    trajectories (the CI smoke gate compares them across processes).

    For :func:`threshold_search`, ``budget`` holds the constraint and
    ``feasible`` is True (an infeasible search *raises* instead of
    returning).
    """

    mode: str
    objective: str
    param_names: List[str]
    n_cells: int
    best: SweepCell
    best_index: int
    rounds: List[SearchRound] = field(default_factory=list)
    n_evaluations: int = 0
    n_cold: int = 0
    n_cached: int = 0
    seed: int = 0
    wall_s: float = 0.0
    budget: Optional[float] = None
    feasible: Optional[bool] = None

    @property
    def trajectory(self) -> List[float]:
        """Incumbent objective value after each round."""
        return [r.best_value for r in self.rounds]

    @property
    def cold_fraction(self) -> float:
        """Fraction of (cell, rep) tasks computed fresh (vs cache)."""
        if self.n_evaluations == 0:
            return 0.0
        return self.n_cold / self.n_evaluations

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the CLI's ``--json`` output)."""
        return {
            "mode": self.mode,
            "objective": self.objective,
            "param_names": list(self.param_names),
            "n_cells": self.n_cells,
            "best": {
                "params": dict(self.best.params),
                "metrics": dict(self.best.metrics),
            },
            "best_index": self.best_index,
            "rounds": [
                {
                    "round": r.round,
                    "stage": r.stage,
                    "reps": r.reps,
                    "n_candidates": r.n_candidates,
                    "n_cold": r.n_cold,
                    "n_cached": r.n_cached,
                    "best_params": dict(r.best_params),
                    "best_value": r.best_value,
                    "survivors": list(r.survivors),
                }
                for r in self.rounds
            ],
            "trajectory": self.trajectory,
            "n_evaluations": self.n_evaluations,
            "n_cold": self.n_cold,
            "n_cached": self.n_cached,
            "seed": self.seed,
            "wall_s": self.wall_s,
            "budget": self.budget,
            "feasible": self.feasible,
        }

    def summary(self) -> str:
        """Aligned human-readable report."""
        title = f"adaptive search ({self.mode})"
        lines = [title, "=" * len(title)]
        lines.append(
            f"{'objective':<14}{self.objective}  (minimize"
            + (f", budget <= {self.budget:g})" if self.budget is not None
               else ")")
        )
        lines.append(
            f"{'space':<14}{' x '.join(self.param_names) or '-'}"
            f"  ({self.n_cells} cells)"
        )
        lines.append(
            f"{'evaluations':<14}{self.n_evaluations} (cell, rep) tasks: "
            f"{self.n_cold} cold, {self.n_cached} cached "
            f"({self.cold_fraction:.0%} cold)"
        )
        lines.append(f"{'seed':<14}{self.seed}")
        header = (
            f"{'round':>6}{'stage':>9}{'reps':>6}{'cands':>7}"
            f"{'cold':>6}{'cached':>8}{'best':>14}  params"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for r in self.rounds:
            lines.append(
                f"{r.round:>6}{r.stage:>9}{r.reps:>6}{r.n_candidates:>7}"
                f"{r.n_cold:>6}{r.n_cached:>8}{r.best_value:>14.3f}"
                f"  {r.best_params}"
            )
        verdict = (
            f"incumbent: {dict(self.best.params)}  "
            f"{self.objective}={self.best.metrics[self.objective]:.3f}"
        )
        if self.feasible is not None:
            verdict += f"  (budget <= {self.budget:g}: met)"
        lines.append(verdict)
        return "\n".join(lines)


def _validate_space(space: Dict[str, Sequence[Any]]) -> List[Tuple[Any, ...]]:
    """Typed validation of the candidate space; returns the cross product."""
    if not isinstance(space, dict) or not space:
        raise SweepConfigError(
            "space must be a non-empty dict of parameter -> candidate values"
        )
    for name, values in space.items():
        vals = list(values)
        if not vals:
            raise SweepConfigError(
                f"space[{name!r}] must hold at least one candidate value"
            )
        if len(set(map(repr, vals))) != len(vals):
            raise SweepConfigError(
                f"space[{name!r}] contains duplicate values: {vals}"
            )
    return list(itertools.product(*space.values()))


def _check_objective(objective: str, metrics: Optional[Sequence[str]]):
    if objective not in METRICS:
        raise SweepConfigError(
            f"unknown objective {objective!r}; available: {sorted(METRICS)}"
        )
    metric_names = list(metrics) if metrics is not None else [objective]
    if objective not in metric_names:
        metric_names.insert(0, objective)
    return metric_names


class _Evaluator:
    """Evaluates global cell-index subsets through the cached sweep path.

    One instance per search; accumulates cold/cached totals so the
    result's cache-reuse accounting is exact.  Every call is a single
    ``_grid_sweep(cells=..., resume=True)`` over the *full* grid, which
    is what keeps cell identity global.
    """

    def __init__(self, scheduler_factory, space, jobset_factory, m, speed,
                 seed, metric_names, cache, max_workers, telemetry,
                 cell_timeout, retries):
        self.factory = scheduler_factory
        self.space = space
        self.jobset_factory = jobset_factory
        self.m = m
        self.speed = speed
        self.seed = seed
        self.metric_names = metric_names
        self.cache = cache
        self.max_workers = max_workers
        self.telemetry = telemetry
        self.cell_timeout = cell_timeout
        self.retries = retries
        self.n_evaluations = 0
        self.n_cold = 0
        self.n_cached = 0

    def __call__(
        self, indices: Sequence[int], reps: int
    ) -> Tuple[Dict[int, SweepCell], int, int]:
        """Evaluate ``indices`` at ``reps``; returns (idx -> cell, cold, cached)."""
        ordered = sorted(indices)
        result = _grid_sweep(
            self.factory,
            self.space,
            self.jobset_factory,
            m=self.m,
            reps=reps,
            seed=self.seed,
            speed=self.speed,
            metrics=self.metric_names,
            max_workers=self.max_workers,
            cache=self.cache,
            resume=True,
            telemetry=self.telemetry,
            cell_timeout=self.cell_timeout,
            retries=self.retries,
            cells=ordered,
        )
        self.n_evaluations += len(ordered) * reps
        self.n_cold += result.n_cold
        self.n_cached += result.n_cached
        return (
            dict(zip(ordered, result.cells)),
            result.n_cold,
            result.n_cached,
        )

    def eval_at_speed(
        self, speed: float, reps: int
    ) -> Tuple[SweepCell, int, int]:
        """One single-cell sweep at an explicit speed (the epsilon axis).

        The grid is empty (``allow_empty_grid``): the candidate axis is
        the simulation-level speed, not a scheduler knob.  Rep seeds
        stay identical across candidates (paired comparison); the cell
        key covers ``speed``, so each candidate caches separately.
        """
        result = _grid_sweep(
            self.factory,
            {},
            self.jobset_factory,
            m=self.m,
            reps=reps,
            seed=self.seed,
            speed=speed,
            metrics=self.metric_names,
            max_workers=self.max_workers,
            cache=self.cache,
            resume=True,
            telemetry=self.telemetry,
            cell_timeout=self.cell_timeout,
            retries=self.retries,
            allow_empty_grid=True,
        )
        self.n_evaluations += reps
        self.n_cold += result.n_cold
        self.n_cached += result.n_cached
        return result.cells[0], result.n_cold, result.n_cached


def successive_halving(
    scheduler_factory: Callable[..., Any],
    space: Dict[str, Sequence[Any]],
    jobset_factory: Callable[[int], JobSet],
    m: int,
    objective: str = "max_flow",
    metrics: Optional[Sequence[str]] = None,
    r0: int = 1,
    eta: int = 2,
    rounds: Optional[int] = None,
    seed: int = 0,
    speed: float = 1.0,
    refine: Optional[str] = None,
    refine_generations: int = 3,
    refine_population: Optional[int] = None,
    cache: Any = None,
    max_workers: Optional[int] = None,
    telemetry: Optional[Any] = None,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
) -> SearchResult:
    """Deterministic successive halving over a parameter grid.

    Round ``r`` evaluates the surviving candidates at ``r0 * eta**r``
    repetitions, ranks them by the mean ``objective`` (minimized, ties
    broken by global cell index -- deterministic), and keeps the best
    ``ceil(n / eta)``.  The search stops when one candidate remains or
    ``rounds`` (default: enough to reach a single survivor) are
    exhausted.  Because repetitions of earlier rounds are a *prefix* of
    later rounds' repetitions and every evaluation runs through the
    content-addressed cell cache, each round recomputes only the newly
    added repetitions: round 2 is always >= ``1/eta`` cache hits, and a
    full rerun against the same cache is ~100% hits.

    ``refine="ga"`` appends a genetic refinement stage (psim-style):
    survivors seed a population of grid coordinates; each generation
    evaluates unseen members at the final repetition count, keeps the
    elite half, and breeds offspring by uniform crossover plus +-1-step
    mutation along single axes.  All offspring are grid points, so the
    stage shares the same cache/determinism story as the halving rounds.

    Telemetry vocabulary: ``search.start``, per-round ``search.round``
    and ``search.prune``, ``search.done`` -- all summarized by
    :func:`repro.obs.summarize_events` and sanity-checked by
    :func:`repro.obs.audit_events`.
    """
    t_start = time.perf_counter()
    combos = _validate_space(space)
    metric_names = _check_objective(objective, metrics)
    if m < 1:
        raise SweepConfigError(f"need m >= 1, got {m}")
    if r0 < 1:
        raise SweepConfigError(f"need r0 >= 1, got {r0}")
    if eta < 2:
        raise SweepConfigError(f"need eta >= 2, got {eta}")
    n_cells = len(combos)
    if rounds is None:
        rounds = max(1, math.ceil(math.log(n_cells, eta))) if n_cells > 1 else 1
    if rounds < 1:
        raise SweepConfigError(f"need rounds >= 1, got {rounds}")
    if refine not in (None, "ga"):
        raise SweepConfigError(
            f"unknown refine stage {refine!r}; available: 'ga'"
        )
    if refine_generations < 1:
        raise SweepConfigError(
            f"need refine_generations >= 1, got {refine_generations}"
        )

    if telemetry is None:
        from repro.obs.telemetry import default_telemetry

        telemetry = default_telemetry()
    evaluate = _Evaluator(
        scheduler_factory, space, jobset_factory, m, speed, seed,
        metric_names, cache, max_workers, telemetry, cell_timeout, retries,
    )
    mode = "halving" if refine is None else f"halving+{refine}"
    if telemetry is not None:
        telemetry.emit(
            "search.start",
            mode=mode,
            objective=objective,
            n_cells=n_cells,
            param_names=list(space),
            r0=r0,
            eta=eta,
            rounds=rounds,
            seed=seed,
        )

    survivors = list(range(n_cells))
    round_log: List[SearchRound] = []
    best_cells: Dict[int, SweepCell] = {}
    for rnd in range(rounds):
        reps = r0 * eta**rnd
        evaluated, n_cold, n_cached = evaluate(survivors, reps)
        best_cells.update(evaluated)
        ranked = sorted(
            survivors, key=lambda i: (evaluated[i].metrics[objective], i)
        )
        keep = max(1, math.ceil(len(ranked) / eta))
        pruned, dropped = ranked[:keep], ranked[keep:]
        incumbent = ranked[0]
        round_log.append(
            SearchRound(
                round=rnd,
                stage="halving",
                reps=reps,
                n_candidates=len(survivors),
                n_cold=n_cold,
                n_cached=n_cached,
                best_params=dict(evaluated[incumbent].params),
                best_value=evaluated[incumbent].metrics[objective],
                survivors=tuple(sorted(pruned)),
            )
        )
        if telemetry is not None:
            telemetry.emit(
                "search.round",
                round=rnd,
                stage="halving",
                reps=reps,
                n_candidates=len(survivors),
                n_cold=n_cold,
                n_cached=n_cached,
                best_params=dict(evaluated[incumbent].params),
                best_value=evaluated[incumbent].metrics[objective],
            )
            telemetry.emit(
                "search.prune",
                round=rnd,
                stage="halving",
                kept=len(pruned),
                dropped=len(dropped),
            )
        survivors = sorted(pruned)
        if len(survivors) == 1:
            break

    final_reps = round_log[-1].reps
    if refine == "ga":
        survivors, final_reps = _ga_refine(
            evaluate, combos, space, survivors, final_reps, eta, seed,
            objective, refine_generations, refine_population,
            best_cells, round_log, telemetry, start_round=len(round_log),
        )

    # The incumbent: best objective among the final survivors at their
    # final (deepest) evaluation; ties break on global index.
    best_index = min(
        survivors, key=lambda i: (best_cells[i].metrics[objective], i)
    )
    best = best_cells[best_index]
    result = SearchResult(
        mode=mode,
        objective=objective,
        param_names=list(space),
        n_cells=n_cells,
        best=best,
        best_index=best_index,
        rounds=round_log,
        n_evaluations=evaluate.n_evaluations,
        n_cold=evaluate.n_cold,
        n_cached=evaluate.n_cached,
        seed=seed,
        wall_s=round(time.perf_counter() - t_start, 6),
    )
    if telemetry is not None:
        telemetry.emit(
            "search.done",
            mode=mode,
            n_rounds=len(round_log),
            n_evaluations=result.n_evaluations,
            n_cold=result.n_cold,
            n_cached=result.n_cached,
            best_params=dict(best.params),
            best_value=best.metrics[objective],
            wall_s=result.wall_s,
        )
    return result


def _ga_refine(
    evaluate: _Evaluator,
    combos: List[Tuple[Any, ...]],
    space: Dict[str, Sequence[Any]],
    survivors: List[int],
    reps: int,
    eta: int,
    seed: int,
    objective: str,
    generations: int,
    population: Optional[int],
    best_cells: Dict[int, SweepCell],
    round_log: List[SearchRound],
    telemetry: Optional[Any],
    start_round: int,
) -> Tuple[List[int], int]:
    """Psim-style GA polish over grid *coordinates* (not raw values).

    Genomes are per-axis indices into ``space``'s value lists, so every
    individual is a legal grid cell and evaluation stays on the cached
    ``cells=`` path.  Crossover picks each axis from one of two parents;
    mutation steps one axis by +-1 (clamped).  Selection keeps the elite
    half.  The RNG is seeded from the search seed via ``derive_seed``,
    never from global state -- same seed, same generations.
    """
    dims = [len(v) for v in space.values()]
    strides = [0] * len(dims)
    acc = 1
    for d in range(len(dims) - 1, -1, -1):
        strides[d] = acc
        acc *= dims[d]

    def to_coords(index: int) -> List[int]:
        return [(index // strides[d]) % dims[d] for d in range(len(dims))]

    def to_index(coords: Sequence[int]) -> int:
        return sum(c * s for c, s in zip(coords, strides))

    rng = np.random.default_rng(derive_seed(seed, 7700))
    pop_size = population or min(len(combos), max(4, 2 * len(survivors)))
    if pop_size < 2:
        pop_size = min(2, len(combos))
    pop: List[int] = list(survivors)[:pop_size]
    while len(pop) < pop_size:
        candidate = int(rng.integers(0, len(combos)))
        if candidate not in pop:
            pop.append(candidate)

    for gen in range(generations):
        fresh = [i for i in pop if i not in best_cells]
        n_cold = n_cached = 0
        if fresh:
            evaluated, n_cold, n_cached = evaluate(fresh, reps)
            best_cells.update(evaluated)
        ranked = sorted(
            pop, key=lambda i: (best_cells[i].metrics[objective], i)
        )
        elite = ranked[: max(1, len(ranked) // 2)]
        incumbent = ranked[0]
        round_log.append(
            SearchRound(
                round=start_round + gen,
                stage="ga",
                reps=reps,
                n_candidates=len(pop),
                n_cold=n_cold,
                n_cached=n_cached,
                best_params=dict(best_cells[incumbent].params),
                best_value=best_cells[incumbent].metrics[objective],
                survivors=tuple(sorted(elite)),
            )
        )
        if telemetry is not None:
            telemetry.emit(
                "search.round",
                round=start_round + gen,
                stage="ga",
                reps=reps,
                n_candidates=len(pop),
                n_cold=n_cold,
                n_cached=n_cached,
                best_params=dict(best_cells[incumbent].params),
                best_value=best_cells[incumbent].metrics[objective],
            )
            telemetry.emit(
                "search.prune",
                round=start_round + gen,
                stage="ga",
                kept=len(elite),
                dropped=len(pop) - len(elite),
            )
        if gen == generations - 1:
            return sorted(elite), reps
        # Breed the next generation from the elite.
        next_pop = list(elite)
        guard = 0
        while len(next_pop) < pop_size and guard < 20 * pop_size:
            guard += 1
            a, b = rng.choice(len(elite), size=2)
            ca, cb = to_coords(elite[int(a)]), to_coords(elite[int(b)])
            child = [
                ca[d] if rng.random() < 0.5 else cb[d]
                for d in range(len(dims))
            ]
            if rng.random() < 0.5:  # mutate: one axis, one step
                axis = int(rng.integers(0, len(dims)))
                child[axis] = int(
                    np.clip(
                        child[axis] + (1 if rng.random() < 0.5 else -1),
                        0,
                        dims[axis] - 1,
                    )
                )
            idx = to_index(child)
            if idx not in next_pop:
                next_pop.append(idx)
        pop = next_pop
    return sorted(survivors), reps  # pragma: no cover - loop always returns


def threshold_search(
    scheduler_factory: Callable[..., Any],
    param: str,
    values: Sequence[Any],
    jobset_factory: Callable[[int], JobSet],
    m: int,
    budget: float,
    objective: str = "max_flow",
    metrics: Optional[Sequence[str]] = None,
    reps: int = 1,
    seed: int = 0,
    speed: float = 1.0,
    cache: Any = None,
    max_workers: Optional[int] = None,
    telemetry: Optional[Any] = None,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
) -> SearchResult:
    """Bisect a sorted candidate axis for the smallest value meeting a budget.

    Answers the paper's threshold questions directly: *"what is the
    minimum speed augmentation at which max flow time stays within
    B?"* -- ``threshold_search(sched, "speed", [1.0, 1.1, ...], wl,
    m=16, budget=B)``.  Assumes the objective is non-increasing along
    ``values`` (more speed never hurts max flow), which is what makes
    bisection sound; candidates must be strictly increasing.

    ``param`` may name a scheduler knob (a grid dimension) **or** the
    simulation-level speed axis (``"speed"`` / its facade alias
    ``"augmentation"``) -- the latter is the paper's minimum-epsilon
    question itself: candidates are speed factors, each probe a
    single-cell sweep at that speed (``grid={}``), still cached and
    paired (same rep seeds for every candidate).  Scheduler-knob probes
    are ``cells=[i]`` subsets of the 1-D grid, byte-identical to the
    exhaustive sweep's cells.  Finds the answer in ``O(log n)`` probes;
    raises :class:`~repro.errors.SearchInfeasibleError` (carrying the
    closest attempt) when even ``values[-1]`` misses the budget.
    """
    t_start = time.perf_counter()
    vals = list(values)
    if not vals:
        raise SweepConfigError("values must hold at least one candidate")
    if any(not (vals[i] < vals[i + 1]) for i in range(len(vals) - 1)):
        raise SweepConfigError(
            f"values must be strictly increasing for bisection, got {vals}"
        )
    if not isinstance(budget, (int, float)) or not math.isfinite(budget):
        raise SweepConfigError(f"budget must be a finite number, got {budget!r}")
    metric_names = _check_objective(objective, metrics)
    speed_axis = param in ("speed", "augmentation")
    if speed_axis:
        if speed != 1.0:
            raise SweepConfigError(
                f"cannot search over {param!r} and also fix speed={speed}: "
                f"the candidate values ARE the speed axis"
            )
        bad = [v for v in vals
               if not isinstance(v, (int, float)) or not v > 0]
        if bad:
            raise SweepConfigError(
                f"speed candidates must be positive numbers, got {bad}"
            )
    if telemetry is None:
        from repro.obs.telemetry import default_telemetry

        telemetry = default_telemetry()
    evaluate = _Evaluator(
        scheduler_factory, {} if speed_axis else {param: vals},
        jobset_factory, m, speed, seed, metric_names, cache, max_workers,
        telemetry, cell_timeout, retries,
    )

    def eval_candidate(i: int) -> Tuple[SweepCell, int, int]:
        if speed_axis:
            cell, n_cold, n_cached = evaluate.eval_at_speed(
                float(vals[i]), reps
            )
            # Report under the caller's axis name (speed/augmentation),
            # with the candidate value as given.
            cell = SweepCell(params={param: vals[i]}, metrics=cell.metrics)
            return cell, n_cold, n_cached
        evaluated, n_cold, n_cached = evaluate([i], reps)
        return evaluated[i], n_cold, n_cached
    if telemetry is not None:
        telemetry.emit(
            "search.start",
            mode="threshold",
            objective=objective,
            n_cells=len(vals),
            param_names=[param],
            budget=budget,
            reps=reps,
            seed=seed,
        )

    round_log: List[SearchRound] = []
    cells: Dict[int, SweepCell] = {}

    def probe(i: int, rnd: int, span: Tuple[int, int]) -> float:
        cell, n_cold, n_cached = eval_candidate(i)
        cells[i] = cell
        value = cell.metrics[objective]
        round_log.append(
            SearchRound(
                round=rnd,
                stage="bisect",
                reps=reps,
                n_candidates=span[1] - span[0] + 1,
                n_cold=n_cold,
                n_cached=n_cached,
                best_params=dict(cell.params),
                best_value=value,
                survivors=tuple(range(span[0], span[1] + 1)),
            )
        )
        if telemetry is not None:
            telemetry.emit(
                "search.round",
                round=rnd,
                stage="bisect",
                reps=reps,
                n_candidates=span[1] - span[0] + 1,
                n_cold=n_cold,
                n_cached=n_cached,
                best_params=dict(cell.params),
                best_value=value,
            )
        return value

    rnd = 0
    # Feasibility gate: if the most generous candidate misses the
    # budget, nothing can meet it -- fail fast with the evidence.
    top = len(vals) - 1
    top_value = probe(top, rnd, (0, top))
    if top_value > budget:
        if telemetry is not None:
            telemetry.emit(
                "search.done",
                mode="threshold",
                feasible=False,
                n_rounds=len(round_log),
                n_evaluations=evaluate.n_evaluations,
                n_cold=evaluate.n_cold,
                n_cached=evaluate.n_cached,
                best_params={param: vals[top]},
                best_value=top_value,
                wall_s=round(time.perf_counter() - t_start, 6),
            )
        raise SearchInfeasibleError(
            f"no candidate of {param} in [{vals[0]!r}..{vals[-1]!r}] meets "
            f"{objective} <= {budget:g}: the best attempt "
            f"({param}={vals[top]!r}) reached {top_value:.3f}. Widen the "
            f"candidate range or relax the budget.",
            objective=objective,
            budget=budget,
            best_params={param: vals[top]},
            best_value=top_value,
        )

    lo, hi = 0, top
    while lo < hi:
        rnd += 1
        mid = (lo + hi) // 2
        value = probe(mid, rnd, (lo, hi))
        before = hi - lo + 1
        if value <= budget:
            hi = mid
        else:
            lo = mid + 1
        if telemetry is not None:
            telemetry.emit(
                "search.prune",
                round=rnd,
                stage="bisect",
                kept=hi - lo + 1,
                dropped=before - (hi - lo + 1),
            )

    best_index = lo
    best = cells[best_index]
    result = SearchResult(
        mode="threshold",
        objective=objective,
        param_names=[param],
        n_cells=len(vals),
        best=best,
        best_index=best_index,
        rounds=round_log,
        n_evaluations=evaluate.n_evaluations,
        n_cold=evaluate.n_cold,
        n_cached=evaluate.n_cached,
        seed=seed,
        wall_s=round(time.perf_counter() - t_start, 6),
        budget=budget,
        feasible=True,
    )
    if telemetry is not None:
        telemetry.emit(
            "search.done",
            mode="threshold",
            feasible=True,
            n_rounds=len(round_log),
            n_evaluations=result.n_evaluations,
            n_cold=result.n_cold,
            n_cached=result.n_cached,
            best_params=dict(best.params),
            best_value=best.metrics[objective],
            wall_s=result.wall_s,
        )
    return result
