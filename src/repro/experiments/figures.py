"""Regeneration of every figure in the paper's evaluation, plus ablations.

Each function returns a :class:`SeriesResult` (or histogram data) whose
``render()`` output is what the benches print and what EXPERIMENTS.md
records against the paper's reported shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.bwf import BwfScheduler
from repro.core.dynamic import (
    LeastAttainedServiceScheduler,
    ShortestRemainingWorkScheduler,
)
from repro.core.fifo import FifoScheduler
from repro.core.greedy import LifoScheduler, RandomPriorityScheduler
from repro.core.opt import OptLowerBound, opt_lower_bound
from repro.core.work_stealing import WorkStealingScheduler
from repro.experiments.config import (
    ExperimentScale,
    Figure2Config,
    FIG2A,
    SCALE_STANDARD,
)
from repro.experiments.report import render_histogram, render_series
from repro.experiments.runner import _run_figure2_cells
from repro.sim.rng import derive_seed
from repro.theory import bounds
from repro.workloads.adversarial import (
    adversarial_instance,
    adversarial_machine_size,
    adversarial_opt_max_flow,
    sequential_execution_flow,
)
from repro.workloads.distributions import (
    BingDistribution,
    FinanceDistribution,
    LogNormalDistribution,
)
from repro.workloads.generator import WorkloadSpec
from repro.workloads.weights import class_weights, reweight


@dataclass
class SeriesResult:
    """A rendered-and-structured experiment outcome (one figure panel)."""

    title: str
    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]]
    notes: str = ""

    def render(self) -> str:
        """Paper-style text table plus any notes."""
        text = render_series(
            self.title, self.x_label, self.x_values, self.series
        )
        if self.notes:
            text += "\n" + self.notes
        return text

    def ratio(self, name: str, baseline: str) -> List[float]:
        """Pointwise ratio of two series (for shape assertions in tests)."""
        return [
            a / b for a, b in zip(self.series[name], self.series[baseline])
        ]

    def render_chart(self, height: int = 12, log_y: bool = False) -> str:
        """ASCII chart view of the same data (see
        :func:`repro.experiments.report.render_chart`)."""
        from repro.experiments.report import render_chart

        return render_chart(
            self.title, self.x_values, self.series, height=height, log_y=log_y
        )


def figure2(
    cfg: Figure2Config = FIG2A,
    scale: ExperimentScale = SCALE_STANDARD,
    seed: int = 0,
    include_fifo: bool = False,
    max_workers: int | None = None,
) -> SeriesResult:
    """One panel of Figure 2: max flow time (ms) vs QPS.

    Paper shape to reproduce (Section 6): OPT smallest everywhere;
    steal-k-first (k=16) close to OPT; admit-first largest, with the gap
    widening as load grows (about 2x steal-k-first at high utilization
    for the Bing and log-normal workloads).

    QPS cells run across a process pool (``max_workers``: see
    :mod:`repro.experiments.parallel`); cell seeds derive from cell
    coordinates, so the fan-out never changes the numbers.
    """
    series: Dict[str, List[float]] = {}
    cells = _run_figure2_cells(
        cfg,
        cfg.qps_values,
        scale,
        seed=seed,
        include_fifo=include_fifo,
        max_workers=max_workers,
    )
    for cell in cells:
        for name, value in cell.items():
            series.setdefault(name, []).append(value)
    return SeriesResult(
        title=(
            f"{cfg.name}: max flow time (ms) vs QPS  "
            f"[n={scale.n_jobs} x{scale.reps} reps, m={cfg.m}, k={cfg.k}]"
        ),
        x_label="QPS",
        x_values=list(cfg.qps_values),
        series=series,
    )


def figure3(
    size: int = 100_000,
    seed: int = 0,
    bin_width_ms: float = 8.0,
    include_lognormal: bool = False,
) -> List[Tuple[str, np.ndarray, np.ndarray]]:
    """Figure 3: the work distributions, as (title, bin edges, probs).

    The paper plots the measured Bing (3a) and finance (3b) request-work
    histograms; this regenerates our synthetic stand-ins at *natural*
    (un-rescaled) scale so the axes match the published figure (Bing
    support ~5-205 ms, finance ~4-56 ms).  Shapes to verify: Bing
    unimodal with a long tail; finance bimodal on a short support.
    """
    out: List[Tuple[str, np.ndarray, np.ndarray]] = []
    dists = [
        (
            "fig3a: Bing search server request work distribution",
            BingDistribution.natural(),
        ),
        (
            "fig3b: Finance server request work distribution",
            FinanceDistribution.natural(),
        ),
    ]
    if include_lognormal:
        dists.append(
            ("fig3x: log-normal work distribution", LogNormalDistribution.natural())
        )
    for i, (title, dist) in enumerate(dists):
        edges, probs = dist.histogram(
            derive_seed(seed, i), size=size, bin_width_ms=bin_width_ms
        )
        out.append((title, edges, probs))
    return out


def render_figure3(size: int = 100_000, seed: int = 0) -> str:
    """Text rendering of both Figure 3 panels."""
    return "\n\n".join(
        render_histogram(title, edges, probs)
        for title, edges, probs in figure3(size=size, seed=seed)
    )


def lower_bound_experiment(
    n_values: Sequence[int] = (256, 1024, 4096, 16384, 65536),
    seed: int = 0,
    reps: int = 5,
    use_paper_fanout: bool = False,
) -> SeriesResult:
    """Lemma 5.1 empirically: work stealing's max flow grows with log n.

    Runs admit-first work stealing in the *theoretical* cost model
    (unit-time steals, speed 1) on the adversarial instance for growing
    ``n``; OPT stays at 2 time steps while work stealing's max flow
    tracks the sequential-execution ceiling ``Theta(m) = Theta(log n)``.

    ``use_paper_fanout`` selects the literal ``m // 10`` fan-out (which
    is 1 until m >= 20, flattening the curve at small n -- the asymptotic
    regime); the default uses ``m // 2``, the same mechanism with a
    constant visible at laptop scale (see
    :func:`repro.workloads.adversarial.adversarial_instance`).
    """
    scheduler = WorkStealingScheduler(k=0, steals_per_tick=1)
    x: List[float] = []
    ws_flow: List[float] = []
    opt_flow: List[float] = []
    ceiling: List[float] = []
    for n in n_values:
        m = adversarial_machine_size(n)
        fanout = max(1, m // 10) if use_paper_fanout else max(1, m // 2)
        jobset, m = adversarial_instance(n, fanout=fanout)
        flows = []
        for rep in range(reps):
            res = scheduler.run(jobset, m=m, seed=derive_seed(seed, n, rep))
            flows.append(res.max_flow)
        x.append(math.log2(n))
        ws_flow.append(float(np.mean(flows)))
        opt_flow.append(adversarial_opt_max_flow(m))
        ceiling.append(sequential_execution_flow(m, fanout=fanout))
    return SeriesResult(
        title=(
            "lb5: Lemma 5.1 -- work stealing on the adversarial instance "
            f"[reps={reps}, fanout={'m/10 (paper)' if use_paper_fanout else 'm/2'}]"
        ),
        x_label="log2(n)",
        x_values=x,
        series={
            "work-stealing": ws_flow,
            "opt": opt_flow,
            "sequential-ceiling": ceiling,
        },
        notes=(
            "expected shape: work-stealing grows ~linearly in log2(n) "
            "toward the sequential ceiling while opt stays flat at 2"
        ),
    )


def speed_augmentation_experiment(
    eps_values: Sequence[float] = (0.1, 0.25, 0.5, 0.9),
    n_jobs: int = 1200,
    m: int = 16,
    qps: float = 1200.0,
    seed: int = 0,
) -> SeriesResult:
    """Theorem 3.1 envelope: FIFO at ``(1+eps)``-speed vs ``(3/eps) OPT``.

    For each eps, runs FIFO with that augmentation on a high-load Bing
    workload and reports its max flow next to the theorem's envelope
    (computed from the OPT lower bound).  Expected shape: the measured
    curve sits far below the envelope at every eps (the bound is loose),
    and decreases as eps grows.
    """
    spec = WorkloadSpec(BingDistribution(), qps=qps, n_jobs=n_jobs, m=m)
    jobset = spec.build(seed=derive_seed(seed, 31))
    lb = opt_lower_bound(jobset, m=m, speed=1.0)
    fifo = FifoScheduler()
    measured: List[float] = []
    envelope: List[float] = []
    for eps in eps_values:
        res = fifo.run(jobset, m=m, speed=bounds.fifo_speed(eps))
        measured.append(res.max_flow)
        envelope.append(bounds.fifo_competitive_ratio(eps) * lb.max_flow)
    return SeriesResult(
        title=(
            f"thm31: FIFO (1+eps)-speed max flow vs Theorem 3.1 envelope "
            f"[bing qps={qps:g} n={n_jobs} m={m}; times in units]"
        ),
        x_label="eps",
        x_values=list(eps_values),
        series={
            "fifo-measured": measured,
            "(3/eps)*opt-lb": envelope,
            "opt-lb": [lb.max_flow] * len(eps_values),
        },
        notes="expected shape: measured << envelope for every eps",
    )


def weighted_experiment(
    eps_values: Sequence[float] = (0.1, 0.2, 0.3),
    n_jobs: int = 1200,
    m: int = 16,
    qps: float = 1200.0,
    seed: int = 0,
) -> SeriesResult:
    """Theorem 7.1 envelope: BWF at ``(1+3eps)``-speed on weighted jobs.

    Jobs get three priority classes (1/4/16); BWF's max weighted flow is
    compared against the ``(3/eps^2) OPT_w`` envelope and against FIFO
    (which ignores weights) at the same speed.  Expected shape: BWF
    below the envelope everywhere and below FIFO on max *weighted* flow.
    """
    spec = WorkloadSpec(BingDistribution(), qps=qps, n_jobs=n_jobs, m=m)
    jobset = spec.build(seed=derive_seed(seed, 71))
    weights = class_weights(derive_seed(seed, 72), n_jobs)
    jobset = reweight(jobset, weights)

    w_arr = np.asarray(jobset.weights)
    spans = np.asarray(jobset.spans, dtype=np.float64)
    lb_unweighted = opt_lower_bound(jobset, m=m, speed=1.0)
    opt_w_lb = max(
        float((w_arr * spans).max()),
        float(w_arr.min()) * lb_unweighted.max_flow,
    )

    bwf, fifo = BwfScheduler(), FifoScheduler()
    bwf_measured: List[float] = []
    fifo_measured: List[float] = []
    envelope: List[float] = []
    for eps in eps_values:
        speed = bounds.bwf_speed(eps)
        bwf_measured.append(bwf.run(jobset, m=m, speed=speed).max_weighted_flow)
        fifo_measured.append(fifo.run(jobset, m=m, speed=speed).max_weighted_flow)
        envelope.append(bounds.bwf_competitive_ratio(eps) * opt_w_lb)
    return SeriesResult(
        title=(
            f"thm71: BWF (1+3eps)-speed max weighted flow vs Theorem 7.1 "
            f"envelope [bing qps={qps:g} n={n_jobs} m={m}, weights 1/4/16]"
        ),
        x_label="eps",
        x_values=list(eps_values),
        series={
            "bwf-measured": bwf_measured,
            "fifo-measured": fifo_measured,
            "(3/eps^2)*optw-lb": envelope,
        },
        notes=(
            "expected shape: bwf <= fifo on max weighted flow; both far "
            "below the envelope"
        ),
    )


def k_sweep_experiment(
    k_values: Sequence[int] = (0, 1, 4, 16, 64),
    n_jobs: int = 2000,
    m: int = 16,
    qps: float = 1200.0,
    steals_per_tick: int = 64,
    seed: int = 0,
    reps: int = 3,
) -> SeriesResult:
    """Ablation: the steal-k-first knob at high load (Section 4 discussion).

    The paper argues k >= m approximates FIFO ("in expectation m
    consecutive random steal attempts would be able to find the stealable
    work") while k = 0 degenerates to near-sequential job execution at
    load.  Expected shape: max flow decreases from k=0 toward k~m, with
    diminishing or slightly reversing returns beyond.
    """
    x: List[float] = []
    ws: List[float] = []
    opt: List[float] = []
    spec = WorkloadSpec(BingDistribution(), qps=qps, n_jobs=n_jobs, m=m)
    for k in k_values:
        vals = []
        opt_vals = []
        for rep in range(reps):
            jobset = spec.build(seed=derive_seed(seed, rep))
            sched = WorkStealingScheduler(k=k, steals_per_tick=steals_per_tick)
            vals.append(
                sched.run(jobset, m=m, seed=derive_seed(seed, k, rep)).max_flow
            )
            opt_vals.append(opt_lower_bound(jobset, m=m).max_flow)
        x.append(float(k))
        ws.append(float(np.mean(vals)))
        opt.append(float(np.mean(opt_vals)))
    return SeriesResult(
        title=(
            f"abl-k: steal-k-first k sweep [bing qps={qps:g} n={n_jobs} "
            f"m={m} x{reps} reps; times in units]"
        ),
        x_label="k",
        x_values=x,
        series={"steal-k-first": ws, "opt-lb": opt},
        notes="expected shape: improves from k=0, flattens around k ~ m",
    )


def load_sweep_experiment(
    utilizations: Sequence[float] = (0.3, 0.45, 0.6, 0.75, 0.85),
    n_jobs: int = 2000,
    m: int = 16,
    k: int = 16,
    steals_per_tick: int = 64,
    seed: int = 0,
) -> SeriesResult:
    """Ablation: admit-first degradation with load (Figure 2 discussion).

    Sweeps utilization directly (converting to QPS via the mean work) and
    reports the admit-first / steal-k-first max-flow ratio alongside both
    absolute curves.  Expected shape: the ratio grows with load, passing
    ~2x at high utilization as the paper reports.
    """
    dist = BingDistribution()
    x: List[float] = []
    ws_k: List[float] = []
    ws_0: List[float] = []
    opt: List[float] = []
    for util in utilizations:
        qps = util * m / (dist.mean_ms / 1000.0)
        spec = WorkloadSpec(dist, qps=qps, n_jobs=n_jobs, m=m)
        jobset = spec.build(seed=derive_seed(seed, int(util * 100)))
        sk = WorkStealingScheduler(k=k, steals_per_tick=steals_per_tick)
        s0 = WorkStealingScheduler(k=0, steals_per_tick=steals_per_tick)
        x.append(util)
        ws_k.append(
            sk.run(jobset, m=m, seed=derive_seed(seed, 1, int(util * 100))).max_flow
        )
        ws_0.append(
            s0.run(jobset, m=m, seed=derive_seed(seed, 2, int(util * 100))).max_flow
        )
        opt.append(opt_lower_bound(jobset, m=m).max_flow)
    ratio = [a / b for a, b in zip(ws_0, ws_k)]
    return SeriesResult(
        title=(
            f"abl-load: utilization sweep [bing n={n_jobs} m={m} k={k}; "
            "times in units]"
        ),
        x_label="util",
        x_values=x,
        series={
            "opt-lb": opt,
            f"steal-{k}-first": ws_k,
            "admit-first": ws_0,
            "admit/steal ratio": ratio,
        },
        notes="expected shape: ratio grows with load, ~2x at high utilization",
    )


def steal_policy_experiment(
    n_jobs: int = 1500,
    m: int = 16,
    qps: float = 1200.0,
    k: int = 16,
    steals_per_tick: int = 64,
    seed: int = 0,
    reps: int = 2,
) -> SeriesResult:
    """Ablation: victim selection x steal amount, beyond the paper.

    The paper analyzes uniform-random single-node steals; runtimes also
    ship round-robin sweeps and steal-half.  This sweep quantifies what
    those knobs buy (or cost) for max flow at high load, alongside the
    successful-steal count (the communication bill).  Expected shape:
    steal-half cuts successful steals several-fold with a modest flow
    effect; the max-deque oracle shows diminishing headroom over
    uniform.
    """
    spec = WorkloadSpec(BingDistribution(), qps=qps, n_jobs=n_jobs, m=m)
    variants = [
        ("uniform", False),
        ("uniform", True),
        ("round-robin", False),
        ("round-robin", True),
        ("max-deque", False),
        ("max-deque", True),
    ]
    x = list(range(len(variants)))
    flows: List[float] = []
    steals: List[float] = []
    names = []
    for idx, (policy, half) in enumerate(variants):
        vals, svals = [], []
        for rep in range(reps):
            jobset = spec.build(seed=derive_seed(seed, rep))
            sched = WorkStealingScheduler(
                k=k,
                steals_per_tick=steals_per_tick,
                victim_policy=policy,
                steal_half=half,
            )
            r = sched.run(jobset, m=m, seed=derive_seed(seed, idx, rep))
            vals.append(r.max_flow)
            svals.append(r.stats.steal_attempts - r.stats.failed_steals)
        flows.append(float(np.mean(vals)))
        steals.append(float(np.mean(svals)))
        names.append(policy + ("/half" if half else ""))
    return SeriesResult(
        title=(
            f"abl-steal: victim/amount policy sweep [bing qps={qps:g} "
            f"n={n_jobs} m={m} k={k} x{reps} reps; flow in units]"
        ),
        x_label="variant#",
        x_values=[float(i) for i in x],
        series={"max_flow": flows, "successful_steals": steals},
        notes="variants: " + ", ".join(f"{i}={n}" for i, n in enumerate(names)),
    )


def scheduler_comparison_experiment(
    n_jobs: int = 1200,
    m: int = 16,
    qps: float = 1150.0,
    seed: int = 0,
) -> SeriesResult:
    """Ablation: why FIFO ordering? Every policy family on one instance.

    Contrasts the paper's FIFO-ordered policies (FIFO, steal-16-first)
    with mean-flow-oriented (SRW, LAS), anti-FIFO (LIFO) and null
    (random-priority) policies on max and mean flow.  Expected shape:
    FIFO-ordered policies win max flow by a wide margin; SRW wins mean
    flow while blowing up the max -- the objectives genuinely trade off,
    which is the paper's motivation for studying max flow separately.
    """
    spec = WorkloadSpec(BingDistribution(), qps=qps, n_jobs=n_jobs, m=m)
    jobset = spec.build(seed=derive_seed(seed, 5))
    lineup = [
        OptLowerBound(),
        FifoScheduler(),
        WorkStealingScheduler(k=16, steals_per_tick=64),
        LeastAttainedServiceScheduler(),
        ShortestRemainingWorkScheduler(),
        LifoScheduler(),
        RandomPriorityScheduler(),
    ]
    max_flows: List[float] = []
    mean_flows: List[float] = []
    names = []
    for i, sched in enumerate(lineup):
        r = sched.run(jobset, m=m, seed=derive_seed(seed, 6, i))
        max_flows.append(r.max_flow)
        mean_flows.append(r.mean_flow)
        names.append(sched.name)
    return SeriesResult(
        title=(
            f"abl-sched: policy families on one instance [bing "
            f"qps={qps:g} n={n_jobs} m={m}; times in units]"
        ),
        x_label="policy#",
        x_values=[float(i) for i in range(len(lineup))],
        series={"max_flow": max_flows, "mean_flow": mean_flows},
        notes="policies: " + ", ".join(f"{i}={n}" for i, n in enumerate(names)),
    )


def burstiness_experiment(
    batch_sizes: Sequence[int] = (1, 4, 16, 64),
    n_jobs: int = 1500,
    m: int = 16,
    qps: float = 1000.0,
    seed: int = 0,
) -> SeriesResult:
    """Ablation: arrival burstiness at fixed long-run rate.

    The paper's experiments use Poisson arrivals; real front-ends batch.
    This sweep replaces Poisson with batched arrivals of growing batch
    size (same long-run QPS) and reports every Figure 2 scheduler.
    Expected shape: all schedulers degrade with burstiness (a batch of B
    jobs inflates even OPT's max flow to ~B services), and the
    scheduler ordering of Figure 2 is preserved at every batch size.
    """
    from repro.workloads.arrivals import BurstyProcess
    from repro.workloads.generator import qps_to_rate

    dist = BingDistribution()
    x: List[float] = []
    opt: List[float] = []
    sk: List[float] = []
    af: List[float] = []
    for batch in batch_sizes:
        spec = WorkloadSpec(
            dist,
            qps=qps,
            n_jobs=n_jobs,
            m=m,
            arrival_process=BurstyProcess(qps_to_rate(qps), batch=batch),
        )
        jobset = spec.build(seed=derive_seed(seed, batch))
        x.append(float(batch))
        opt.append(opt_lower_bound(jobset, m=m).max_flow)
        sk.append(
            WorkStealingScheduler(k=16, steals_per_tick=64)
            .run(jobset, m=m, seed=derive_seed(seed, 1, batch))
            .max_flow
        )
        af.append(
            WorkStealingScheduler(k=0, steals_per_tick=64)
            .run(jobset, m=m, seed=derive_seed(seed, 2, batch))
            .max_flow
        )
    return SeriesResult(
        title=(
            f"abl-burst: arrival batch-size sweep [bing qps={qps:g} "
            f"n={n_jobs} m={m}; times in units]"
        ),
        x_label="batch",
        x_values=x,
        series={"opt-lb": opt, "steal-16-first": sk, "admit-first": af},
        notes=(
            "expected shape: all curves grow with burstiness; the "
            "Figure 2 ordering holds at every batch size"
        ),
    )


def grain_experiment(
    target_chunks_values: Sequence[int] = (1, 4, 16, 64, 256),
    n_jobs: int = 1500,
    m: int = 16,
    qps: float = 1150.0,
    seed: int = 0,
) -> SeriesResult:
    """Ablation: parallel-for decomposition granularity.

    ``target_chunks = 1`` makes jobs sequential (no parallelism to
    steal); large values make fine chunks.  Expected shape: steal-first
    improves sharply once jobs expose >= m chunks (it can spread each
    job across the machine), then flattens; OPT is indifferent (it
    assumes full parallelizability regardless).
    """
    dist = BingDistribution()
    x: List[float] = []
    opt: List[float] = []
    sk: List[float] = []
    spans: List[float] = []
    for chunks in target_chunks_values:
        spec = WorkloadSpec(
            dist, qps=qps, n_jobs=n_jobs, m=m, target_chunks=chunks
        )
        jobset = spec.build(seed=derive_seed(seed, chunks))
        x.append(float(chunks))
        opt.append(opt_lower_bound(jobset, m=m).max_flow)
        sk.append(
            WorkStealingScheduler(k=16, steals_per_tick=64)
            .run(jobset, m=m, seed=derive_seed(seed, 3, chunks))
            .max_flow
        )
        spans.append(float(np.mean(jobset.spans)))
    return SeriesResult(
        title=(
            f"abl-grain: parallel-for chunking sweep [bing qps={qps:g} "
            f"n={n_jobs} m={m}; times in units]"
        ),
        x_label="chunks",
        x_values=x,
        series={"opt-lb": opt, "steal-16-first": sk, "mean-span": spans},
        notes=(
            "expected shape: steal-16-first improves as jobs expose "
            "parallelism (mean span falls), flattening past ~m chunks"
        ),
    )


def speedup_contrast_experiment(
    m_values: Sequence[int] = (2, 4, 8, 16, 64),
    n_jobs: int = 400,
    seed: int = 0,
) -> SeriesResult:
    """Extension: DAG model vs speedup-curves model, quantified.

    Section 8 argues the models are fundamentally different; this
    experiment runs FIFO on the *same* instance in both models (the
    speedup version obtained by the natural parallelism-profile
    conversion) across machine sizes, reporting the max-flow ratio
    DAG / converted.  Expected shape: ratio != 1 on narrow machines --
    no faithful mapping exists (the paper's separation claim): the
    conversion is optimistic about integral node placement and
    pessimistic about its phase barriers, and on parallel-for workloads
    the former dominates so the ratio sits above 1 -- converging to 1
    once m reaches the jobs' maximum profile width (where the
    conversion is exact).
    """
    from repro.speedup.convert import jobset_to_speedup
    from repro.speedup.engine import _run_speedup_fifo as run_speedup_fifo

    spec = WorkloadSpec(
        BingDistribution(), qps=700.0, n_jobs=n_jobs, m=16, target_chunks=16
    )
    jobset = spec.build(seed=derive_seed(seed, 8))
    speedup_jobset = jobset_to_speedup(jobset)
    fifo = FifoScheduler()

    x: List[float] = []
    dag_flow: List[float] = []
    sp_flow: List[float] = []
    ratio: List[float] = []
    for m in m_values:
        d = fifo.run(jobset, m=m).max_flow
        s = run_speedup_fifo(speedup_jobset, m=m).max_flow
        x.append(float(m))
        dag_flow.append(d)
        sp_flow.append(s)
        ratio.append(d / s)
    return SeriesResult(
        title=(
            f"ext-speedup: DAG vs converted speedup-curves FIFO "
            f"[bing n={n_jobs}; times in units]"
        ),
        x_label="m",
        x_values=x,
        series={
            "dag-fifo": dag_flow,
            "speedup-fifo": sp_flow,
            "dag/speedup": ratio,
        },
        notes=(
            "expected shape: ratio != 1 on narrow machines (two-sided "
            "divergence; >= 1 on parallel-for), -> 1 once m covers the "
            "profile width"
        ),
    )


def weighted_work_stealing_experiment(
    qps_values: Sequence[float] = (800.0, 1000.0, 1200.0),
    n_jobs: int = 1500,
    m: int = 16,
    k: int = 16,
    seed: int = 0,
) -> SeriesResult:
    """Extension: distributed BWF via weight-ordered admission.

    Combines the paper's Section 4 scheduler with its Section 7
    objective: the global queue admits the heaviest waiting job.
    Reports max weighted flow for centralized BWF (the paper's
    algorithm), weighted-admission work stealing (ours), and
    FIFO-admission work stealing (the unweighted baseline) across load.
    Expected shape: BWF <= weighted-WS <= FIFO-WS at every load.
    """
    from repro.core.work_stealing import WeightedWorkStealingScheduler

    dist = BingDistribution()
    bwf = BwfScheduler()
    x: List[float] = []
    bwf_flow: List[float] = []
    wws_flow: List[float] = []
    fws_flow: List[float] = []
    for qps in qps_values:
        spec = WorkloadSpec(dist, qps=qps, n_jobs=n_jobs, m=m)
        jobset = reweight(
            spec.build(seed=derive_seed(seed, int(qps))),
            class_weights(derive_seed(seed, 91, int(qps)), n_jobs),
        )
        x.append(qps)
        bwf_flow.append(bwf.run(jobset, m=m).max_weighted_flow)
        wws_flow.append(
            WeightedWorkStealingScheduler(k=k)
            .run(jobset, m=m, seed=derive_seed(seed, 1, int(qps)))
            .max_weighted_flow
        )
        fws_flow.append(
            WorkStealingScheduler(k=k, steals_per_tick=64)
            .run(jobset, m=m, seed=derive_seed(seed, 2, int(qps)))
            .max_weighted_flow
        )
    return SeriesResult(
        title=(
            f"ext-wws: weighted admission work stealing [bing n={n_jobs} "
            f"m={m} k={k}, weights 1/4/16; max weighted flow in units]"
        ),
        x_label="QPS",
        x_values=x,
        series={
            "bwf (centralized)": bwf_flow,
            "ws/weight-admission": wws_flow,
            "ws/fifo-admission": fws_flow,
        },
        notes="expected shape: bwf <= weighted-WS <= fifo-WS at every load",
    )


def norm_profile_experiment(
    k_norms: Sequence[float] = (1.0, 2.0, 4.0, 16.0, float("inf")),
    n_jobs: int = 1200,
    m: int = 16,
    qps: float = 1150.0,
    seed: int = 0,
) -> SeriesResult:
    """Extension: the lk-norm objective family (the conclusion's open
    question) across policy families.

    Reports the normalized lk norm of flow time (generalized mean: mean
    flow at k=1, max flow at k=inf) for FIFO, steal-16-first and SRW.
    Expected shape: SRW wins small k, the FIFO-ordered policies win as
    k grows -- the curves *cross*, showing the objectives genuinely
    conflict and motivating max flow as its own target.
    """
    from repro.metrics.norms import normalized_lk_norm_flow

    spec = WorkloadSpec(BingDistribution(), qps=qps, n_jobs=n_jobs, m=m)
    jobset = spec.build(seed=derive_seed(seed, 13))
    runs = {
        "fifo": FifoScheduler().run(jobset, m=m),
        "steal-16-first": WorkStealingScheduler(k=16, steals_per_tick=64).run(
            jobset, m=m, seed=derive_seed(seed, 14)
        ),
        "srw": ShortestRemainingWorkScheduler().run(jobset, m=m),
    }
    series = {
        name: [normalized_lk_norm_flow(r, k) for k in k_norms]
        for name, r in runs.items()
    }
    x = [k if k != float("inf") else 1e9 for k in k_norms]
    return SeriesResult(
        title=(
            f"ext-norms: normalized lk-norms of flow [bing qps={qps:g} "
            f"n={n_jobs} m={m}; k=1e9 column is the max; times in units]"
        ),
        x_label="k",
        x_values=list(x),
        series=series,
        notes=(
            "expected shape: srw lowest at k=1 (mean flow), fifo lowest "
            "at large k (max flow) -- the curves cross"
        ),
    )


def single_job_scaling_experiment(
    m_values: Sequence[int] = (1, 2, 4, 8, 16, 32),
    body_work: int = 4096,
    seed: int = 0,
    reps: int = 3,
) -> SeriesResult:
    """Extension: the classic single-job work-stealing guarantees, measured.

    Section 1 quotes the Blumofe-Leiserson bound the whole paper builds
    on: a single job of work W and span P runs in O(W/m + P) expected
    time under work stealing, with O(mP) expected steal attempts
    (Lemma 4.4's ``32 m P``).  This experiment runs one recursive
    fork-join job through the tick engine in the theoretical cost model
    across machine sizes and reports completion time against W/m + P
    and steal attempts against m*P.  Expected shape: time tracks a
    small constant times W/m + P (near-linear speedup until span
    dominates); steals stay below the Lemma 4.4 constant.
    """
    from repro.dag.builders import parallel_chains
    from repro.dag.job import Job, JobSet

    # A job with genuine structure: 64 chains of uneven length.
    chain_lengths = [2 + (i % 7) for i in range(64)]
    per_chain = max(1, body_work // (64 * 4))
    dag = parallel_chains(chain_lengths, node_work=per_chain)
    W, P = dag.total_work, dag.span

    x: List[float] = []
    time_measured: List[float] = []
    greedy_bound: List[float] = []
    steals_measured: List[float] = []
    lemma44_budget: List[float] = []
    for m in m_values:
        times, steals = [], []
        for rep in range(reps):
            js = JobSet([Job(job_id=0, dag=dag, arrival=0.0)])
            r = WorkStealingScheduler(k=0, steals_per_tick=1).run(
                js, m=m, seed=derive_seed(seed, m, rep)
            )
            times.append(r.completions[0])
            steals.append(r.stats.steal_attempts)
        x.append(float(m))
        time_measured.append(float(np.mean(times)))
        greedy_bound.append(W / m + P)
        steals_measured.append(float(np.mean(steals)))
        lemma44_budget.append(32.0 * m * P)
    return SeriesResult(
        title=(
            f"ext-scaling: single-job work stealing vs O(W/m + P) "
            f"[W={W}, P={P}; theoretical cost model; times in ticks]"
        ),
        x_label="m",
        x_values=x,
        series={
            "measured-time": time_measured,
            "W/m+P": greedy_bound,
            "steal-attempts": steals_measured,
            "32*m*P": lemma44_budget,
        },
        notes=(
            "expected shape: measured-time within a small constant of "
            "W/m+P at every m; steal-attempts below the Lemma 4.4 budget"
        ),
    )


def makespan_experiment(
    m_values: Sequence[int] = (4, 8, 16, 32),
    n_jobs: int = 200,
    seed: int = 0,
) -> SeriesResult:
    """Extension: the makespan special case (paper footnote 1).

    When every job arrives at time 0, max flow time *is* the makespan.
    This experiment drops a batch of Bing-shaped jobs at t=0 and
    compares FIFO and steal-16-first makespans against two anchors: the
    trivial lower bound ``max(W_total/m, max_i P_i)`` and Graham's
    greedy upper bound applied to the batch as one merged computation
    (``W_total/m + (m-1)/m * max_i P_i`` -- valid because FIFO never
    idles a processor while any ready node exists).  Expected shape:
    both schedulers land between the anchors at every m, hugging the
    lower bound while work dominates.
    """
    from repro.theory.bounds import graham_makespan_bound

    dist = BingDistribution()
    works = dist.sample_units(derive_seed(seed, 17), n_jobs, units_per_ms=4.0)
    from repro.dag.builders import parallel_for
    from repro.dag.job import Job, JobSet

    jobs = []
    for i in range(n_jobs):
        body = int(works[i])
        dag = parallel_for(body, max(1, body // 32))
        jobs.append(Job(job_id=i, dag=dag, arrival=0.0))
    jobset = JobSet(jobs)
    total_w = jobset.total_work
    max_p = jobset.max_span

    x: List[float] = []
    fifo_ms: List[float] = []
    ws_ms: List[float] = []
    lower: List[float] = []
    graham: List[float] = []
    for m in m_values:
        x.append(float(m))
        fifo_ms.append(FifoScheduler().run(jobset, m=m).makespan)
        ws_ms.append(
            WorkStealingScheduler(k=16, steals_per_tick=64)
            .run(jobset, m=m, seed=derive_seed(seed, 18, m))
            .makespan
        )
        lower.append(max(total_w / m, float(max_p)))
        graham.append(graham_makespan_bound(total_w, max_p, m))
    return SeriesResult(
        title=(
            f"ext-makespan: batch scheduling [bing n={n_jobs}, all arrive "
            f"at t=0; makespan in units]"
        ),
        x_label="m",
        x_values=x,
        series={
            "lower-bound": lower,
            "fifo": fifo_ms,
            "steal-16-first": ws_ms,
            "graham-bound": graham,
        },
        notes=(
            "expected shape: lower <= fifo <= graham at every m; work "
            "stealing tracks fifo up to steal overhead"
        ),
    )


def overheads_experiment(
    qps_values: Sequence[float] = (800.0, 1000.0, 1200.0),
    n_jobs: int = 600,
    m: int = 16,
    seed: int = 0,
) -> SeriesResult:
    """Extension: the implementation-cost motivation, quantified (Sec 1).

    The paper argues ideal FIFO is impractical ("potentially preempts
    jobs and re-allocates processors at every time step") and work
    stealing practical ("most of the time, workers work off their own
    queues").  This experiment traces both on the same workloads and
    counts what each would pay on real hardware: FIFO's preemptions and
    cross-processor migrations (it pays zero steals) against work
    stealing's steal attempts (it pays zero preemptions -- stolen nodes
    are ready, never in-progress, so the trace-derived preemption count
    is structurally 0, which the bench asserts).  All counts are
    per-job averages.  Expected shape: FIFO's migration bill grows with
    load while its steal bill is zero; work stealing is the mirror
    image.
    """
    from repro.metrics.overheads import migration_count, preemption_count
    from repro.sim.trace import TraceRecorder

    dist = BingDistribution()
    x: List[float] = []
    fifo_preempt: List[float] = []
    fifo_migrate: List[float] = []
    ws_steals: List[float] = []
    ws_preempt: List[float] = []
    for qps in qps_values:
        spec = WorkloadSpec(dist, qps=qps, n_jobs=n_jobs, m=m)
        jobset = spec.build(seed=derive_seed(seed, int(qps), 77))

        tr_f = TraceRecorder()
        FifoScheduler().run(jobset, m=m, trace=tr_f)
        tr_w = TraceRecorder()
        r_w = WorkStealingScheduler(k=16, steals_per_tick=64).run(
            jobset, m=m, seed=derive_seed(seed, int(qps), 78), trace=tr_w
        )

        x.append(qps)
        fifo_preempt.append(preemption_count(tr_f) / n_jobs)
        fifo_migrate.append(migration_count(tr_f) / n_jobs)
        ws_steals.append(r_w.stats.steal_attempts / n_jobs)
        ws_preempt.append(preemption_count(tr_w) / n_jobs)
    return SeriesResult(
        title=(
            f"ext-overheads: implementation costs per job [bing n={n_jobs} "
            f"m={m}]"
        ),
        x_label="QPS",
        x_values=x,
        series={
            "fifo-preemptions": fifo_preempt,
            "fifo-migrations": fifo_migrate,
            "ws-steal-attempts": ws_steals,
            "ws-preemptions": ws_preempt,
        },
        notes=(
            "expected shape: ws-preemptions identically 0; FIFO's "
            "preemption/migration bill grows with load"
        ),
    )
