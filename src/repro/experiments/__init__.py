"""Reproduction harness for the paper's evaluation (Section 6).

One entry point per paper artifact, each returning structured data and a
paper-style text rendering:

* :func:`~repro.experiments.figures.figure2` -- max flow vs QPS for the
  Bing / finance / log-normal workloads (Figures 2a-2c);
* :func:`~repro.experiments.figures.figure3` -- the work-distribution
  histograms (Figures 3a-3b);
* :func:`~repro.experiments.figures.lower_bound_experiment` -- the
  Lemma 5.1 ``Omega(log n)`` scaling study;
* :func:`~repro.experiments.figures.speed_augmentation_experiment` --
  the Theorem 3.1 / 7.1 envelope sweeps;
* :func:`~repro.experiments.figures.k_sweep_experiment` and
  :func:`~repro.experiments.figures.load_sweep_experiment` -- the
  Section 4/6 discussion ablations.

Command line: ``python -m repro.experiments <fig2a|fig2b|fig2c|fig3|lb5|
thm31|thm71|abl-k|abl-load|all> [--n-jobs N] [--seed S] [--reps R]
[--jobs W]``.

Experiment cells fan out across a process pool (``--jobs`` / the
``REPRO_JOBS`` environment variable / CPU count, in that order of
precedence); cell seeds derive from cell coordinates, so parallel and
serial runs are bit-identical.  See :mod:`repro.experiments.parallel`.

With ``--resume`` (or ``REPRO_RESUME=1``) previously computed cells are
served from the content-addressed cache (``--cache-dir`` / the
``REPRO_CACHE`` environment variable / ``.repro_cache/``); cached
values are the exact floats of the original run.  See
:mod:`repro.experiments.cache`.

The pool is supervised (ISSUE 4): ``--cell-timeout`` /
``REPRO_CELL_TIMEOUT`` bounds each cell's wall time, ``--retries`` /
``REPRO_RETRIES`` bounds how often a crashed or hung cell is re-run
(from its coordinate-derived seed, so recovery never changes a number),
broken pools are respawned, completed cells are checkpointed into the
cache as they finish, and published shared-memory blocks are reclaimed
on every exit path.  See docs/ROBUSTNESS.md.

Sweeps also scale *out* (ISSUE 8): ``repro.sweep(shard=(i, n),
cache=...)`` runs one deterministic slice of the grid per host, and
``python -m repro.experiments merge-cache <src>... --dest <dir>`` /
``merge-telemetry`` combine shard caches and event logs losslessly --
content-hash conflict detection, provenance-bearing errors, and
resume-after-merge bit-identical to a single-host sweep.  See
:mod:`repro.experiments.shard` and EXPERIMENTS.md.

Adaptive experimentation (ISSUE 9): ``python -m repro.experiments
search`` / ``ablate`` (and the :func:`repro.search` /
:func:`repro.ablate` facades) answer threshold and which-knob-matters
questions on top of the cached sweep path; see
:mod:`repro.experiments.search` / :mod:`repro.experiments.ablate`.
Subcommand exit codes live in :mod:`repro.experiments.exitcodes`.

Deprecated (ISSUE 9): the package-level ``grid_sweep`` and
``run_figure2_cells`` names remain importable but warn once per
process on call -- use :func:`repro.sweep` (or the figure functions)
instead.
"""

from repro.experiments.ablate import AblationDelta, AblationReport, ablate
from repro.experiments.cache import (
    SweepCache,
    cell_key,
    resolve_cache_dir,
    resume_enabled_by_env,
)
from repro.experiments.config import (
    EXPERIMENTS,
    ExperimentScale,
    Figure2Config,
    FIG2A,
    FIG2B,
    FIG2C,
    SCALE_PAPER,
    SCALE_QUICK,
    SCALE_STANDARD,
)
from repro.experiments.parallel import (
    backoff_schedule,
    default_cell_timeout,
    default_retries,
    default_workers,
    parallel_map,
    reclaim_shared_memory,
)
from repro.experiments.runner import (
    run_figure2_cell,
    run_figure2_cells,
    run_schedulers,
)
from repro.experiments.figures import (
    burstiness_experiment,
    figure2,
    figure3,
    grain_experiment,
    k_sweep_experiment,
    load_sweep_experiment,
    lower_bound_experiment,
    makespan_experiment,
    overheads_experiment,
    scheduler_comparison_experiment,
    single_job_scaling_experiment,
    speed_augmentation_experiment,
    steal_policy_experiment,
    weighted_experiment,
    weighted_work_stealing_experiment,
    norm_profile_experiment,
    speedup_contrast_experiment,
)
from repro.experiments.report import render_chart, render_histogram, render_series
from repro.experiments.shard import (
    MergeReport,
    ShardManifest,
    ShardSpec,
    grid_digest,
    load_shard_manifests,
    merge_caches,
    merge_telemetry,
    parse_shard,
    shard_cells,
)
from repro.experiments.search import (
    SearchResult,
    SearchRound,
    successive_halving,
    threshold_search,
)
from repro.experiments.sweep import METRICS, SweepCell, SweepResult, grid_sweep
from repro.experiments.verify import (
    ShapeCheck,
    render_verification,
    verify_reproduction,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentScale",
    "Figure2Config",
    "FIG2A",
    "FIG2B",
    "FIG2C",
    "SCALE_PAPER",
    "SCALE_QUICK",
    "SCALE_STANDARD",
    "SweepCache",
    "cell_key",
    "resolve_cache_dir",
    "resume_enabled_by_env",
    "backoff_schedule",
    "default_cell_timeout",
    "default_retries",
    "default_workers",
    "parallel_map",
    "reclaim_shared_memory",
    "run_figure2_cell",
    "run_figure2_cells",
    "run_schedulers",
    "figure2",
    "figure3",
    "lower_bound_experiment",
    "makespan_experiment",
    "overheads_experiment",
    "speed_augmentation_experiment",
    "burstiness_experiment",
    "grain_experiment",
    "k_sweep_experiment",
    "load_sweep_experiment",
    "scheduler_comparison_experiment",
    "single_job_scaling_experiment",
    "steal_policy_experiment",
    "weighted_experiment",
    "weighted_work_stealing_experiment",
    "norm_profile_experiment",
    "speedup_contrast_experiment",
    "render_series",
    "render_histogram",
    "render_chart",
    "ShapeCheck",
    "grid_sweep",
    "SweepResult",
    "SweepCell",
    "METRICS",
    # adaptive experimentation (ISSUE 9)
    "SearchResult",
    "SearchRound",
    "successive_halving",
    "threshold_search",
    "AblationDelta",
    "AblationReport",
    "ablate",
    "ShardSpec",
    "ShardManifest",
    "MergeReport",
    "parse_shard",
    "shard_cells",
    "grid_digest",
    "load_shard_manifests",
    "merge_caches",
    "merge_telemetry",
    "verify_reproduction",
    "render_verification",
]
