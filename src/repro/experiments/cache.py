"""Content-addressed on-disk cache for instances and sweep-cell results.

Sweeps recompute two kinds of artifacts on every rerun: generated
instances (a pure function of spec + derived seed) and per-cell metric
values (a pure function of instance content + scheduler parameters +
run seed).  Both are therefore safely cacheable by *content key*:

* instances are stored as flat ``.npz`` archives
  (:mod:`repro.dag.flat`) under ``<cache>/instances/<key>.npz``, keyed
  by the workload's spec hash + derived seed
  (:meth:`repro.workloads.generator.WorkloadSpec.cache_key`);
* cell results are stored as JSON under ``<cache>/cells/<key>.json``,
  keyed by the sha256 of the instance's content hash plus every run
  coordinate (scheduler identity and parameters, ``m``, ``speed``, run
  seed, metric names).

Because keys are derived from content and coordinates -- never from
wall-clock time or execution order -- a cache hit is bit-identical to
recomputation: JSON round-trips Python floats exactly (``repr`` is
shortest-round-trip in Python 3), and the flat format round-trips
instances exactly.  ``--resume`` therefore cannot change a single
number; ``tests/experiments/test_cache.py`` asserts it.

**The one cache-directory precedence rule** (first match wins,
everywhere -- API, CLI, sharded or not): an explicit argument /
``--cache-dir`` flag, then the ``REPRO_CACHE`` environment variable,
then the default ``.repro_cache/`` under the current directory.
:func:`resolve_cache_dir` is the single implementation; nothing else in
the package reads ``REPRO_CACHE``.  Two deliberate exceptions refuse to
fall through to the *default* instead of silently picking it: a
**sharded** sweep (``shard=`` set, no explicit cache, no ``REPRO_CACHE``)
raises :class:`~repro.errors.SweepConfigError`, because ``n`` shards
landing in the same implicit ``.repro_cache`` on one host -- or
different implicit dirs on ``n`` hosts that the operator never learns
the names of -- defeats the merge step; likewise
:func:`~repro.experiments.shard.merge_caches` requires every source to
exist and the destination to differ from all sources.  ``make
clean-cache`` (or :meth:`SweepCache.clear`) wipes the resolved
directory, including ``manifests/`` and any checkpoint/``.tmp``
sidecars, so a cleared cache cannot poison a later merge.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.dag.flat import FlatInstance, load_flat, save_flat
from repro.errors import CacheCorruptError

__all__ = [
    "CACHE_ENV",
    "CELL_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "RESUME_ENV",
    "SweepCache",
    "cell_key",
    "resolve_cache_dir",
    "resume_enabled_by_env",
]

PathLike = Union[str, Path]

#: Environment variable overriding the default cache directory.
CACHE_ENV = "REPRO_CACHE"

#: Environment variable enabling resume mode in the CLI path.
RESUME_ENV = "REPRO_RESUME"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Version stamp in cell files; bump on any result-format change so
#: stale caches miss instead of misparse.
CELL_SCHEMA = "repro-cell/1"


def resolve_cache_dir(explicit: Optional[PathLike] = None) -> Path:
    """Resolve the cache directory: explicit > ``REPRO_CACHE`` > default."""
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path(DEFAULT_CACHE_DIR)


def resume_enabled_by_env() -> bool:
    """Whether ``REPRO_RESUME`` requests resume mode (CLI ``--resume``)."""
    value = os.environ.get(RESUME_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no")


def cell_key(*components: Any) -> str:
    """Hash arbitrary run coordinates into a cell-result key.

    Components are rendered with ``repr`` and joined with a separator
    that cannot appear inside a repr boundary ambiguity; callers pass
    every coordinate the result depends on (instance content hash,
    scheduler token, params, m, speed, run seed, metric names).
    """
    text = "\x1f".join(repr(c) for c in components)
    return hashlib.sha256(text.encode()).hexdigest()


class SweepCache:
    """Filesystem-backed instance + cell-result store (see module doc).

    All writes are atomic (temp file + rename), so a cache shared by
    concurrent sweep processes never exposes torn files; losing a race
    merely rewrites identical content.
    """

    def __init__(
        self, root: Optional[PathLike] = None, telemetry: Optional[Any] = None
    ) -> None:
        self.root = resolve_cache_dir(root)
        #: Optional :class:`repro.obs.Telemetry`; when bound (directly or
        #: by ``grid_sweep(telemetry=...)``), every load/store emits a
        #: ``cache.*`` event.  Never affects what is stored or returned.
        self.telemetry = telemetry

    def _emit(self, event: str, **fields: Any) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(event, **fields)

    @property
    def instances_dir(self) -> Path:
        return self.root / "instances"

    @property
    def cells_dir(self) -> Path:
        return self.root / "cells"

    @property
    def manifests_dir(self) -> Path:
        """Provenance dir: run manifests and shard manifests live here."""
        return self.root / "manifests"

    # -- instances --------------------------------------------------------

    def instance_path(self, key: str) -> Path:
        return self.instances_dir / f"{key}.npz"

    def load_instance(
        self, key: str, strict: bool = False
    ) -> Optional[FlatInstance]:
        """The cached flat instance for ``key``, or None on a miss.

        A corrupt or truncated file (interrupted writer on a foreign
        filesystem) counts as a miss: the caller regenerates and
        overwrites it.  With ``strict=True`` corruption raises
        :class:`~repro.errors.CacheCorruptError` instead, so integrity
        audits can tell a torn file from an absent one.
        """
        path = self.instance_path(key)
        if not path.exists():
            self._emit("cache.instance_miss", key=key)
            return None
        try:
            flat = load_flat(path)
        except Exception as exc:
            self._emit("cache.instance_miss", key=key, corrupt=True)
            if strict:
                raise CacheCorruptError(
                    f"cached instance {path} is unreadable: {exc}"
                ) from exc
            return None
        self._emit("cache.instance_hit", key=key)
        return flat

    def store_instance(self, key: str, flat: FlatInstance) -> Path:
        path = self.instance_path(key)
        self.instances_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.instances_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb"):
                pass
            save_flat(flat, tmp)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._emit(
            "cache.instance_store", key=key, nbytes=path.stat().st_size
        )
        return path

    # -- cell results -----------------------------------------------------

    def cell_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    def load_cell(
        self, key: str, strict: bool = False
    ) -> Optional[Dict[str, float]]:
        """The cached metric dict for ``key``, or None on a miss.

        With ``strict=True`` an unparseable entry raises
        :class:`~repro.errors.CacheCorruptError` instead of counting as
        a miss (a stale-but-wellformed schema still misses: that is
        versioning, not corruption).
        """
        path = self.cell_path(key)
        if not path.exists():
            self._emit("cache.cell_miss", key=key)
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            self._emit("cache.cell_miss", key=key, corrupt=True)
            if strict:
                raise CacheCorruptError(
                    f"cached cell {path} is unreadable: {exc}"
                ) from exc
            return None
        if data.get("schema") != CELL_SCHEMA:
            self._emit("cache.cell_miss", key=key, stale_schema=True)
            return None
        self._emit("cache.cell_hit", key=key)
        return {str(k): float(v) for k, v in data["metrics"].items()}

    def store_cell(self, key: str, metrics: Dict[str, float]) -> Path:
        from repro.testing.faults import maybe_inject

        maybe_inject("cache")
        path = self.cell_path(key)
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        # Key order is preserved (not sorted): consumers iterate metric
        # dicts in insertion order (e.g. figure series follow the
        # scheduler lineup), and a resumed cell must render exactly
        # like a computed one.
        payload = json.dumps({"schema": CELL_SCHEMA, "metrics": metrics})
        fd, tmp = tempfile.mkstemp(dir=self.cells_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._emit("cache.cell_store", key=key)
        return path

    # -- maintenance ------------------------------------------------------

    def clear(self) -> None:
        """Delete the whole cache directory, *everything* under it
        (idempotent): instances, cells, ``manifests/`` (run + shard
        provenance), checkpoint sidecars, stray ``.tmp`` files.

        Completeness matters for merges: a "cleared" cache that kept a
        stale shard manifest or a half-written ``.tmp`` sidecar would
        feed wrong provenance (or be mistaken for data) when later
        merged into another cache.  A symlinked root is cleared through
        the link -- the target's contents are removed and the link
        itself unlinked -- because ``rmtree`` on a symlink would
        otherwise silently delete nothing.
        """
        root = self.root
        if root.is_symlink():
            target = root.resolve()
            if target.is_dir():
                shutil.rmtree(target, ignore_errors=True)
            root.unlink(missing_ok=True)
            return
        shutil.rmtree(root, ignore_errors=True)

    def stats(self) -> Dict[str, int]:
        """Entry counts, for logs and the CLI cache summary."""
        return {
            "instances": (
                len(list(self.instances_dir.glob("*.npz")))
                if self.instances_dir.is_dir()
                else 0
            ),
            "cells": (
                len(list(self.cells_dir.glob("*.json")))
                if self.cells_dir.is_dir()
                else 0
            ),
            "manifests": (
                len(list(self.manifests_dir.glob("*.json")))
                if self.manifests_dir.is_dir()
                else 0
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepCache(root={str(self.root)!r})"
