"""Declarative ablation harness: baseline + named deltas -> impact report.

An ablation asks "which knob *matters*?": take a baseline
configuration, apply one named change at a time, run every variant on
the **same** instances, and rank the changes by how much they move the
objective.  Before this module that meant hand-rolling a grid whose
axes are not really axes (each delta touches a different knob), then
eyeballing the table; now it is one declarative call::

    report = repro.ablate(
        WorkStealingScheduler(k=16),
        baseline={"m": 16},
        deltas={
            "no-stealing":   {"k": 0},
            "half-machines": {"m": 8},
            "10%-faster":    {"speed": 1.1},
            "heavy-tail":    {"workload.qps": 1500},
        },
        workload=spec, reps=3, seed=0,
    )
    print(report.summary())       # ranked by |impact on the objective|

Delta keys address four knob layers (the same vocabulary as
:func:`repro.run`):

* scheduler parameters -- any other key becomes a keyword argument of
  the scheduler factory (``{"k": 0}``);
* machine size -- ``m`` / its alias ``num_workers``;
* speed augmentation -- ``speed`` / its alias ``augmentation``;
* workload -- ``workload.<field>`` rewrites one field of the
  :class:`~repro.workloads.generator.WorkloadSpec` via
  :func:`dataclasses.replace` (``{"workload.qps": 1500}``);
* engine -- ``scheduler`` swaps the scheduler factory itself (the
  facade normalizes engine names / instances / classes first).

Every configuration runs through the cached grid-sweep executor as a
single-cell sweep with **identical rep seeds** (cell index 0 for every
config), so comparisons are paired: a delta's impact is never noise
from different workload draws.  Cache keys cover the resolved factory,
parameters, ``m``, ``speed`` and the instance content hash, so each
variant caches independently and a re-run of the same ablation is
served entirely from cache.

Telemetry vocabulary: ``ablate.start``, one ``ablate.delta`` per
variant, ``ablate.done`` -- summarized by
:func:`repro.obs.summarize_events`, sanity-checked by
:func:`repro.obs.audit_events`.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dag.job import JobSet
from repro.errors import SweepConfigError
from repro.experiments.search import _check_objective
from repro.experiments.sweep import METRICS, _grid_sweep

__all__ = ["AblationDelta", "AblationReport", "ablate"]


@dataclass(frozen=True)
class AblationDelta:
    """One variant's outcome: resolved knobs, metrics, impact vs baseline.

    ``impact`` is ``variant - baseline`` per metric (all metrics are
    minimized, so positive = the change made things worse);
    ``rel_impact`` divides by the baseline value (None where the
    baseline is zero).
    """

    name: str
    overrides: Dict[str, Any]
    params: Dict[str, Any]
    m: int
    speed: float
    metrics: Dict[str, float]
    impact: Dict[str, float]
    rel_impact: Dict[str, Optional[float]]
    n_cold: int = 0
    n_cached: int = 0


@dataclass
class AblationReport:
    """All variants of one ablation, ranked by impact on the objective."""

    objective: str
    metric_names: List[str]
    baseline_params: Dict[str, Any]
    baseline_m: int
    baseline_speed: float
    baseline_metrics: Dict[str, float]
    deltas: List[AblationDelta] = field(default_factory=list)
    reps: int = 1
    seed: int = 0
    n_cold: int = 0
    n_cached: int = 0
    wall_s: float = 0.0

    def ranked(self) -> List[AblationDelta]:
        """Variants by descending ``|impact[objective]|`` (ties: name)."""
        return sorted(
            self.deltas,
            key=lambda d: (-abs(d.impact[self.objective]), d.name),
        )

    def __getitem__(self, name: str) -> AblationDelta:
        for d in self.deltas:
            if d.name == name:
                return d
        raise KeyError(name)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (the CLI's ``--json`` output)."""
        return {
            "objective": self.objective,
            "metric_names": list(self.metric_names),
            "baseline": {
                "params": dict(self.baseline_params),
                "m": self.baseline_m,
                "speed": self.baseline_speed,
                "metrics": dict(self.baseline_metrics),
            },
            "deltas": [
                {
                    "name": d.name,
                    "overrides": dict(d.overrides),
                    "params": dict(d.params),
                    "m": d.m,
                    "speed": d.speed,
                    "metrics": dict(d.metrics),
                    "impact": dict(d.impact),
                    "rel_impact": dict(d.rel_impact),
                }
                for d in self.ranked()
            ],
            "reps": self.reps,
            "seed": self.seed,
            "n_cold": self.n_cold,
            "n_cached": self.n_cached,
            "wall_s": self.wall_s,
        }

    def summary(self) -> str:
        """Aligned text report, most impactful delta first."""
        title = f"ablation report (objective: {self.objective}, minimize)"
        lines = [title, "=" * len(title)]
        lines.append(
            f"{'baseline':<12}params={self.baseline_params}  "
            f"m={self.baseline_m}  speed={self.baseline_speed:g}  "
            f"{self.objective}={self.baseline_metrics[self.objective]:.3f}"
        )
        lines.append(
            f"{'runs':<12}{1 + len(self.deltas)} configs x {self.reps} reps "
            f"(seed {self.seed}): {self.n_cold} cold, "
            f"{self.n_cached} cached"
        )
        header = (
            f"{'delta':<20}{self.objective:>14}{'impact':>12}{'rel':>9}"
            f"  overrides"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for d in self.ranked():
            rel = d.rel_impact[self.objective]
            rel_s = f"{rel:+.1%}" if rel is not None else "-"
            lines.append(
                f"{d.name:<20}{d.metrics[self.objective]:>14.3f}"
                f"{d.impact[self.objective]:>+12.3f}{rel_s:>9}"
                f"  {d.overrides}"
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown table of the ranked report."""
        obj = self.objective
        lines = [
            "# Ablation report",
            "",
            f"Objective: `{obj}` (minimize) — baseline "
            f"`{self.baseline_params}`, m={self.baseline_m}, "
            f"speed={self.baseline_speed:g}, "
            f"{obj}={self.baseline_metrics[obj]:.3f}; "
            f"{self.reps} reps, seed {self.seed}.",
            "",
            f"| delta | overrides | {obj} | impact | rel |",
            "|---|---|---:|---:|---:|",
        ]
        for d in self.ranked():
            rel = d.rel_impact[obj]
            rel_s = f"{rel:+.1%}" if rel is not None else "—"
            lines.append(
                f"| {d.name} | `{d.overrides}` | {d.metrics[obj]:.3f} "
                f"| {d.impact[obj]:+.3f} | {rel_s} |"
            )
        lines.append("")
        return "\n".join(lines)


def _resolve_config(
    who: str,
    overrides: Mapping[str, Any],
    base_factory: Callable[..., Any],
    base_params: Dict[str, Any],
    base_m: int,
    base_speed: float,
    base_workload: Callable[[int], JobSet],
) -> Tuple[Callable[..., Any], Dict[str, Any], int, float, Any]:
    """Apply one override mapping on top of the baseline knobs.

    Returns ``(factory, scheduler_params, m, speed, workload)``.  Alias
    pairs (``m``/``num_workers``, ``speed``/``augmentation``) may not
    disagree inside one mapping; ``workload.<field>`` rewrites require a
    dataclass workload (a :class:`WorkloadSpec`).
    """
    factory = base_factory
    params = dict(base_params)
    m, speed, workload = base_m, base_speed, base_workload
    size_seen: Dict[str, Any] = {}
    speed_seen: Dict[str, Any] = {}
    wl_fields: Dict[str, Any] = {}
    for key, value in overrides.items():
        if not isinstance(key, str) or not key:
            raise SweepConfigError(
                f"{who}: override keys must be non-empty strings, got {key!r}"
            )
        if key in ("m", "num_workers"):
            size_seen[key] = value
        elif key in ("speed", "augmentation"):
            speed_seen[key] = value
        elif key == "scheduler":
            if not callable(value):
                raise SweepConfigError(
                    f"{who}: 'scheduler' override must be callable (the "
                    f"facade repro.ablate() also accepts engine names and "
                    f"scheduler instances), got {value!r}"
                )
            factory = value
        elif key.startswith("workload."):
            wl_fields[key[len("workload."):]] = value
        else:
            params[key] = value
    if len(set(map(repr, size_seen.values()))) > 1:
        raise SweepConfigError(
            f"{who}: 'm' and 'num_workers' are aliases but disagree: "
            f"{size_seen}"
        )
    for value in size_seen.values():
        if not isinstance(value, int) or value < 1:
            raise SweepConfigError(
                f"{who}: machine size must be a positive int, got {value!r}"
            )
        m = value
    if len(set(map(repr, speed_seen.values()))) > 1:
        raise SweepConfigError(
            f"{who}: 'speed' and 'augmentation' are aliases but disagree: "
            f"{speed_seen}"
        )
    for value in speed_seen.values():
        if not isinstance(value, (int, float)) or not value > 0:
            raise SweepConfigError(
                f"{who}: speed must be a positive number, got {value!r}"
            )
        speed = float(value)
    if wl_fields:
        if not dataclasses.is_dataclass(workload):
            raise SweepConfigError(
                f"{who}: 'workload.*' overrides need a dataclass workload "
                f"(e.g. WorkloadSpec), got {type(workload).__name__}"
            )
        known = {f.name for f in dataclasses.fields(workload)}
        unknown = sorted(set(wl_fields) - known)
        if unknown:
            raise SweepConfigError(
                f"{who}: unknown workload field(s) {unknown}; "
                f"available: {sorted(known)}"
            )
        workload = dataclasses.replace(workload, **wl_fields)
    return factory, params, m, speed, workload


def ablate(
    scheduler_factory: Callable[..., Any],
    baseline: Mapping[str, Any],
    deltas: Mapping[str, Mapping[str, Any]],
    jobset_factory: Callable[[int], JobSet],
    m: int,
    objective: str = "max_flow",
    metrics: Optional[Sequence[str]] = None,
    reps: int = 1,
    seed: int = 0,
    speed: float = 1.0,
    cache: Any = None,
    max_workers: Optional[int] = None,
    telemetry: Optional[Any] = None,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
) -> AblationReport:
    """Run a baseline plus one variant per named delta; rank the impact.

    ``baseline`` holds the baseline's knob overrides (same vocabulary
    as delta mappings -- scheduler params, ``m``/``num_workers``,
    ``speed``/``augmentation``, ``workload.<field>``) applied on top of
    the call-level ``m``/``speed``/``jobset_factory``.  Each entry of
    ``deltas`` is applied *on top of the resolved baseline*,
    independently -- classic one-factor-at-a-time ablation (put two
    knobs in one delta to measure an interaction).

    All configurations share rep seeds (paired comparison) and run
    through the content-addressed cell cache, so repeated reports are
    free and any variant's cells match what :func:`repro.run` computes
    for the same knobs.
    """
    t_start = time.perf_counter()
    if m < 1:
        raise SweepConfigError(f"need m >= 1, got {m}")
    if reps < 1:
        raise SweepConfigError(f"need reps >= 1, got {reps}")
    metric_names = _check_objective(objective, metrics)
    if not isinstance(baseline, Mapping):
        raise SweepConfigError(
            f"baseline must be a mapping of knob -> value, "
            f"got {type(baseline).__name__}"
        )
    if not isinstance(deltas, Mapping) or not deltas:
        raise SweepConfigError(
            "deltas must be a non-empty mapping of name -> overrides"
        )
    for name, overrides in deltas.items():
        if not isinstance(name, str) or not name:
            raise SweepConfigError(
                f"delta names must be non-empty strings, got {name!r}"
            )
        if not isinstance(overrides, Mapping) or not overrides:
            raise SweepConfigError(
                f"delta {name!r} must map at least one knob to a value, "
                f"got {overrides!r}"
            )

    if telemetry is None:
        from repro.obs.telemetry import default_telemetry

        telemetry = default_telemetry()

    base = _resolve_config(
        "baseline", baseline, scheduler_factory, {}, m, speed, jobset_factory
    )

    def run_config(cfg) -> Tuple[Dict[str, float], int, int]:
        factory, params, cfg_m, cfg_speed, workload = cfg
        # A single-cell "grid" of pinned values: cell index 0 for every
        # config, hence identical rep seeds -- the paired-comparison
        # property the impact numbers rest on.
        grid = {name: [value] for name, value in params.items()}
        result = _grid_sweep(
            factory,
            grid,
            workload,
            m=cfg_m,
            reps=reps,
            seed=seed,
            speed=cfg_speed,
            metrics=metric_names,
            max_workers=max_workers,
            cache=cache,
            resume=True,
            telemetry=telemetry,
            cell_timeout=cell_timeout,
            retries=retries,
            allow_empty_grid=True,
        )
        return dict(result.cells[0].metrics), result.n_cold, result.n_cached

    if telemetry is not None:
        telemetry.emit(
            "ablate.start",
            n_deltas=len(deltas),
            objective=objective,
            metrics=metric_names,
            baseline=dict(base[1]),
            m=base[2],
            speed=base[3],
            reps=reps,
            seed=seed,
        )

    baseline_metrics, n_cold, n_cached = run_config(base)
    results: List[AblationDelta] = []
    for name, overrides in deltas.items():
        cfg = _resolve_config(
            f"delta {name!r}", overrides, base[0], base[1], base[2], base[3],
            base[4],
        )
        variant_metrics, cold, cached = run_config(cfg)
        n_cold += cold
        n_cached += cached
        impact = {
            k: variant_metrics[k] - baseline_metrics[k] for k in metric_names
        }
        rel = {
            k: (impact[k] / baseline_metrics[k]
                if baseline_metrics[k] != 0 else None)
            for k in metric_names
        }
        delta = AblationDelta(
            name=name,
            overrides=dict(overrides),
            params=dict(cfg[1]),
            m=cfg[2],
            speed=cfg[3],
            metrics=variant_metrics,
            impact=impact,
            rel_impact=rel,
            n_cold=cold,
            n_cached=cached,
        )
        results.append(delta)
        if telemetry is not None:
            telemetry.emit(
                "ablate.delta",
                name=name,
                overrides=dict(overrides),
                metrics=variant_metrics,
                impact=impact,
            )

    report = AblationReport(
        objective=objective,
        metric_names=metric_names,
        baseline_params=dict(base[1]),
        baseline_m=base[2],
        baseline_speed=base[3],
        baseline_metrics=baseline_metrics,
        deltas=results,
        reps=reps,
        seed=seed,
        n_cold=n_cold,
        n_cached=n_cached,
        wall_s=round(time.perf_counter() - t_start, 6),
    )
    if telemetry is not None:
        ranked = report.ranked()
        telemetry.emit(
            "ablate.done",
            n_deltas=len(results),
            top=ranked[0].name if ranked else None,
            top_impact=ranked[0].impact[objective] if ranked else None,
            n_cold=n_cold,
            n_cached=n_cached,
            wall_s=report.wall_s,
        )
    return report
