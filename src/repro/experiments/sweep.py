"""Generic parameter-grid sweeps over schedulers.

The named experiments in :mod:`repro.experiments.figures` are hand-built
for the paper's artifacts; this module is the *user-facing* counterpart
for running your own ablations: give it a scheduler factory, a parameter
grid, and a workload factory, and it runs the full cross product with
paired workloads and derived seeds, returning a structured table.

Example -- re-deriving the paper's k sweep in three lines::

    sweep = repro.sweep(
        WorkStealingScheduler,
        {"k": [0, 4, 16, 64]},
        WorkloadSpec(BingDistribution(), 1200, 1500),
        m=16, reps=3, seed=0,
    )
    print(sweep.render())

Entry points: :func:`repro.sweep` is the public facade (ISSUE 4); the
module-level ``grid_sweep`` name survives as a warn-once deprecated
shim over the private :func:`_grid_sweep` executor (ISSUE 9), exactly
like the ``run_work_stealing`` shim of ISSUE 3.  The executor also
powers the adaptive layers: :mod:`repro.experiments.search` evaluates
arbitrary subsets of a grid via ``cells=`` (global cell identity, so
search evaluations are byte-identical to exhaustive-sweep cells), and
:mod:`repro.experiments.ablate` runs single-configuration "grids"
through the same cached path.

Execution pipeline (ISSUE 2): each repetition's instance is built (or
loaded from the content-addressed cache) **once** in the parent -- not
once per cell as the object-graph design did -- then published to pool
workers through shared memory as flat CSR arrays
(:class:`repro.experiments.parallel.SharedInstance`), so tasks carry
kilobytes of coordinates instead of pickled object graphs.  With
``resume=True`` previously computed cells are served from the cell
cache; both paths are bit-identical to a cold serial sweep
(``tests/experiments/test_cache.py``).
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import os
import time
import types
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.base import Scheduler
from repro.dag.flat import (
    FlatInstance,
    content_hash,
    flatten_jobset,
    to_jobset,
)
from repro.dag.job import JobSet
from repro.errors import SweepConfigError
from repro.experiments.cache import CACHE_ENV, SweepCache, cell_key
from repro.experiments.parallel import (
    SharedInstance,
    attach_flat,
    attach_jobset,
    parallel_map,
    reclaim_shared_memory,
    shared_memory_available,
)
from repro.sim.result import ScheduleResult
from repro.sim.rng import derive_seed
from repro.testing.faults import maybe_inject

#: Metric name -> extractor over a ScheduleResult.
METRICS: Dict[str, Callable[[ScheduleResult], float]] = {
    "max_flow": lambda r: r.max_flow,
    "mean_flow": lambda r: r.mean_flow,
    "p99_flow": lambda r: r.flow_percentile(99),
    "max_weighted_flow": lambda r: r.max_weighted_flow,
    "makespan": lambda r: r.makespan,
}


@dataclass(frozen=True)
class SweepCell:
    """One grid point's outcome: parameters plus metric means over reps."""

    params: Dict[str, Any]
    metrics: Dict[str, float]


@dataclass
class SweepResult:
    """All cells of a grid sweep, with a paper-style text rendering.

    ``shard`` is the ``"i/n"`` label when the sweep ran one shard of a
    partitioned grid (``cells`` then holds only that shard's grid
    points, still in global cross-product order), else None.

    ``n_cold`` / ``n_cached`` account for how the (cell, repetition)
    tasks were satisfied: computed fresh vs served from the cell cache.
    The adaptive-search driver (:mod:`repro.experiments.search`) builds
    its cache-reuse claims on these counters.
    """

    param_names: List[str]
    metric_names: List[str]
    cells: List[SweepCell]
    shard: Optional[str] = None
    n_cold: int = 0
    n_cached: int = 0

    def best(self, metric: str = "max_flow") -> SweepCell:
        """The cell minimizing ``metric``."""
        return min(self.cells, key=lambda c: c.metrics[metric])

    def column(self, metric: str) -> List[float]:
        """One metric across cells, in grid order."""
        return [c.metrics[metric] for c in self.cells]

    def render(self) -> str:
        """Aligned table: one row per grid point."""
        header = (
            "".join(f"{p:>12}" for p in self.param_names)
            + "".join(f"{m:>16}" for m in self.metric_names)
        )
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            row = "".join(f"{cell.params[p]!s:>12}" for p in self.param_names)
            row += "".join(
                f"{cell.metrics[m]:>16.3f}" for m in self.metric_names
            )
            lines.append(row)
        return "\n".join(lines)


def _digest_code(code: types.CodeType, h) -> None:
    """Fold a code object's behavior (recursively) into ``h``."""
    h.update(code.co_code)
    h.update(repr(code.co_names).encode())
    h.update(repr(code.co_varnames).encode())
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _digest_code(const, h)
        else:
            h.update(repr(const).encode())


def _freeze_value(value: Any) -> Optional[str]:
    """A run-stable string for a captured value, or None if none exists.

    ``repr`` is stable for the plain parameter values factories actually
    capture (numbers, strings, tuples, classes).  The default object
    repr embeds a memory address, which changes between runs -- a key
    built from it could never hit, so it counts as uncapturable.
    """
    if isinstance(value, types.FunctionType):
        return _callable_token(value)
    r = repr(value)
    return None if " at 0x" in r else r


def _callable_token(fn: Callable) -> Optional[str]:
    """A content-based identity string for a factory, for cell-cache keys.

    Module + qualname alone is not an identity: every lambda (or nested
    function) defined in the same scope shares one qualname, and any
    configuration it captures is invisible -- two factories that build
    *different* schedulers would collide and serve each other's cached
    cells under ``resume``.  The token therefore also folds in the
    factory's bytecode, constants, argument defaults, and captured
    closure values.  Returns None when the behavior cannot be captured
    stably (e.g. a closure over an object whose repr embeds a memory
    address); callers must then bypass the cell cache rather than risk
    a collision.
    """
    base = (
        f"{getattr(fn, '__module__', '?')}."
        f"{getattr(fn, '__qualname__', '?')}"
    )
    if isinstance(fn, functools.partial):
        inner = _callable_token(fn.func)
        frozen = [_freeze_value(a) for a in fn.args]
        for name in sorted(fn.keywords or {}):
            value = _freeze_value(fn.keywords[name])
            frozen.append(None if value is None else f"{name}={value}")
        if inner is None or any(f is None for f in frozen):
            return None
        return "\x1f".join([f"partial({inner})", *frozen])
    if isinstance(fn, type):
        # A named class: the dotted name is its identity.
        return base
    code = getattr(fn, "__code__", None)
    if code is None:
        # A callable object: identified by its (address-free) repr.
        return _freeze_value(fn)
    h = hashlib.sha256()
    _digest_code(code, h)
    frozen = []
    for value in getattr(fn, "__defaults__", None) or ():
        frozen.append(_freeze_value(value))
    for name in sorted(getattr(fn, "__kwdefaults__", None) or {}):
        value = _freeze_value(fn.__kwdefaults__[name])
        frozen.append(None if value is None else f"{name}={value}")
    for cell in getattr(fn, "__closure__", None) or ():
        try:
            frozen.append(_freeze_value(cell.cell_contents))
        except ValueError:  # pragma: no cover - not-yet-filled cell
            frozen.append("<empty-cell>")
    if any(f is None for f in frozen):
        return None
    return "\x1f".join([base, h.hexdigest(), *frozen])


def _sweep_rep_task(task) -> Dict[str, Any]:
    """One (grid point, repetition) cell, as a picklable top-level task.

    ``task`` is ``(scheduler_factory, params, instance_handle, m, speed,
    run_seed, metrics, task_index)``.  ``instance_handle`` is either a
    :attr:`SharedInstance.handle` dict (zero-copy path) or a pickled
    :class:`JobSet` (fallback when shared memory is unavailable).  The
    run seed arrives precomputed from the cell coordinates, so where (or
    in what order) the task runs cannot affect its result -- which is
    also what makes the task safely *re-runnable* after a worker crash
    or deadline kill.  ``task_index`` is the cell's global task index;
    it exists so the deterministic fault harness
    (:mod:`repro.testing.faults`) can target one specific cell.

    Returns ``{"metrics", "wall_s", "pid", "stats"}``: the extracted
    metric values (the only part results depend on -- cheaper to ship
    between processes than a full ScheduleResult) plus the worker-side
    observability payload the parent turns into ``cell.run`` telemetry
    events.  Wall time is measured around the simulation only, inside
    the worker, so pool queueing never inflates it.
    """
    (factory, params, instance_handle, m, speed, run_seed, metrics,
     task_index) = task
    maybe_inject("dispatch", index=task_index)
    scheduler = factory(**params)
    if isinstance(instance_handle, dict):
        # Flat-consuming schedulers (engine="flat") take the attached
        # CSR arrays directly -- zero-copy end to end, no per-worker
        # object-graph rebuild.
        if getattr(scheduler, "consumes_flat", False):
            jobset = attach_flat(instance_handle)
        else:
            jobset = attach_jobset(instance_handle)
    else:
        jobset = instance_handle
    maybe_inject("cell", index=task_index)
    t0 = time.perf_counter()
    result = scheduler.run(jobset, m=m, speed=speed, seed=run_seed)
    wall = time.perf_counter() - t0
    return {
        "metrics": {name: METRICS[name](result) for name in metrics},
        "wall_s": round(wall, 6),
        "pid": os.getpid(),
        "stats": result.stats.as_dict(),
    }


#: Default minimum number of cold repetitions of one cell before the
#: sweep fuses them into a single batched task (ISSUE 10).  Below this,
#: the arena build cost is not worth amortizing; override with
#: ``REPRO_BATCH=<n>`` or disable batching entirely with
#: ``REPRO_BATCH=0``.
_BATCH_MIN_REPS = 4


def _batch_threshold() -> Optional[int]:
    """The rep-count floor for batched dispatch, or None when disabled.

    ``REPRO_BATCH`` unset -> :data:`_BATCH_MIN_REPS`; ``0`` / ``off`` ->
    None (every repetition runs as its own task, the pre-ISSUE-10
    dispatch); any other integer -> that floor (clamped to >= 2, a batch
    of one amortizes nothing).
    """
    raw = os.environ.get("REPRO_BATCH", "").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return None
    if not raw:
        return _BATCH_MIN_REPS
    try:
        return max(2, int(raw))
    except ValueError:
        raise SweepConfigError(
            f"REPRO_BATCH must be an integer rep threshold or 0/off, "
            f"got {raw!r}"
        ) from None


def _sweep_batch_task(task) -> Dict[str, Any]:
    """All cold repetitions of one batch-eligible cell, as one task.

    ``task`` is ``(engine_kwargs, handles, m, speed, run_seeds, metrics,
    task_indices)``: the per-rep instance handles and coordinate-derived
    run seeds of the fused (cell, rep) tasks, plus the cell's engine
    configuration as validated by
    :func:`repro.sim.batch_engine.batch_options`.  The whole batch is
    evaluated in one :func:`~repro.sim.batch_engine.run_batch` arena;
    results are bit-identical per rep to the unbatched
    :func:`_sweep_rep_task` path, so cache cells written from either
    dispatch are byte-identical.  Re-running the batch after a crash or
    injected fault reproduces every rep exactly (coordinate-derived
    seeds, like the rep task).

    Returns ``{"batch": [per-rep payloads...], "wall_s", "pid"}`` where
    each per-rep payload has the :func:`_sweep_rep_task` shape; per-rep
    ``wall_s`` is the batch wall time amortized evenly (individual rep
    attribution inside one arena call is not meaningful).
    """
    from repro.sim.batch_engine import run_batch

    (engine_kwargs, handles, m, speed, run_seeds, metrics,
     task_indices) = task
    for i in task_indices:
        maybe_inject("dispatch", index=i)
    instances = [
        attach_flat(h) if isinstance(h, dict) else h for h in handles
    ]
    for i in task_indices:
        maybe_inject("cell", index=i)
    t0 = time.perf_counter()
    results = run_batch(
        instances, m=m, speed=speed, seeds=list(run_seeds), **engine_kwargs
    )
    wall = time.perf_counter() - t0
    amortized = round(wall / len(results), 6)
    pid = os.getpid()
    return {
        "batch": [
            {
                "metrics": {name: METRICS[name](r) for name in metrics},
                "wall_s": amortized,
                "pid": pid,
                "stats": r.stats.as_dict(),
            }
            for r in results
        ],
        "wall_s": round(wall, 6),
        "pid": pid,
    }


def _sweep_task(unit) -> Dict[str, Any]:
    """Top-level dispatcher over tagged sweep units.

    ``unit`` is ``("rep", rep_task)`` or ``("batch", batch_task)`` --
    one picklable entry point for :func:`parallel_map` regardless of how
    the planner grouped the cold tasks.
    """
    kind, payload = unit
    if kind == "rep":
        return _sweep_rep_task(payload)
    return _sweep_batch_task(payload)


def _materialize_rep_instance(
    jobset_factory: Callable[[int], JobSet],
    jobset_seed: int,
    cache: Optional[SweepCache],
):
    """Build or cache-load one repetition's instance.

    Returns ``(jobset, flat, from_cache)``.  The instance cache engages
    only for factories exposing ``cache_key`` (e.g.
    :class:`~repro.workloads.generator.WorkloadSpec`): arbitrary
    callables have no stable content identity to key on.  A flat view is
    always produced -- the dispatch and cell-cache layers both need it.
    """
    key_fn = getattr(jobset_factory, "cache_key", None)
    instance_key = key_fn(jobset_seed) if callable(key_fn) else None

    if cache is not None and instance_key is not None:
        flat = cache.load_instance(instance_key)
        if flat is not None:
            return to_jobset(flat), flat, True

    build_flat = getattr(jobset_factory, "build_flat", None)
    if callable(build_flat):
        # Vectorized path: CSR arrays straight from the generator.
        flat = build_flat(jobset_seed)
        jobset = to_jobset(flat)
    else:
        jobset = jobset_factory(jobset_seed)
        flat = flatten_jobset(jobset)
    if cache is not None and instance_key is not None:
        cache.store_instance(instance_key, flat)
    return jobset, flat, False


def _grid_sweep(
    scheduler_factory: Callable[..., Scheduler],
    grid: Dict[str, Sequence[Any]],
    jobset_factory: Callable[[int], JobSet],
    m: int,
    reps: int = 1,
    seed: int = 0,
    speed: float = 1.0,
    metrics: Sequence[str] = ("max_flow", "mean_flow"),
    max_workers: int | None = None,
    cache: Union[SweepCache, str, None] = None,
    resume: bool = False,
    telemetry: Optional[Any] = None,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
    shard: Union[tuple, str, None] = None,
    cells: Optional[Sequence[int]] = None,
    allow_empty_grid: bool = False,
) -> SweepResult:
    """Run the full parameter cross product with paired comparisons.

    Parameters
    ----------
    scheduler_factory:
        Called with one keyword argument per grid dimension; returns the
        scheduler for that cell.
    grid:
        Parameter name -> values to sweep (cross product over all).
    jobset_factory:
        Called with a derived rep seed; must return the instance for
        that repetition.  The same rep seeds are used for every cell,
        so comparisons across cells are paired.  Each repetition's
        instance is built once in the parent and shared with workers
        through shared memory.  A :class:`WorkloadSpec` works directly
        (it is callable) and additionally unlocks the instance cache
        and the fully vectorized flat build path.
    m, speed:
        Machine configuration shared by every cell.
    reps:
        Repetitions per cell; metrics are means across them.
    seed:
        Base seed; cell and rep seeds derive from it.
    metrics:
        Metric names from :data:`METRICS`.
    max_workers:
        Process-pool width for fanning out (cell, repetition) tasks; see
        :func:`repro.experiments.parallel.parallel_map` for resolution
        and fallback rules.  Results are aggregated in deterministic
        (cell, rep) order, so parallel and serial sweeps are
        bit-identical.  Lambda scheduler factories cannot cross process
        boundaries and run serially (with a one-time warning).

        Cells with >= 4 cold repetitions of a batch-eligible
        configuration (see :func:`repro.sim.batch_engine.batch_options`)
        are fused into one task evaluating every rep in a single
        :func:`~repro.sim.batch_engine.run_batch` arena -- bit-identical
        per rep, so cache cells and aggregated means are unchanged;
        only the wall time drops.  ``REPRO_BATCH=<n>`` adjusts the rep
        floor, ``REPRO_BATCH=0`` disables batching; sweeps with a
        ``cell_timeout`` stay unbatched so the deadline keeps covering
        exactly one simulation.
    cache:
        A :class:`~repro.experiments.cache.SweepCache`, a directory
        path, or None.  When set, generated instances (for factories
        with ``cache_key``) and computed cell results are stored in it.
    resume:
        With a cache, serve previously computed (cell, rep) results
        from it instead of recomputing; cold cells still run and are
        stored.  Cached numbers are the exact floats of the original
        run, so resumed sweeps are bit-identical to cold ones.  Cell
        keys include a content token of ``scheduler_factory`` (bytecode,
        defaults, captured closure values -- not just its name), so two
        different lambdas never serve each other's cells; a factory
        whose captured state cannot be keyed stably bypasses the cell
        cache entirely, with a :class:`RuntimeWarning`.
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  When given, the sweep
        emits structured events (``sweep.start``, ``shm.publish``,
        ``dispatch.*``, ``batch.start`` / ``batch.flush`` /
        ``batch.done`` around fused rep batches,
        ``cache.*``, ``fault.*`` / ``pool.respawn`` for
        every recovery action, ``cell.run`` with per-cell wall
        time / worker pid / engine stats, ``cell.cached``,
        ``sweep.done``) and writes a run manifest (config hash, rep
        seeds, instance content hashes, package versions, timings) under
        ``<cache>/manifests/`` -- or next to the telemetry log file when
        no cache is in play.  Telemetry never changes any result: the
        sweep is bit-identical with it on or off.
    cell_timeout, retries:
        Fault-tolerance knobs forwarded to
        :func:`repro.experiments.parallel.parallel_map`: the per-cell
        deadline in seconds (default ``REPRO_CELL_TIMEOUT`` /
        ``--cell-timeout``) and the per-cell retry budget for crashed or
        hung workers (default ``REPRO_RETRIES`` / ``--retries``, else
        2).  Retried cells re-run from their coordinate-derived seeds,
        so recovery never changes a number; exhaustion raises
        :class:`~repro.errors.CellTimeoutError` /
        :class:`~repro.errors.CellCrashedError`.  Completed cells are
        checkpointed into the cache as they finish, so an aborted sweep
        resumes losslessly with ``resume=True``.
    shard:
        Run one shard of the grid instead of all of it: an ``(index,
        count)`` tuple or the equivalent ``"index/count"`` string (both
        forms normalize identically; invalid input raises
        :class:`~repro.errors.SweepConfigError`).  Shard ``i`` of ``n``
        owns a contiguous, balanced slice of the grid's cross-product
        cells -- the disjoint union over all shards is exactly the
        unsharded sweep.  Cell keys and per-cell run seeds use *global*
        cell indices, so a shard's cached cells are exactly the cells
        the unsharded sweep would cache: run each shard on its own host
        into its own cache dir, combine with
        :func:`repro.experiments.shard.merge_caches`, and a final
        ``resume=True`` sweep over the merged cache is bit-identical to
        a single-host run (EXPERIMENTS.md has the full recipe).  A
        sharded sweep requires an explicit ``cache`` (or ``REPRO_CACHE``)
        and a cache-keyable scheduler factory -- silently sharding into
        the implicit default directory, or computing shards whose cells
        cannot be cached for merging, raises ``SweepConfigError``
        instead.  Each shard writes a shard manifest (grid digest,
        coordinate range, owned cell keys, host metadata) under
        ``<cache>/manifests/`` *before* running, so even a killed shard
        leaves provenance for the merge step.
    cells:
        Run only these *global* cross-product cell indices (any subset,
        any order; evaluated and returned in ascending global order).
        This is the arbitrary-subset generalization of ``shard``:
        per-cell run seeds and cache keys still derive from a cell's
        global position, so evaluating a subset produces cells (and
        cache files) byte-identical to the ones an exhaustive sweep of
        the full grid would produce at the same coordinates.  The
        adaptive-search driver (:mod:`repro.experiments.search`) relies
        on this to make refinement rounds nearly free under ``resume``.
        Mutually exclusive with ``shard``.
    allow_empty_grid:
        Internal: permit ``grid={}`` -- one cell, no parameters
        (``scheduler_factory()`` called with no arguments).  The
        ablation harness uses it for configurations whose knobs all
        live outside the scheduler (machine size, speed, workload).

    Returns
    -------
    SweepResult
        Cells in cross-product order (last grid key varies fastest).
    """
    t_start = time.perf_counter()
    if m < 1:
        raise SweepConfigError(f"need m >= 1, got {m}")
    if reps < 1:
        raise SweepConfigError(f"need reps >= 1, got {reps}")
    if not grid and not allow_empty_grid:
        raise SweepConfigError("grid must have at least one dimension")
    if cells is not None and shard is not None:
        raise SweepConfigError(
            "cells= and shard= are mutually exclusive: shard partitions "
            "the grid into contiguous slices, cells= names an explicit "
            "subset -- pass one"
        )
    unknown = [name for name in metrics if name not in METRICS]
    if unknown:
        raise SweepConfigError(
            f"unknown metrics {unknown}; available: {sorted(METRICS)}"
        )
    spec = None
    if shard is not None:
        from repro.experiments.shard import parse_shard

        spec = parse_shard(shard)
    if isinstance(cache, (str,)) or hasattr(cache, "__fspath__"):
        cache = SweepCache(cache)
    if cache is None and spec is not None:
        # Precedence rule (see repro.experiments.cache): explicit arg >
        # REPRO_CACHE > default -- except a sharded sweep refuses the
        # implicit default, because n shards falling back to whatever
        # ".repro_cache" means on each host produces caches nobody can
        # find (or, on one host, a single dir the shards were meant to
        # keep separate).
        if os.environ.get(CACHE_ENV):
            cache = SweepCache()
        else:
            raise SweepConfigError(
                f"sharded sweep (shard={spec}) needs an explicit cache "
                f"directory: pass cache=... (or set {CACHE_ENV}) so each "
                f"shard's results land somewhere merge_caches can find. "
                f"Refusing to silently shard into the default "
                f"'.repro_cache'."
            )
    if cache is None and resume:
        # resume without a cache historically no-opped; resolve the
        # documented precedence chain instead so `resume=True` alone
        # picks up REPRO_CACHE or the default dir (matches the CLI and
        # run_figure2_cells).
        cache = SweepCache()
    if telemetry is None:
        # CLI path: the --telemetry flag routes through REPRO_TELEMETRY
        # rather than threading a parameter into every figure function.
        from repro.obs.telemetry import default_telemetry

        telemetry = default_telemetry()
    if cache is not None and telemetry is not None and cache.telemetry is None:
        # Bind the sweep's sink to the cache layer so instance/cell
        # loads and stores show up in the same event stream.
        cache.telemetry = telemetry

    param_names = list(grid)
    combos = list(itertools.product(*grid.values()))
    metric_names = list(metrics)

    # One instance per repetition, built (or cache-loaded) in the
    # parent.  The old design shipped `jobset_factory` into every task,
    # regenerating the *same* rep instance once per grid point.
    rep_jobsets: List[JobSet] = []
    rep_flats: List[FlatInstance] = []
    rep_hashes: List[str] = []
    for rep in range(reps):
        jobset_seed = derive_seed(seed, 9000, rep)
        jobset, flat, _ = _materialize_rep_instance(
            jobset_factory, jobset_seed, cache
        )
        rep_jobsets.append(jobset)
        rep_flats.append(flat)
        rep_hashes.append(content_hash(flat))

    factory_token = _callable_token(scheduler_factory)
    if spec is not None and factory_token is None:
        # An unkeyable factory bypasses the cell cache, and a shard
        # whose cells are never cached has nothing to merge -- the whole
        # point of sharding.  Fail loudly instead of burning n hosts.
        raise SweepConfigError(
            f"sharded sweep (shard={spec}) needs a cache-keyable "
            f"scheduler factory, but {scheduler_factory!r} captures "
            f"state with no stable content identity, so its cells "
            f"cannot be cached for merging. Use a module-level "
            f"function, class, or functools.partial over plain values."
        )
    if cache is not None and factory_token is None:
        warnings.warn(
            f"grid_sweep: cannot derive a stable content key for "
            f"scheduler factory {scheduler_factory!r} (it captures state "
            f"whose identity is not reproducible across runs); the cell "
            f"cache is bypassed for this sweep. Use a module-level "
            f"function, class, or functools.partial over plain values "
            f"to enable cell caching.",
            RuntimeWarning,
            stacklevel=2,
        )
        if telemetry is not None:
            telemetry.emit(
                "cache.bypass", factory=repr(scheduler_factory)
            )
    # The shard's slice of the grid, as *global* cell indices: run
    # seeds and cell keys derive from a cell's cross-product position,
    # so a sharded cell is byte-for-byte the cell the unsharded sweep
    # would compute (and cache) at the same coordinates.
    if spec is not None:
        from repro.experiments.shard import shard_cells

        cell_indices = list(shard_cells(len(combos), spec))
    elif cells is not None:
        cell_indices = sorted({int(c) for c in cells})
        if len(cell_indices) != len(list(cells)):
            raise SweepConfigError(
                f"cells= contains duplicate indices: {sorted(cells)}"
            )
        if not cell_indices:
            raise SweepConfigError("cells= must name at least one cell")
        if cell_indices[0] < 0 or cell_indices[-1] >= len(combos):
            raise SweepConfigError(
                f"cells= indices must lie in [0, {len(combos) - 1}] "
                f"(the grid has {len(combos)} cells), got "
                f"{cell_indices[0]}..{cell_indices[-1]}"
            )
    else:
        cell_indices = list(range(len(combos)))

    tasks: List[tuple] = []
    task_keys: List[Optional[str]] = []
    cached_results: Dict[int, Dict[str, float]] = {}
    for cell_idx in cell_indices:
        combo = combos[cell_idx]
        params = dict(zip(param_names, combo))
        for rep in range(reps):
            run_seed = derive_seed(seed, cell_idx, rep)
            key = None
            if cache is not None and factory_token is not None:
                key = cell_key(
                    "grid-cell",
                    rep_hashes[rep],
                    factory_token,
                    sorted(params.items()),
                    m,
                    speed,
                    run_seed,
                    metric_names,
                )
            task_index = len(tasks)
            task_keys.append(key)
            if resume and key is not None:
                hit = cache.load_cell(key)
                if hit is not None and set(hit) >= set(metric_names):
                    cached_results[task_index] = {
                        name: hit[name] for name in metric_names
                    }
            tasks.append((params, rep, run_seed))

    # Shard manifest: written at *plan* time, before any cell runs, so
    # a shard killed mid-flight still leaves a provenance record of
    # which cell keys its partial cache may contain (merge_caches uses
    # it to attribute conflicts to a host/shard/time).
    if spec is not None:
        from repro.experiments.shard import (
            build_shard_manifest,
            grid_digest,
            write_shard_manifest,
        )

        digest = grid_digest(
            grid, factory_token, m, speed, seed, reps, metric_names
        )
        shard_manifest = build_shard_manifest(
            spec,
            digest,
            n_cells_total=len(combos),
            reps=reps,
            cell_keys=[k for k in task_keys if k is not None],
            instance_hashes=rep_hashes,
            cache_root=cache.root,
        )
        write_shard_manifest(shard_manifest, cache)
        if telemetry is not None:
            telemetry.emit(
                "shard.plan",
                shard=str(spec),
                grid_digest=digest,
                cell_start=shard_manifest.cell_start,
                cell_stop=shard_manifest.cell_stop,
                n_cells_total=len(combos),
                cache_dir=str(cache.root),
            )

    # Fan out only the cold tasks.
    cold_indices = [i for i in range(len(tasks)) if i not in cached_results]
    if telemetry is not None:
        telemetry.emit(
            "sweep.start",
            kind="grid_sweep",
            n_cells=len(cell_indices),
            reps=reps,
            n_tasks=len(tasks),
            n_cold=len(cold_indices),
            m=m,
            speed=speed,
            metrics=metric_names,
            factory=factory_token or repr(scheduler_factory),
            shard=str(spec) if spec is not None else None,
        )
    shared: List[SharedInstance] = []
    try:
        use_shm = shared_memory_available() and len(cold_indices) > 0
        if use_shm:
            try:
                for rep, jobset in enumerate(rep_jobsets):
                    shared.append(
                        SharedInstance(rep_flats[rep], jobset=jobset)
                    )
                    if telemetry is not None:
                        telemetry.emit(
                            "shm.publish",
                            rep=rep,
                            nbytes=rep_flats[rep].nbytes,
                            instance=rep_hashes[rep],
                        )
            except (OSError, NotImplementedError):
                # Shared memory can fail at runtime on locked-down
                # platforms (no /dev/shm); fall back to pickling.
                for s in shared:
                    s.close()
                shared = []
                use_shm = False

        def handle_for(rep: int):
            return shared[rep].handle if use_shm else rep_jobsets[rep]

        # Batched dispatch (ISSUE 10): when a grid point has enough cold
        # repetitions and its scheduler is batch-eligible (see
        # batch_options), fuse them into ONE task evaluating all reps in
        # a single run_batch arena -- bit-identical per rep, so the
        # cache cells written from a batched task are byte-identical to
        # serial-rep cells.  Per-cell deadlines keep per-simulation
        # semantics, so timed sweeps stay unbatched (a fused task would
        # silently get R simulations per deadline).
        from repro.sim.batch_engine import batch_options

        batch_min = _batch_threshold()
        timeout_active = cell_timeout is not None or bool(
            os.environ.get("REPRO_CELL_TIMEOUT", "").strip()
        )
        cell_groups: Dict[int, List[int]] = {}
        for i in cold_indices:
            cell_groups.setdefault(i // reps, []).append(i)

        cold_units: List[tuple] = []
        n_batches = 0
        n_batched_reps = 0
        for local_cell in sorted(cell_groups):
            idxs = cell_groups[local_cell]
            engine_kwargs = None
            if (
                batch_min is not None
                and not timeout_active
                and len(idxs) >= batch_min
            ):
                try:
                    engine_kwargs = batch_options(
                        scheduler_factory(**tasks[idxs[0]][0])
                    )
                except Exception:
                    # A factory that fails in the parent will fail in
                    # the workers too; let the per-rep path surface it
                    # through the supervised executor's error handling.
                    engine_kwargs = None
            if engine_kwargs is None:
                for i in idxs:
                    cold_units.append((
                        "rep",
                        (
                            scheduler_factory,
                            tasks[i][0],
                            handle_for(tasks[i][1]),
                            m,
                            speed,
                            tasks[i][2],
                            metric_names,
                            i,
                        ),
                    ))
            else:
                n_batches += 1
                n_batched_reps += len(idxs)
                if telemetry is not None:
                    telemetry.emit(
                        "batch.start",
                        params=tasks[idxs[0]][0],
                        n_reps=len(idxs),
                        m=m,
                        speed=speed,
                    )
                cold_units.append((
                    "batch",
                    (
                        engine_kwargs,
                        [handle_for(tasks[i][1]) for i in idxs],
                        m,
                        speed,
                        [tasks[i][2] for i in idxs],
                        metric_names,
                        tuple(idxs),
                    ),
                ))

        def unit_payloads(unit: tuple, payload: Dict[str, Any]):
            """(task index, per-rep payload) pairs of one finished unit."""
            if unit[0] == "rep":
                return [(unit[1][7], payload)]
            return list(zip(unit[1][6], payload["batch"]))

        def checkpoint(unit_idx: int, payload: Dict[str, Any]) -> None:
            # Flush each finished cell to the cache the moment its
            # result lands in the parent (completion order), so a sweep
            # killed mid-flight loses nothing already computed: the
            # rerun resumes from these cells.  A checkpoint-write
            # failure must not abort the sweep -- the result is still
            # in memory; only resumability degrades.
            unit = cold_units[unit_idx]
            if unit[0] == "batch" and telemetry is not None:
                telemetry.emit(
                    "batch.flush",
                    params=tasks[unit[1][6][0]][0],
                    n_reps=len(unit[1][6]),
                    wall_s=payload["wall_s"],
                    pid=payload["pid"],
                )
            if cache is None:
                return
            for i, rep_payload in unit_payloads(unit, payload):
                if task_keys[i] is None:
                    continue
                try:
                    cache.store_cell(task_keys[i], rep_payload["metrics"])
                except Exception as exc:
                    if telemetry is not None:
                        telemetry.emit(
                            "cache.store_failed",
                            key=task_keys[i],
                            error=f"{type(exc).__name__}: {exc}",
                        )

        cold_results = parallel_map(
            _sweep_task,
            cold_units,
            max_workers=max_workers,
            telemetry=telemetry,
            cell_timeout=cell_timeout,
            retries=retries,
            on_result=checkpoint,
        )
        if n_batches and telemetry is not None:
            telemetry.emit(
                "batch.done",
                n_batches=n_batches,
                n_batched_reps=n_batched_reps,
                n_unbatched=len(cold_indices) - n_batched_reps,
            )
    finally:
        for s in shared:
            s.close()
        # Belt and braces: reclaim anything the close loop could not
        # reach (e.g. a publish that died between block creation and
        # list append).  No-op when everything closed cleanly.
        reclaim_shared_memory(telemetry)

    rep_metrics: List[Dict[str, float]] = [None] * len(tasks)  # type: ignore
    for unit, payload in zip(cold_units, cold_results):
        for i, rep_payload in unit_payloads(unit, payload):
            values = rep_payload["metrics"]
            rep_metrics[i] = values
            if telemetry is not None:
                telemetry.emit(
                    "cell.run",
                    params=tasks[i][0],
                    rep=tasks[i][1],
                    seed=tasks[i][2],
                    wall_s=rep_payload["wall_s"],
                    pid=rep_payload["pid"],
                    stats=rep_payload["stats"],
                    metrics=values,
                )
    for i, values in cached_results.items():
        rep_metrics[i] = values
        if telemetry is not None:
            telemetry.emit(
                "cell.cached",
                params=tasks[i][0],
                rep=tasks[i][1],
                seed=tasks[i][2],
                metrics=values,
            )

    # Aggregate in (cell, rep) task order -- the same float summation
    # order as the serial loop, keeping means bit-identical.  Task
    # positions are local to this run's cell list (the shard's slice,
    # or the whole grid), while cell identity stays global.
    out_cells: List[SweepCell] = []
    for local_idx, cell_idx in enumerate(cell_indices):
        combo = combos[cell_idx]
        sums = {name: 0.0 for name in metric_names}
        for rep in range(reps):
            values = rep_metrics[local_idx * reps + rep]
            for name in metric_names:
                sums[name] += values[name]
        out_cells.append(
            SweepCell(
                params=dict(zip(param_names, combo)),
                metrics={name: sums[name] / reps for name in metric_names},
            )
        )
    # Run manifest: written whenever there is a durable place to put it
    # (a cache dir, or the telemetry log's directory); a purely in-memory
    # run leaves no artifact, so there is nothing to make reproducible.
    manifest_path = None
    log_path = telemetry.path if telemetry is not None else None
    if cache is not None or log_path is not None:
        from repro.obs.manifest import build_manifest, write_manifest

        manifest = build_manifest(
            kind="grid_sweep",
            config={
                "grid": {name: list(vals) for name, vals in grid.items()},
                "m": m,
                "speed": speed,
                "reps": reps,
                "metrics": metric_names,
                "factory": factory_token or repr(scheduler_factory),
                "shard": str(spec) if spec is not None else None,
                "cells": cell_indices if cells is not None else None,
            },
            seed=seed,
            rep_seeds=[derive_seed(seed, 9000, rep) for rep in range(reps)],
            instance_hashes=rep_hashes,
            timings={"wall_s": round(time.perf_counter() - t_start, 6)},
            event_log=log_path,
            cache_dir=cache.root if cache is not None else None,
            extra={
                "n_cells": len(cell_indices),
                "n_tasks": len(tasks),
                "n_cold": len(cold_indices),
                "n_cached": len(cached_results),
            },
        )
        directory = (
            cache.root if cache is not None else log_path.parent
        ) / "manifests"
        manifest_path = write_manifest(manifest, directory)
    if telemetry is not None:
        telemetry.emit(
            "sweep.done",
            kind="grid_sweep",
            wall_s=round(time.perf_counter() - t_start, 6),
            n_cold=len(cold_indices),
            n_cached=len(cached_results),
            manifest=str(manifest_path) if manifest_path else None,
        )

    return SweepResult(
        param_names=param_names,
        metric_names=metric_names,
        cells=out_cells,
        shard=str(spec) if spec is not None else None,
        n_cold=len(cold_indices),
        n_cached=len(cached_results),
    )


def grid_sweep(*args: Any, **kwargs: Any) -> SweepResult:
    """Deprecated public alias of the grid-sweep executor.

    Call :func:`repro.sweep` instead: the facade accepts every scheduler
    form (class, configured prototype instance, engine name, raw
    factory), normalizes the keyword aliases (``num_workers``≡``m``,
    ``augmentation``≡``speed``), and dispatches here unchanged --
    results are bit-identical.  This shim warns once per process
    (:mod:`repro._deprecation`) and forwards verbatim.
    """
    from repro._deprecation import warn_once

    warn_once("repro.experiments.grid_sweep", "repro.sweep")
    return _grid_sweep(*args, **kwargs)
