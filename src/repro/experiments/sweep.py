"""Generic parameter-grid sweeps over schedulers.

The named experiments in :mod:`repro.experiments.figures` are hand-built
for the paper's artifacts; this module is the *user-facing* counterpart
for running your own ablations: give it a scheduler factory, a parameter
grid, and a workload factory, and it runs the full cross product with
paired workloads and derived seeds, returning a structured table.

Example -- re-deriving the paper's k sweep in three lines::

    sweep = grid_sweep(
        lambda k: WorkStealingScheduler(k=k, steals_per_tick=64),
        {"k": [0, 4, 16, 64]},
        lambda rep_seed: WorkloadSpec(BingDistribution(), 1200, 1500).build(rep_seed),
        m=16, reps=3, seed=0,
    )
    print(sweep.render())
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.base import Scheduler
from repro.dag.job import JobSet
from repro.experiments.parallel import parallel_map
from repro.sim.result import ScheduleResult
from repro.sim.rng import derive_seed

#: Metric name -> extractor over a ScheduleResult.
METRICS: Dict[str, Callable[[ScheduleResult], float]] = {
    "max_flow": lambda r: r.max_flow,
    "mean_flow": lambda r: r.mean_flow,
    "p99_flow": lambda r: r.flow_percentile(99),
    "max_weighted_flow": lambda r: r.max_weighted_flow,
    "makespan": lambda r: r.makespan,
}


@dataclass(frozen=True)
class SweepCell:
    """One grid point's outcome: parameters plus metric means over reps."""

    params: Dict[str, Any]
    metrics: Dict[str, float]


@dataclass
class SweepResult:
    """All cells of a grid sweep, with a paper-style text rendering."""

    param_names: List[str]
    metric_names: List[str]
    cells: List[SweepCell]

    def best(self, metric: str = "max_flow") -> SweepCell:
        """The cell minimizing ``metric``."""
        return min(self.cells, key=lambda c: c.metrics[metric])

    def column(self, metric: str) -> List[float]:
        """One metric across cells, in grid order."""
        return [c.metrics[metric] for c in self.cells]

    def render(self) -> str:
        """Aligned table: one row per grid point."""
        header = (
            "".join(f"{p:>12}" for p in self.param_names)
            + "".join(f"{m:>16}" for m in self.metric_names)
        )
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            row = "".join(f"{cell.params[p]!s:>12}" for p in self.param_names)
            row += "".join(
                f"{cell.metrics[m]:>16.3f}" for m in self.metric_names
            )
            lines.append(row)
        return "\n".join(lines)


def _sweep_rep_task(task) -> Dict[str, float]:
    """One (grid point, repetition) cell, as a picklable top-level task.

    ``task`` is ``(scheduler_factory, params, jobset_factory, m, speed,
    jobset_seed, run_seed, metrics)``.  Both seeds arrive precomputed
    from the cell coordinates, so where (or in what order) the task runs
    cannot affect its result.  Returns the extracted metric values --
    cheaper to ship between processes than a full ScheduleResult.
    """
    (factory, params, jobset_factory, m, speed, jobset_seed, run_seed,
     metrics) = task
    scheduler = factory(**params)
    jobset = jobset_factory(jobset_seed)
    result = scheduler.run(jobset, m=m, speed=speed, seed=run_seed)
    return {name: METRICS[name](result) for name in metrics}


def grid_sweep(
    scheduler_factory: Callable[..., Scheduler],
    grid: Dict[str, Sequence[Any]],
    jobset_factory: Callable[[int], JobSet],
    m: int,
    reps: int = 1,
    seed: int = 0,
    speed: float = 1.0,
    metrics: Sequence[str] = ("max_flow", "mean_flow"),
    max_workers: int | None = None,
) -> SweepResult:
    """Run the full parameter cross product with paired comparisons.

    Parameters
    ----------
    scheduler_factory:
        Called with one keyword argument per grid dimension; returns the
        scheduler for that cell.
    grid:
        Parameter name -> values to sweep (cross product over all).
    jobset_factory:
        Called with a derived rep seed; must return the instance for
        that repetition.  The same rep seeds are used for every cell,
        so comparisons across cells are paired.
    m, speed:
        Machine configuration shared by every cell.
    reps:
        Repetitions per cell; metrics are means across them.
    seed:
        Base seed; cell and rep seeds derive from it.
    metrics:
        Metric names from :data:`METRICS`.
    max_workers:
        Process-pool width for fanning out (cell, repetition) tasks; see
        :func:`repro.experiments.parallel.parallel_map` for resolution
        and fallback rules.  Results are aggregated in deterministic
        (cell, rep) order, so parallel and serial sweeps are
        bit-identical.  Lambda factories (as in the module example)
        cannot cross process boundaries and silently run serially.

    Returns
    -------
    SweepResult
        Cells in cross-product order (last grid key varies fastest).
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    if reps < 1:
        raise ValueError(f"need reps >= 1, got {reps}")
    if not grid:
        raise ValueError("grid must have at least one dimension")
    unknown = [name for name in metrics if name not in METRICS]
    if unknown:
        raise ValueError(
            f"unknown metrics {unknown}; available: {sorted(METRICS)}"
        )

    param_names = list(grid)
    combos = list(itertools.product(*grid.values()))
    metric_names = list(metrics)
    tasks = []
    for cell_idx, combo in enumerate(combos):
        params = dict(zip(param_names, combo))
        for rep in range(reps):
            tasks.append((
                scheduler_factory,
                params,
                jobset_factory,
                m,
                speed,
                derive_seed(seed, 9000, rep),
                derive_seed(seed, cell_idx, rep),
                metric_names,
            ))
    rep_metrics = parallel_map(_sweep_rep_task, tasks, max_workers=max_workers)

    # Aggregate in (cell, rep) task order -- the same float summation
    # order as the serial loop, keeping means bit-identical.
    cells: List[SweepCell] = []
    for cell_idx, combo in enumerate(combos):
        sums = {name: 0.0 for name in metric_names}
        for rep in range(reps):
            values = rep_metrics[cell_idx * reps + rep]
            for name in metric_names:
                sums[name] += values[name]
        cells.append(
            SweepCell(
                params=dict(zip(param_names, combo)),
                metrics={name: sums[name] / reps for name in metric_names},
            )
        )
    return SweepResult(
        param_names=param_names,
        metric_names=metric_names,
        cells=cells,
    )
