"""Generic parameter-grid sweeps over schedulers.

The named experiments in :mod:`repro.experiments.figures` are hand-built
for the paper's artifacts; this module is the *user-facing* counterpart
for running your own ablations: give it a scheduler factory, a parameter
grid, and a workload factory, and it runs the full cross product with
paired workloads and derived seeds, returning a structured table.

Example -- re-deriving the paper's k sweep in three lines::

    sweep = grid_sweep(
        lambda k: WorkStealingScheduler(k=k, steals_per_tick=64),
        {"k": [0, 4, 16, 64]},
        lambda rep_seed: WorkloadSpec(BingDistribution(), 1200, 1500).build(rep_seed),
        m=16, reps=3, seed=0,
    )
    print(sweep.render())
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.base import Scheduler
from repro.dag.job import JobSet
from repro.sim.result import ScheduleResult
from repro.sim.rng import derive_seed

#: Metric name -> extractor over a ScheduleResult.
METRICS: Dict[str, Callable[[ScheduleResult], float]] = {
    "max_flow": lambda r: r.max_flow,
    "mean_flow": lambda r: r.mean_flow,
    "p99_flow": lambda r: r.flow_percentile(99),
    "max_weighted_flow": lambda r: r.max_weighted_flow,
    "makespan": lambda r: r.makespan,
}


@dataclass(frozen=True)
class SweepCell:
    """One grid point's outcome: parameters plus metric means over reps."""

    params: Dict[str, Any]
    metrics: Dict[str, float]


@dataclass
class SweepResult:
    """All cells of a grid sweep, with a paper-style text rendering."""

    param_names: List[str]
    metric_names: List[str]
    cells: List[SweepCell]

    def best(self, metric: str = "max_flow") -> SweepCell:
        """The cell minimizing ``metric``."""
        return min(self.cells, key=lambda c: c.metrics[metric])

    def column(self, metric: str) -> List[float]:
        """One metric across cells, in grid order."""
        return [c.metrics[metric] for c in self.cells]

    def render(self) -> str:
        """Aligned table: one row per grid point."""
        header = (
            "".join(f"{p:>12}" for p in self.param_names)
            + "".join(f"{m:>16}" for m in self.metric_names)
        )
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            row = "".join(f"{cell.params[p]!s:>12}" for p in self.param_names)
            row += "".join(
                f"{cell.metrics[m]:>16.3f}" for m in self.metric_names
            )
            lines.append(row)
        return "\n".join(lines)


def grid_sweep(
    scheduler_factory: Callable[..., Scheduler],
    grid: Dict[str, Sequence[Any]],
    jobset_factory: Callable[[int], JobSet],
    m: int,
    reps: int = 1,
    seed: int = 0,
    speed: float = 1.0,
    metrics: Sequence[str] = ("max_flow", "mean_flow"),
) -> SweepResult:
    """Run the full parameter cross product with paired comparisons.

    Parameters
    ----------
    scheduler_factory:
        Called with one keyword argument per grid dimension; returns the
        scheduler for that cell.
    grid:
        Parameter name -> values to sweep (cross product over all).
    jobset_factory:
        Called with a derived rep seed; must return the instance for
        that repetition.  The same rep seeds are used for every cell,
        so comparisons across cells are paired.
    m, speed:
        Machine configuration shared by every cell.
    reps:
        Repetitions per cell; metrics are means across them.
    seed:
        Base seed; cell and rep seeds derive from it.
    metrics:
        Metric names from :data:`METRICS`.

    Returns
    -------
    SweepResult
        Cells in cross-product order (last grid key varies fastest).
    """
    if m < 1:
        raise ValueError(f"need m >= 1, got {m}")
    if reps < 1:
        raise ValueError(f"need reps >= 1, got {reps}")
    if not grid:
        raise ValueError("grid must have at least one dimension")
    unknown = [name for name in metrics if name not in METRICS]
    if unknown:
        raise ValueError(
            f"unknown metrics {unknown}; available: {sorted(METRICS)}"
        )

    param_names = list(grid)
    cells: List[SweepCell] = []
    for cell_idx, combo in enumerate(itertools.product(*grid.values())):
        params = dict(zip(param_names, combo))
        scheduler = scheduler_factory(**params)
        sums = {name: 0.0 for name in metrics}
        for rep in range(reps):
            jobset = jobset_factory(derive_seed(seed, 9000, rep))
            result = scheduler.run(
                jobset,
                m=m,
                speed=speed,
                seed=derive_seed(seed, cell_idx, rep),
            )
            for name in metrics:
                sums[name] += METRICS[name](result)
        cells.append(
            SweepCell(
                params=params,
                metrics={name: sums[name] / reps for name in metrics},
            )
        )
    return SweepResult(
        param_names=param_names,
        metric_names=list(metrics),
        cells=cells,
    )
