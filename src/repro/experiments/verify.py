"""One-command reproduction verdict.

``python -m repro.experiments verify`` runs a scaled-down version of
every paper artifact and checks its *shape conclusion* programmatically,
printing a PASS/FAIL line per claim -- the fastest way to confirm a
fresh checkout still reproduces the paper (the benches do the same with
full tables; this is the sixty-second smoke version).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.experiments import figures
from repro.experiments.config import ExperimentScale, FIG2A, FIG2B, FIG2C


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one reproduced-shape check."""

    claim: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim}: {self.detail}"


def _check_figure2(cfg, scale: ExperimentScale, seed: int) -> List[ShapeCheck]:
    res = figures.figure2(cfg, scale, seed=seed)
    opt = res.series["opt-lb"]
    sk = res.series["steal-16-first"]
    af = res.series["admit-first"]
    ordering = all(
        o <= s + 1e-9 and o <= a + 1e-9 for o, s, a in zip(opt, sk, af)
    )
    gap = af[-1] / sk[-1]
    return [
        ShapeCheck(
            f"{cfg.name}: OPT lowest at every QPS",
            ordering,
            f"opt={['%.1f' % v for v in opt]}",
        ),
        ShapeCheck(
            f"{cfg.name}: admit-first worst at high load",
            af[-1] >= sk[-1] * 0.95,
            f"admit/steal ratio at top QPS = {gap:.2f}x",
        ),
    ]


def verify_reproduction(
    scale: ExperimentScale | None = None, seed: int = 0
) -> List[ShapeCheck]:
    """Run every artifact at smoke scale and check its shape conclusion."""
    if scale is None:
        scale = ExperimentScale(n_jobs=800, reps=1)
    checks: List[ShapeCheck] = []

    for cfg in (FIG2A, FIG2B, FIG2C):
        checks.extend(_check_figure2(cfg, scale, seed))

    # Figure 3 shapes.
    panels = figures.figure3(size=40_000, seed=seed)
    (_, _, probs_a), (_, _, probs_b) = panels
    import numpy as np

    mode_a = int(np.argmax(probs_a))
    checks.append(
        ShapeCheck(
            "fig3a: Bing unimodal, low mode, long tail",
            mode_a < len(probs_a) / 3 and probs_a[3 * mode_a + 1 :].sum() > 0.01,
            f"mode bin {mode_a}/{len(probs_a)}",
        )
    )
    mode_b = int(np.argmax(probs_b))
    after = probs_b[mode_b + 2 :]
    second = int(np.argmax(after)) + mode_b + 2 if after.size else mode_b
    checks.append(
        ShapeCheck(
            "fig3b: finance bimodal on short support",
            after.size > 0 and probs_b[second] > probs_b[mode_b + 1 : second].min(),
            f"modes at bins {mode_b} and {second}",
        )
    )

    # Lemma 5.1 growth.
    lb = figures.lower_bound_experiment(n_values=(256, 4096), seed=seed, reps=2)
    ws = lb.series["work-stealing"]
    checks.append(
        ShapeCheck(
            "lb5: work stealing grows with log n while OPT stays at 2",
            ws[-1] > ws[0] * 1.05 and lb.series["opt"] == [2.0, 2.0],
            f"ws {ws[0]:.1f} -> {ws[-1]:.1f}",
        )
    )

    # Theorem envelopes.
    t31 = figures.speed_augmentation_experiment(
        eps_values=(0.25, 0.5), n_jobs=scale.n_jobs, seed=seed
    )
    ok31 = all(
        mv <= ev
        for mv, ev in zip(t31.series["fifo-measured"], t31.series["(3/eps)*opt-lb"])
    )
    checks.append(
        ShapeCheck("thm31: FIFO inside its (3/eps)*OPT envelope", ok31, "both eps")
    )
    t71 = figures.weighted_experiment(
        eps_values=(0.2,), n_jobs=scale.n_jobs, seed=seed
    )
    ok71 = (
        t71.series["bwf-measured"][0] <= t71.series["(3/eps^2)*optw-lb"][0]
        and t71.series["bwf-measured"][0] <= t71.series["fifo-measured"][0] * 1.05
    )
    checks.append(
        ShapeCheck(
            "thm71: BWF inside its envelope and <= weight-blind FIFO",
            ok71,
            f"bwf={t71.series['bwf-measured'][0]:.0f} "
            f"fifo={t71.series['fifo-measured'][0]:.0f}",
        )
    )

    return checks


def render_verification(checks: List[ShapeCheck]) -> str:
    """PASS/FAIL report plus the overall verdict line."""
    lines = [str(c) for c in checks]
    n_pass = sum(c.passed for c in checks)
    verdict = "REPRODUCED" if n_pass == len(checks) else "DEVIATIONS FOUND"
    lines.append(f"== {n_pass}/{len(checks)} shape checks passed: {verdict} ==")
    return "\n".join(lines)
