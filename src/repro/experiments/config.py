"""Experiment definitions: every figure of the paper, parameterized.

The paper's setup (Section 6): 16 cores, work-stealing in TBB with
``k = 16``, three work distributions, three QPS levels each targeting
roughly 50% / 60% / 70% utilization, Poisson arrivals, parallel-for jobs,
100,000 jobs per point.

Scales
------
The paper's 100k jobs per point is available (:data:`SCALE_PAPER`) but
slow in pure Python; :data:`SCALE_STANDARD` (the bench default) uses 3k
jobs x 3 repetitions, which reproduces every qualitative conclusion --
max-flow curves at these utilizations are driven by the busiest burst,
which 3k jobs at ~10ms each (a ~30-second trace) samples adequately, and
repetitions expose the run-to-run spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.workloads.distributions import (
    BingDistribution,
    FinanceDistribution,
    LogNormalDistribution,
    WorkDistribution,
)


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run each experiment cell.

    Attributes
    ----------
    n_jobs:
        Jobs per data point.
    reps:
        Independent repetitions (seeds) per data point; reported values
        are means across repetitions.
    """

    n_jobs: int
    reps: int

    def __post_init__(self) -> None:
        if self.n_jobs < 1 or self.reps < 1:
            raise ValueError(
                f"scale requires n_jobs >= 1 and reps >= 1, got {self}"
            )


#: Fast scale for CI / smoke runs (seconds end-to-end).
SCALE_QUICK = ExperimentScale(n_jobs=600, reps=1)
#: Default scale for the benches (a few minutes end-to-end).
SCALE_STANDARD = ExperimentScale(n_jobs=3000, reps=3)
#: The paper's scale (100k jobs per point; slow in pure Python).
SCALE_PAPER = ExperimentScale(n_jobs=100_000, reps=1)


@dataclass(frozen=True)
class Figure2Config:
    """One panel of Figure 2: a workload and its QPS sweep.

    Attributes mirror the paper's experimental constants; see the module
    docstring.  ``steals_per_tick`` selects the practical steal-cost
    model (see :func:`repro.sim.engine.run_work_stealing`) matching the
    paper's TBB testbed, where steals are microseconds against
    millisecond jobs.
    """

    name: str
    distribution_factory: Callable[[], WorkDistribution]
    qps_values: Tuple[float, ...]
    m: int = 16
    k: int = 16
    steals_per_tick: int = 64
    units_per_ms: float = 4.0
    target_chunks: int = 32

    @property
    def time_unit_ms(self) -> float:
        """Milliseconds per simulation time unit (for display)."""
        return 1.0 / self.units_per_ms


#: Figure 2(a): Bing workload, QPS in {800, 1000, 1200}.
FIG2A = Figure2Config(
    name="fig2a-bing",
    distribution_factory=BingDistribution,
    qps_values=(800.0, 1000.0, 1200.0),
)

#: Figure 2(b): finance workload, QPS in {800, 900, 1000}.
FIG2B = Figure2Config(
    name="fig2b-finance",
    distribution_factory=FinanceDistribution,
    qps_values=(800.0, 900.0, 1000.0),
)

#: Figure 2(c): log-normal workload, QPS in {800, 1000, 1200}.
FIG2C = Figure2Config(
    name="fig2c-lognormal",
    distribution_factory=LogNormalDistribution,
    qps_values=(800.0, 1000.0, 1200.0),
)


#: Registry used by the CLI and the per-experiment index in DESIGN.md.
EXPERIMENTS: Dict[str, str] = {
    "fig2a": "Figure 2(a): max flow vs QPS, Bing workload",
    "fig2b": "Figure 2(b): max flow vs QPS, finance workload",
    "fig2c": "Figure 2(c): max flow vs QPS, log-normal workload",
    "fig3": "Figure 3: work distribution histograms (Bing, finance)",
    "lb5": "Lemma 5.1: work stealing is Omega(log n) on the adversarial instance",
    "thm31": "Theorem 3.1: FIFO (1+eps)-speed envelope sweep",
    "thm71": "Theorem 7.1: BWF weighted max-flow envelope sweep",
    "abl-k": "Ablation: steal-k-first k sweep at high load",
    "abl-load": "Ablation: utilization sweep (admit-first degradation)",
    "abl-steal": "Ablation: victim-selection and steal-half policies",
    "abl-sched": "Ablation: policy families (FIFO/WS vs LAS/SRW/LIFO/random)",
    "abl-burst": "Ablation: arrival burstiness at fixed rate",
    "abl-grain": "Ablation: parallel-for decomposition granularity",
    "ext-speedup": "Extension: DAG vs speedup-curves model separation (Sec 8)",
    "ext-wws": "Extension: weighted-admission work stealing (Sec 4 x Sec 7)",
    "ext-norms": "Extension: lk-norms of flow time (conclusion's open question)",
    "ext-scaling": "Extension: single-job O(W/m+P) and Lemma 4.4 steal bound",
    "ext-makespan": "Extension: batch (makespan) special case vs Graham bound",
    "ext-overheads": "Extension: FIFO preemption/migration cost vs WS steals (Sec 1)",
}
