"""Generic sweep execution with seed management.

The two building blocks every figure uses:

* :func:`run_schedulers` -- run a set of schedulers on one instance (the
  same instance: paired comparison) and collect results;
* :func:`run_figure2_cell` -- one (workload, QPS) cell of Figure 2:
  build the workload, run OPT / steal-k-first / admit-first (and FIFO,
  for reference), average over repetitions;
* :func:`_run_figure2_cells` -- a whole QPS sweep of such cells, fanned
  out over a process pool (see :mod:`repro.experiments.parallel`); the
  public ``run_figure2_cells`` name survives as a warn-once deprecated
  shim (ISSUE 9) -- use the figure functions or :func:`repro.sweep`.

Seed discipline: a cell's seed is derived from the experiment seed and
the cell coordinates via :func:`repro.sim.rng.derive_seed`, so any single
cell can be reproduced in isolation and adding QPS points never shifts
other cells' randomness.  Because seeds come from coordinates -- never
from shared RNG state or execution order -- parallel and serial sweeps
are bit-identical.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import Scheduler
from repro.core.fifo import FifoScheduler
from repro.core.opt import OptLowerBound
from repro.core.work_stealing import WorkStealingScheduler
from repro.dag.job import JobSet
from repro.experiments.cache import (
    SweepCache,
    cell_key,
    resume_enabled_by_env,
)
from repro.experiments.config import ExperimentScale, Figure2Config
from repro.experiments.parallel import parallel_map
from repro.sim.result import ScheduleResult
from repro.sim.rng import derive_seed
from repro.workloads.generator import WorkloadSpec


def run_schedulers(
    jobset: JobSet,
    schedulers: Iterable[Scheduler],
    m: int,
    speed: float = 1.0,
    seed: Optional[int] = None,
) -> Dict[str, ScheduleResult]:
    """Run each scheduler on the same instance; returns name -> result.

    Each scheduler gets its own derived seed so that, e.g., adding a
    scheduler to the comparison never changes the victim-selection
    stream of the others.
    """
    out: Dict[str, ScheduleResult] = {}
    for i, sched in enumerate(schedulers):
        run_seed = derive_seed(seed, 1000 + i)
        out[sched.name] = sched.run(jobset, m=m, speed=speed, seed=run_seed)
    return out


def figure2_schedulers(cfg: Figure2Config, include_fifo: bool = False) -> List[Scheduler]:
    """The scheduler lineup of Figure 2 (plus optional FIFO reference)."""
    lineup: List[Scheduler] = [
        OptLowerBound(),
        WorkStealingScheduler(k=cfg.k, steals_per_tick=cfg.steals_per_tick),
        WorkStealingScheduler(k=0, steals_per_tick=cfg.steals_per_tick),
    ]
    if include_fifo:
        lineup.append(FifoScheduler())
    return lineup


def run_figure2_cell(
    cfg: Figure2Config,
    qps: float,
    scale: ExperimentScale,
    seed: int = 0,
    include_fifo: bool = False,
) -> Dict[str, float]:
    """One Figure 2 data point: mean max flow (ms) per scheduler.

    Runs ``scale.reps`` independent workload draws and averages the max
    flow of each scheduler across them, converting to milliseconds with
    the config's time unit.

    Cells with enough repetitions evaluate the work-stealing lineup
    members through :func:`repro.sim.batch_engine.run_batch` -- all reps
    in one arena, same derived seeds, bit-identical means (the
    accumulation order per scheduler is unchanged: rep 0, 1, ...).
    ``REPRO_BATCH`` controls the rep floor exactly as in
    :func:`repro.experiments.sweep._grid_sweep`.
    """
    from repro.experiments.sweep import _batch_threshold
    from repro.sim.batch_engine import batch_options, run_batch

    lineup = figure2_schedulers(cfg, include_fifo)
    threshold = _batch_threshold()
    batchable: Dict[int, Dict[str, Any]] = {}
    if threshold is not None and scale.reps >= threshold:
        for i, sched in enumerate(lineup):
            engine_kwargs = batch_options(sched)
            if engine_kwargs is not None:
                batchable[i] = engine_kwargs

    def build_rep(rep: int) -> JobSet:
        cell_seed = derive_seed(seed, int(qps), rep)
        spec = WorkloadSpec(
            distribution=cfg.distribution_factory(),
            qps=qps,
            n_jobs=scale.n_jobs,
            m=cfg.m,
            units_per_ms=cfg.units_per_ms,
            target_chunks=cfg.target_chunks,
        )
        return spec.build(seed=cell_seed)

    sums: Dict[str, float] = {}
    if batchable:
        jobsets = [build_rep(rep) for rep in range(scale.reps)]
        batch_results: Dict[int, List[ScheduleResult]] = {}
        for i, engine_kwargs in batchable.items():
            # The exact seeds run_schedulers would derive, per rep.
            rep_seeds = [
                derive_seed(derive_seed(seed, int(qps), rep), 1000 + i)
                for rep in range(scale.reps)
            ]
            batch_results[i] = run_batch(
                jobsets, m=cfg.m, seeds=rep_seeds, **engine_kwargs
            )
        for rep in range(scale.reps):
            cell_seed = derive_seed(seed, int(qps), rep)
            for i, sched in enumerate(lineup):
                if i in batch_results:
                    res = batch_results[i][rep]
                else:
                    res = sched.run(
                        jobsets[rep],
                        m=cfg.m,
                        speed=1.0,
                        seed=derive_seed(cell_seed, 1000 + i),
                    )
                sums[sched.name] = (
                    sums.get(sched.name, 0.0)
                    + res.max_flow * cfg.time_unit_ms
                )
        return {name: total / scale.reps for name, total in sums.items()}

    for rep in range(scale.reps):
        cell_seed = derive_seed(seed, int(qps), rep)
        results = run_schedulers(
            build_rep(rep),
            lineup,
            m=cfg.m,
            seed=cell_seed,
        )
        for name, res in results.items():
            sums[name] = sums.get(name, 0.0) + res.max_flow * cfg.time_unit_ms
    return {name: total / scale.reps for name, total in sums.items()}


#: One cell-task: (config, qps, scale, seed, include_fifo).  A plain
#: tuple of picklable values so the task crosses process boundaries.
Figure2CellTask = Tuple[Figure2Config, float, ExperimentScale, int, bool]


def _figure2_cell_task(task: Figure2CellTask) -> Dict[str, Any]:
    """Top-level (hence picklable) adapter around :func:`run_figure2_cell`.

    Returns the cell's metric dict wrapped with worker-side telemetry
    (wall time measured inside the worker, worker pid); the parent turns
    the wrapper into a ``cell.run`` event and stores only the metrics.
    """
    cfg, qps, scale, seed, include_fifo = task
    t0 = time.perf_counter()
    metrics = run_figure2_cell(
        cfg, qps, scale, seed=seed, include_fifo=include_fifo
    )
    return {
        "metrics": metrics,
        "wall_s": round(time.perf_counter() - t0, 6),
        "pid": os.getpid(),
    }


def _run_figure2_cells(
    cfg: Figure2Config,
    qps_values: Sequence[float],
    scale: ExperimentScale,
    seed: int = 0,
    include_fifo: bool = False,
    max_workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    resume: Optional[bool] = None,
    telemetry: Optional[Any] = None,
    cell_timeout: Optional[float] = None,
    retries: Optional[int] = None,
) -> List[Dict[str, float]]:
    """All QPS cells of one Figure 2 panel, fanned out over processes.

    Every cell's randomness derives from ``(seed, qps, rep)`` inside
    :func:`run_figure2_cell`, so the fan-out cannot change any result:
    the returned list (in ``qps_values`` order) is bit-identical to a
    serial loop.  ``max_workers``, ``cell_timeout`` and ``retries``
    follow the resolution rules of
    :func:`repro.experiments.parallel.parallel_map`, whose supervised
    pool retries crashed or deadline-expired cells from their
    coordinate-derived seeds and respawns a broken pool; completed
    cells are checkpointed into the cache as they finish, so an aborted
    sweep resumes losslessly.

    With ``resume`` (default: the ``REPRO_RESUME`` environment variable,
    i.e. the CLI's ``--resume`` flag) previously computed cells are
    served from the content-addressed cell cache
    (:mod:`repro.experiments.cache`) and only cold cells run; cached
    values are the exact floats of the original run.  Cell keys cover
    the full config (a frozen dataclass with a canonical repr), scale,
    seed and lineup, so any parameter change misses cleanly.

    ``telemetry`` (a :class:`repro.obs.Telemetry`, optional) records the
    sweep as structured events -- ``sweep.start``, per-cell ``cell.run``
    (worker-measured wall time + pid) / ``cell.cached``, ``cache.*``,
    ``sweep.done`` -- and writes a run manifest next to the cache dir
    (or the telemetry log).  Results are bit-identical either way.
    """
    t_start = time.perf_counter()
    if resume is None:
        resume = resume_enabled_by_env()
    if resume and cache is None:
        cache = SweepCache()
    if telemetry is None:
        # CLI path: the --telemetry flag routes through REPRO_TELEMETRY
        # rather than threading a parameter into every figure function.
        from repro.obs.telemetry import default_telemetry

        telemetry = default_telemetry()
    if cache is not None and telemetry is not None and cache.telemetry is None:
        cache.telemetry = telemetry

    keys = [
        cell_key(
            "fig2-cell", repr(cfg), float(qps), scale.n_jobs, scale.reps,
            seed, include_fifo,
        )
        for qps in qps_values
    ]
    results: List[Optional[Dict[str, float]]] = [None] * len(qps_values)
    if resume and cache is not None:
        for i, key in enumerate(keys):
            results[i] = cache.load_cell(key)

    cold = [i for i in range(len(qps_values)) if results[i] is None]
    if telemetry is not None:
        telemetry.emit(
            "sweep.start",
            kind="run_figure2_cells",
            n_cells=len(qps_values),
            n_tasks=len(qps_values),
            n_cold=len(cold),
            m=cfg.m,
            reps=scale.reps,
            include_fifo=include_fifo,
        )
        for i in range(len(qps_values)):
            if results[i] is not None:
                telemetry.emit(
                    "cell.cached",
                    params={"qps": qps_values[i]},
                    metrics=results[i],
                )
    tasks: List[Figure2CellTask] = [
        (cfg, qps_values[i], scale, seed, include_fifo) for i in cold
    ]

    def checkpoint(batch_idx: int, payload: Dict[str, Any]) -> None:
        # Flush each finished cell to the cache immediately (completion
        # order), so a killed sweep resumes from everything already
        # computed.  A failed checkpoint write only degrades
        # resumability, never the run.
        if cache is None:
            return
        try:
            cache.store_cell(keys[cold[batch_idx]], payload["metrics"])
        except Exception as exc:
            if telemetry is not None:
                telemetry.emit(
                    "cache.store_failed",
                    key=keys[cold[batch_idx]],
                    error=f"{type(exc).__name__}: {exc}",
                )

    cold_results = parallel_map(
        _figure2_cell_task, tasks, max_workers=max_workers,
        telemetry=telemetry, cell_timeout=cell_timeout, retries=retries,
        on_result=checkpoint,
    )
    for i, payload in zip(cold, cold_results):
        value = payload["metrics"]
        results[i] = value
        if telemetry is not None:
            telemetry.emit(
                "cell.run",
                params={"qps": qps_values[i]},
                seed=seed,
                wall_s=payload["wall_s"],
                pid=payload["pid"],
                metrics=value,
            )

    manifest_path = None
    log_path = telemetry.path if telemetry is not None else None
    if cache is not None or log_path is not None:
        from repro.obs.manifest import build_manifest, write_manifest

        manifest = build_manifest(
            kind="run_figure2_cells",
            config={
                "config": repr(cfg),
                "qps_values": [float(q) for q in qps_values],
                "n_jobs": scale.n_jobs,
                "reps": scale.reps,
                "include_fifo": include_fifo,
            },
            seed=seed,
            timings={"wall_s": round(time.perf_counter() - t_start, 6)},
            event_log=log_path,
            cache_dir=cache.root if cache is not None else None,
            extra={"n_cells": len(qps_values), "n_cold": len(cold)},
        )
        directory = (
            cache.root if cache is not None else log_path.parent
        ) / "manifests"
        manifest_path = write_manifest(manifest, directory)
    if telemetry is not None:
        telemetry.emit(
            "sweep.done",
            kind="run_figure2_cells",
            wall_s=round(time.perf_counter() - t_start, 6),
            n_cold=len(cold),
            n_cached=len(qps_values) - len(cold),
            manifest=str(manifest_path) if manifest_path else None,
        )
    return results  # type: ignore[return-value]


def run_figure2_cells(*args: Any, **kwargs: Any) -> List[Dict[str, float]]:
    """Deprecated public alias of the Figure-2 cell sweep.

    The figure functions in :mod:`repro.experiments.figures` are the
    supported way to regenerate paper panels, and :func:`repro.sweep`
    the supported way to run your own grids; both route through the
    private executor.  This shim warns once per process
    (:mod:`repro._deprecation`) and forwards verbatim -- results are
    bit-identical.
    """
    from repro._deprecation import warn_once

    warn_once("repro.experiments.run_figure2_cells", "repro.sweep")
    return _run_figure2_cells(*args, **kwargs)


def mean_and_spread(values: List[float]) -> Dict[str, float]:
    """Mean / min / max summary used when reporting repetitions."""
    arr = np.asarray(values, dtype=np.float64)
    return {
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
