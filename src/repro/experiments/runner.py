"""Generic sweep execution with seed management.

The two building blocks every figure uses:

* :func:`run_schedulers` -- run a set of schedulers on one instance (the
  same instance: paired comparison) and collect results;
* :func:`run_figure2_cell` -- one (workload, QPS) cell of Figure 2:
  build the workload, run OPT / steal-k-first / admit-first (and FIFO,
  for reference), average over repetitions;
* :func:`run_figure2_cells` -- a whole QPS sweep of such cells, fanned
  out over a process pool (see :mod:`repro.experiments.parallel`).

Seed discipline: a cell's seed is derived from the experiment seed and
the cell coordinates via :func:`repro.sim.rng.derive_seed`, so any single
cell can be reproduced in isolation and adding QPS points never shifts
other cells' randomness.  Because seeds come from coordinates -- never
from shared RNG state or execution order -- parallel and serial sweeps
are bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import Scheduler
from repro.core.fifo import FifoScheduler
from repro.core.opt import OptLowerBound
from repro.core.work_stealing import WorkStealingScheduler
from repro.dag.job import JobSet
from repro.experiments.cache import (
    SweepCache,
    cell_key,
    resume_enabled_by_env,
)
from repro.experiments.config import ExperimentScale, Figure2Config
from repro.experiments.parallel import parallel_map
from repro.sim.result import ScheduleResult
from repro.sim.rng import derive_seed
from repro.workloads.generator import WorkloadSpec


def run_schedulers(
    jobset: JobSet,
    schedulers: Iterable[Scheduler],
    m: int,
    speed: float = 1.0,
    seed: Optional[int] = None,
) -> Dict[str, ScheduleResult]:
    """Run each scheduler on the same instance; returns name -> result.

    Each scheduler gets its own derived seed so that, e.g., adding a
    scheduler to the comparison never changes the victim-selection
    stream of the others.
    """
    out: Dict[str, ScheduleResult] = {}
    for i, sched in enumerate(schedulers):
        run_seed = derive_seed(seed, 1000 + i)
        out[sched.name] = sched.run(jobset, m=m, speed=speed, seed=run_seed)
    return out


def figure2_schedulers(cfg: Figure2Config, include_fifo: bool = False) -> List[Scheduler]:
    """The scheduler lineup of Figure 2 (plus optional FIFO reference)."""
    lineup: List[Scheduler] = [
        OptLowerBound(),
        WorkStealingScheduler(k=cfg.k, steals_per_tick=cfg.steals_per_tick),
        WorkStealingScheduler(k=0, steals_per_tick=cfg.steals_per_tick),
    ]
    if include_fifo:
        lineup.append(FifoScheduler())
    return lineup


def run_figure2_cell(
    cfg: Figure2Config,
    qps: float,
    scale: ExperimentScale,
    seed: int = 0,
    include_fifo: bool = False,
) -> Dict[str, float]:
    """One Figure 2 data point: mean max flow (ms) per scheduler.

    Runs ``scale.reps`` independent workload draws and averages the max
    flow of each scheduler across them, converting to milliseconds with
    the config's time unit.
    """
    sums: Dict[str, float] = {}
    for rep in range(scale.reps):
        cell_seed = derive_seed(seed, int(qps), rep)
        spec = WorkloadSpec(
            distribution=cfg.distribution_factory(),
            qps=qps,
            n_jobs=scale.n_jobs,
            m=cfg.m,
            units_per_ms=cfg.units_per_ms,
            target_chunks=cfg.target_chunks,
        )
        jobset = spec.build(seed=cell_seed)
        results = run_schedulers(
            jobset,
            figure2_schedulers(cfg, include_fifo),
            m=cfg.m,
            seed=cell_seed,
        )
        for name, res in results.items():
            sums[name] = sums.get(name, 0.0) + res.max_flow * cfg.time_unit_ms
    return {name: total / scale.reps for name, total in sums.items()}


#: One cell-task: (config, qps, scale, seed, include_fifo).  A plain
#: tuple of picklable values so the task crosses process boundaries.
Figure2CellTask = Tuple[Figure2Config, float, ExperimentScale, int, bool]


def _figure2_cell_task(task: Figure2CellTask) -> Dict[str, float]:
    """Top-level (hence picklable) adapter around :func:`run_figure2_cell`."""
    cfg, qps, scale, seed, include_fifo = task
    return run_figure2_cell(cfg, qps, scale, seed=seed, include_fifo=include_fifo)


def run_figure2_cells(
    cfg: Figure2Config,
    qps_values: Sequence[float],
    scale: ExperimentScale,
    seed: int = 0,
    include_fifo: bool = False,
    max_workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    resume: Optional[bool] = None,
) -> List[Dict[str, float]]:
    """All QPS cells of one Figure 2 panel, fanned out over processes.

    Every cell's randomness derives from ``(seed, qps, rep)`` inside
    :func:`run_figure2_cell`, so the fan-out cannot change any result:
    the returned list (in ``qps_values`` order) is bit-identical to a
    serial loop.  ``max_workers`` follows the resolution rules of
    :func:`repro.experiments.parallel.parallel_map`.

    With ``resume`` (default: the ``REPRO_RESUME`` environment variable,
    i.e. the CLI's ``--resume`` flag) previously computed cells are
    served from the content-addressed cell cache
    (:mod:`repro.experiments.cache`) and only cold cells run; cached
    values are the exact floats of the original run.  Cell keys cover
    the full config (a frozen dataclass with a canonical repr), scale,
    seed and lineup, so any parameter change misses cleanly.
    """
    if resume is None:
        resume = resume_enabled_by_env()
    if resume and cache is None:
        cache = SweepCache()

    keys = [
        cell_key(
            "fig2-cell", repr(cfg), float(qps), scale.n_jobs, scale.reps,
            seed, include_fifo,
        )
        for qps in qps_values
    ]
    results: List[Optional[Dict[str, float]]] = [None] * len(qps_values)
    if resume and cache is not None:
        for i, key in enumerate(keys):
            results[i] = cache.load_cell(key)

    cold = [i for i in range(len(qps_values)) if results[i] is None]
    tasks: List[Figure2CellTask] = [
        (cfg, qps_values[i], scale, seed, include_fifo) for i in cold
    ]
    cold_results = parallel_map(
        _figure2_cell_task, tasks, max_workers=max_workers
    )
    for i, value in zip(cold, cold_results):
        results[i] = value
        if cache is not None:
            cache.store_cell(keys[i], value)
    return results  # type: ignore[return-value]


def mean_and_spread(values: List[float]) -> Dict[str, float]:
    """Mean / min / max summary used when reporting repetitions."""
    arr = np.asarray(values, dtype=np.float64)
    return {
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
