"""Sharded sweep orchestration: partition, shard manifests, lossless merge.

A paper figure at 100k jobs over a full parameter grid is hours of
compute on one host but embarrassingly parallel across hosts: every
sweep cell is a pure function of its coordinates (instance content +
scheduler parameters + run seed), which is exactly why the cell cache
(:mod:`repro.experiments.cache`) can key it by content.  This module
turns that property into scale-out:

* :func:`parse_shard` / :class:`ShardSpec` -- the ``shard=(i, n)`` /
  ``shard="i/n"`` argument of :func:`repro.sweep`, validated into a
  typed spec;
* :func:`shard_cells` -- the deterministic partition: shard ``i`` of
  ``n`` owns the contiguous cell-index range
  ``[i*C//n, (i+1)*C//n)`` of the grid's ``C`` cross-product points,
  so the disjoint union over all shards is exactly the unsharded
  sweep (``tests/experiments/test_shard.py`` proves it property-style);
* :class:`ShardManifest` -- the provenance record each sharded sweep
  writes into ``<cache>/manifests/``: grid digest, coordinate range,
  the cell keys it owns, host metadata;
* :func:`merge_caches` / :func:`merge_telemetry` -- combine shard
  outputs into one resumable cache and one telemetry ledger.  Overlap
  and partial shards are tolerated (identical content merges silently;
  a killed shard contributes whatever it checkpointed), but the same
  key with *different* content is a hard
  :class:`~repro.errors.CacheMergeConflictError` carrying provenance
  from both sides' manifests -- a merge never silently picks a winner.

The end-to-end contract: run ``repro.sweep(..., shard=(i, n),
cache=dir_i)`` on ``n`` independent hosts, ``merge_caches(dirs,
merged)``, then ``repro.sweep(..., cache=merged, resume=True)`` -- the
final table is bit-identical to a single-host unsharded sweep, because
every cell is served from the merged cache by the same content keys the
unsharded sweep would compute.  See EXPERIMENTS.md for the recipe and
docs/ROBUSTNESS.md for conflict semantics.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CacheMergeConflictError, SweepConfigError
from repro.experiments.cache import SweepCache

__all__ = [
    "SHARD_SCHEMA",
    "MergeReport",
    "ShardManifest",
    "ShardSpec",
    "grid_digest",
    "load_shard_manifests",
    "merge_caches",
    "merge_telemetry",
    "parse_shard",
    "shard_cells",
]

PathLike = Union[str, Path]

#: Version stamp in shard manifests; bump on any field-semantics change
#: so a merge never misreads a foreign layout as provenance.
SHARD_SCHEMA = "repro-shard/1"


# ----------------------------------------------------------------------
# Shard specification and partitioning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity: ``index`` of ``count`` (0-based).

    Both accepted spellings -- the ``(i, n)`` tuple and the ``"i/n"``
    string -- normalize to this type via :func:`parse_shard`, so
    ``shard=(0, 4)`` and ``shard="0/4"`` are indistinguishable
    downstream (same partition, same manifest, same cache keys).
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SweepConfigError(
                f"shard count must be >= 1, got {self.count} "
                f"(shard={self.index}/{self.count})"
            )
        if not 0 <= self.index < self.count:
            raise SweepConfigError(
                f"shard index must be in [0, {self.count}), got "
                f"{self.index} (shards are 0-based: the first of "
                f"{self.count} shards is 0/{self.count})"
            )

    def cell_range(self, n_cells: int) -> Tuple[int, int]:
        """This shard's half-open ``[start, stop)`` slice of ``n_cells``
        grid points (balanced: sizes differ by at most one)."""
        return (
            self.index * n_cells // self.count,
            (self.index + 1) * n_cells // self.count,
        )

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def parse_shard(
    value: Union["ShardSpec", Tuple[int, int], str]
) -> ShardSpec:
    """Normalize any accepted ``shard=`` form into a :class:`ShardSpec`.

    Accepts a :class:`ShardSpec`, an ``(index, count)`` pair, or the
    ``"index/count"`` string (the form a shell launcher interpolates
    into ``$i/$n``).  Anything else -- malformed strings, fractional or
    out-of-range numbers, zero shards -- raises
    :class:`~repro.errors.SweepConfigError` naming the valid forms.
    """
    if isinstance(value, ShardSpec):
        return value
    if isinstance(value, str):
        parts = value.split("/")
        if len(parts) != 2 or not all(
            p.strip().lstrip("+-").isdigit() for p in parts
        ):
            raise SweepConfigError(
                f"shard string must look like 'i/n' (e.g. '0/4'), got "
                f"{value!r}"
            )
        return ShardSpec(int(parts[0]), int(parts[1]))
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise SweepConfigError(
                f"shard tuple must be (index, count), got {value!r}"
            )
        index, count = value
        if isinstance(index, bool) or isinstance(count, bool) or (
            not isinstance(index, int) or not isinstance(count, int)
        ):
            raise SweepConfigError(
                f"shard (index, count) must be two ints, got {value!r}"
            )
        return ShardSpec(index, count)
    raise SweepConfigError(
        f"shard= takes an (index, count) tuple, an 'i/n' string, or a "
        f"ShardSpec; got {type(value).__name__}"
    )


def shard_cells(
    n_cells: int, shard: Union[ShardSpec, Tuple[int, int], str]
) -> range:
    """The global cell indices shard ``shard`` owns out of ``n_cells``.

    Contiguous, balanced, and exhaustive: for any ``n_cells`` and shard
    count the ranges of all shards are pairwise disjoint and their union
    is ``range(n_cells)`` -- the property the shard tests pin.  Cell
    indices are *global* grid cross-product positions, so per-cell run
    seeds (derived from the global index) match the unsharded sweep
    exactly.
    """
    spec = parse_shard(shard)
    start, stop = spec.cell_range(n_cells)
    return range(start, stop)


def grid_digest(
    grid: Dict[str, Sequence[Any]],
    factory_token: Optional[str],
    m: int,
    speed: float,
    seed: int,
    reps: int,
    metric_names: Sequence[str],
) -> str:
    """A short stable digest of a sweep's full coordinate system.

    Every shard of one logical sweep computes the same digest (the
    partition does not enter it), so shard manifests from different
    hosts can be matched up at merge time -- and manifests from a
    *different* sweep sharing a cache dir can be told apart.
    """
    payload = json.dumps(
        {
            "grid": {name: [repr(v) for v in vals] for name, vals in grid.items()},
            "factory": factory_token,
            "m": m,
            "speed": speed,
            "seed": seed,
            "reps": reps,
            "metrics": list(metric_names),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Shard manifests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardManifest:
    """Provenance record of one shard's slice of a sweep.

    Written into ``<cache>/manifests/shard-<digest>-<i>of<n>.json`` at
    sweep *plan* time -- before any cell runs -- so even a shard killed
    mid-flight leaves a record of which cell keys its partial cache may
    contain.  :func:`merge_caches` uses these to attribute conflicting
    cells to the run (host, shard, time) that produced each side.
    """

    grid_digest: str
    index: int
    count: int
    cell_start: int
    cell_stop: int
    n_cells_total: int
    reps: int
    cell_keys: Tuple[str, ...] = ()
    instances: Tuple[str, ...] = ()
    host: Dict[str, Any] = field(default_factory=dict)
    versions: Dict[str, str] = field(default_factory=dict)
    created_at: str = ""
    cache_dir: str = ""
    schema: str = SHARD_SCHEMA

    @property
    def filename(self) -> str:
        return f"shard-{self.grid_digest}-{self.index}of{self.count}.json"

    @property
    def shard(self) -> str:
        """The ``"i/n"`` label of this manifest's shard."""
        return f"{self.index}/{self.count}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "grid_digest": self.grid_digest,
            "shard": {"index": self.index, "count": self.count},
            "cells": {
                "start": self.cell_start,
                "stop": self.cell_stop,
                "total": self.n_cells_total,
            },
            "reps": self.reps,
            "cell_keys": list(self.cell_keys),
            "instances": list(self.instances),
            "host": self.host,
            "versions": self.versions,
            "created_at": self.created_at,
            "cache_dir": self.cache_dir,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardManifest":
        if data.get("schema") != SHARD_SCHEMA:
            raise ValueError(
                f"shard manifest schema {data.get('schema')!r} is not "
                f"{SHARD_SCHEMA!r}"
            )
        return cls(
            grid_digest=str(data["grid_digest"]),
            index=int(data["shard"]["index"]),
            count=int(data["shard"]["count"]),
            cell_start=int(data["cells"]["start"]),
            cell_stop=int(data["cells"]["stop"]),
            n_cells_total=int(data["cells"]["total"]),
            reps=int(data.get("reps", 1)),
            cell_keys=tuple(data.get("cell_keys", ())),
            instances=tuple(data.get("instances", ())),
            host=dict(data.get("host", {})),
            versions=dict(data.get("versions", {})),
            created_at=str(data.get("created_at", "")),
            cache_dir=str(data.get("cache_dir", "")),
        )

    def describe(self) -> str:
        """One provenance line for conflict errors and merge reports."""
        host = self.host.get("hostname") or self.host.get("platform") or "?"
        return (
            f"shard {self.shard} of grid {self.grid_digest} "
            f"(cells [{self.cell_start}, {self.cell_stop}), host {host}, "
            f"created {self.created_at or '?'}, cache {self.cache_dir or '?'})"
        )


def _host_facts() -> Dict[str, Any]:
    import platform

    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
    }


def build_shard_manifest(
    spec: ShardSpec,
    digest: str,
    n_cells_total: int,
    reps: int,
    cell_keys: Sequence[str],
    instance_hashes: Sequence[str],
    cache_root: PathLike,
) -> ShardManifest:
    """Assemble a shard's manifest (see :class:`ShardManifest`)."""
    from repro.obs.manifest import _versions

    start, stop = spec.cell_range(n_cells_total)
    return ShardManifest(
        grid_digest=digest,
        index=spec.index,
        count=spec.count,
        cell_start=start,
        cell_stop=stop,
        n_cells_total=n_cells_total,
        reps=reps,
        cell_keys=tuple(cell_keys),
        instances=tuple(instance_hashes),
        host=_host_facts(),
        versions=_versions(),
        created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        cache_dir=str(cache_root),
    )


def write_shard_manifest(
    manifest: ShardManifest, cache: SweepCache
) -> Path:
    """Atomically write ``manifest`` under ``<cache>/manifests/``.

    Content-named per (grid digest, shard), so re-running the same shard
    overwrites its own manifest instead of accumulating duplicates.
    """
    directory = cache.manifests_dir
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / manifest.filename
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(manifest.to_dict(), indent=2) + "\n")
    os.replace(tmp, path)
    return path


def load_shard_manifests(root: PathLike) -> List[ShardManifest]:
    """Every readable shard manifest under ``<root>/manifests/``.

    Unreadable or foreign-schema files are skipped (they are provenance,
    not data: a merge without them still merges, it just attributes
    conflicts less precisely).  Sorted by filename for determinism.
    """
    directory = Path(root) / "manifests"
    if not directory.is_dir():
        return []
    out: List[ShardManifest] = []
    for path in sorted(directory.glob("shard-*.json")):
        try:
            out.append(ShardManifest.from_dict(json.loads(path.read_text())))
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            continue
    return out


# ----------------------------------------------------------------------
# Merging shard caches
# ----------------------------------------------------------------------


def _result_hash(metrics: Dict[str, float]) -> str:
    """Content hash of one cell's metric values (order-insensitive)."""
    canonical = json.dumps(
        {k: repr(float(v)) for k, v in metrics.items()}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _provenance_for(key: str, root: PathLike) -> List[str]:
    """Provenance lines for ``key`` from ``root``'s shard manifests."""
    lines = [
        m.describe() for m in load_shard_manifests(root) if key in m.cell_keys
    ]
    return lines or [f"cache {Path(root)} (no shard manifest covers this key)"]


def _copy_atomic(src: Path, dest_dir: Path, name: str) -> None:
    """Copy ``src`` into ``dest_dir/name`` atomically (temp + rename).

    Verbatim byte copy: a merged cell file must render exactly like the
    original (JSON key order encodes metric order).
    """
    dest_dir.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=dest_dir, suffix=".tmp")
    try:
        os.close(fd)
        shutil.copyfile(src, tmp)
        os.replace(tmp, dest_dir / name)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


@dataclass
class MergeReport:
    """What one :func:`merge_caches` call did, per artifact class."""

    dest: str
    sources: List[str] = field(default_factory=list)
    cells_added: int = 0
    cells_identical: int = 0
    cells_skipped: int = 0
    instances_added: int = 0
    instances_identical: int = 0
    manifests_copied: int = 0

    def render(self) -> str:
        lines = [
            "merge-cache report",
            "-" * 40,
            f"{'destination':<24}{self.dest}",
            f"{'sources':<24}{len(self.sources)}",
            f"{'cells added':<24}{self.cells_added}",
            f"{'cells identical':<24}{self.cells_identical}",
            f"{'cells skipped':<24}{self.cells_skipped}",
            f"{'instances added':<24}{self.instances_added}",
            f"{'instances identical':<24}{self.instances_identical}",
            f"{'manifests copied':<24}{self.manifests_copied}",
        ]
        return "\n".join(lines)


def merge_caches(
    sources: Sequence[Union[SweepCache, PathLike]],
    dest: Union[SweepCache, PathLike],
    telemetry: Optional[Any] = None,
) -> MergeReport:
    """Merge shard sweep caches into one resumable cache.

    For every cell result and instance in each source (processed in the
    given order, files in sorted-name order within a source):

    * **absent from the destination** -- copied verbatim (atomic temp +
      rename, preserving byte-exact content so a resume renders exactly
      like the original run);
    * **present with identical content** -- counted and skipped, which
      is what makes overlap and re-merged shards harmless;
    * **present with different content** -- a hard
      :class:`~repro.errors.CacheMergeConflictError` carrying the cell
      key, both result hashes, and provenance lines from the shard
      manifests covering that key on each side.  Nothing is deleted:
      the destination keeps its value, the conflicting source is left
      untouched, and the merge aborts.

    Identity is content, not bytes, where bytes are unstable: instances
    are compared by :func:`repro.dag.flat.content_hash` (``.npz``
    archives embed timestamps), cell results by exact metric-value
    equality (JSON floats round-trip exactly).  Manifests (run + shard)
    are copied over so the merged cache carries full provenance.

    After merging every shard of a sweep, re-running the *unsharded*
    sweep with ``cache=dest, resume=True`` serves all cells from the
    cache and is bit-identical to a single-host run.

    Returns a :class:`MergeReport`; emits ``merge.start`` /
    ``merge.source`` / ``merge.conflict`` / ``merge.done`` telemetry
    events when a sink is given.
    """
    from repro.dag.flat import content_hash

    dest_cache = dest if isinstance(dest, SweepCache) else SweepCache(dest)
    if not sources:
        raise SweepConfigError("merge_caches needs at least one source cache")
    src_caches: List[SweepCache] = []
    dest_root = dest_cache.root.resolve()
    for src in sources:
        cache = src if isinstance(src, SweepCache) else SweepCache(src)
        if not cache.root.is_dir():
            raise SweepConfigError(
                f"merge_caches source {cache.root} is not a directory "
                f"(every source must be an existing shard cache)"
            )
        if cache.root.resolve() == dest_root:
            raise SweepConfigError(
                f"merge_caches destination {dest_cache.root} is also a "
                f"source: merging a cache into itself is always a no-op "
                f"or a conflict -- pass a separate destination"
            )
        src_caches.append(cache)

    report = MergeReport(
        dest=str(dest_cache.root),
        sources=[str(c.root) for c in src_caches],
    )
    if telemetry is not None:
        telemetry.emit(
            "merge.start", dest=report.dest, sources=report.sources
        )

    for src in src_caches:
        before = (
            report.cells_added,
            report.cells_identical,
            report.instances_added,
        )
        # -- cell results ---------------------------------------------
        if src.cells_dir.is_dir():
            for path in sorted(src.cells_dir.glob("*.json")):
                key = path.stem
                metrics = src.load_cell(key, strict=True)
                if metrics is None:
                    # Stale schema: not this format's data, never merged.
                    report.cells_skipped += 1
                    continue
                existing = dest_cache.load_cell(key, strict=True)
                if existing is None:
                    _copy_atomic(path, dest_cache.cells_dir, path.name)
                    report.cells_added += 1
                elif existing == metrics:
                    report.cells_identical += 1
                else:
                    provenance = tuple(
                        _provenance_for(key, src.root)
                        + _provenance_for(key, dest_cache.root)
                    )
                    if telemetry is not None:
                        telemetry.emit(
                            "merge.conflict",
                            kind="cell",
                            key=key,
                            source=str(src.root),
                            dest=report.dest,
                        )
                    raise CacheMergeConflictError(
                        f"cell {key} exists in both {dest_cache.root} "
                        f"(result hash {_result_hash(existing)}) and "
                        f"{src.root} (result hash {_result_hash(metrics)}) "
                        f"with different values -- same coordinates must "
                        f"produce identical floats, so one side ran "
                        f"different code, a different environment, or was "
                        f"tampered with.\nprovenance:\n  "
                        + "\n  ".join(provenance),
                        key=key,
                        kind="cell",
                        provenance=provenance,
                    )
        # -- instances ------------------------------------------------
        if src.instances_dir.is_dir():
            for path in sorted(src.instances_dir.glob("*.npz")):
                key = path.stem
                if not dest_cache.instance_path(key).exists():
                    _copy_atomic(path, dest_cache.instances_dir, path.name)
                    report.instances_added += 1
                    continue
                src_flat = src.load_instance(key, strict=True)
                dst_flat = dest_cache.load_instance(key, strict=True)
                src_hash = content_hash(src_flat)
                dst_hash = content_hash(dst_flat)
                if src_hash == dst_hash:
                    report.instances_identical += 1
                    continue
                provenance = (
                    f"cache {src.root}: instance hash {src_hash}",
                    f"cache {dest_cache.root}: instance hash {dst_hash}",
                )
                if telemetry is not None:
                    telemetry.emit(
                        "merge.conflict",
                        kind="instance",
                        key=key,
                        source=str(src.root),
                        dest=report.dest,
                    )
                raise CacheMergeConflictError(
                    f"instance {key} exists in both {dest_cache.root} and "
                    f"{src.root} with different content "
                    f"({dst_hash} vs {src_hash}) -- the same workload key "
                    f"must generate the same instance.\nprovenance:\n  "
                    + "\n  ".join(provenance),
                    key=key,
                    kind="instance",
                    provenance=provenance,
                )
        # -- manifests (run + shard): provenance travels with the data
        src_manifests = src.manifests_dir
        if src_manifests.is_dir():
            for path in sorted(src_manifests.glob("*.json")):
                _copy_atomic(path, dest_cache.manifests_dir, path.name)
                report.manifests_copied += 1
        if telemetry is not None:
            telemetry.emit(
                "merge.source",
                source=str(src.root),
                cells_added=report.cells_added - before[0],
                cells_identical=report.cells_identical - before[1],
                instances_added=report.instances_added - before[2],
            )

    if telemetry is not None:
        telemetry.emit(
            "merge.done",
            dest=report.dest,
            cells_added=report.cells_added,
            cells_identical=report.cells_identical,
            instances_added=report.instances_added,
            manifests_copied=report.manifests_copied,
        )
    return report


def merge_telemetry(
    sources: Sequence[PathLike], dest: PathLike
) -> Tuple[Path, int]:
    """Concatenate shard telemetry ledgers into one JSONL log.

    Each source is parsed with :func:`repro.obs.telemetry.read_events`
    first (torn tails from killed shards are dropped, anything else
    malformed raises), then re-serialized event by event into ``dest``
    in source order.  Per-shard sessions stay intact -- each shard's
    ``telemetry.open`` marks a clock reset, which
    :func:`repro.obs.audit_events` already understands -- so the merged
    ledger summarizes and audits exactly like a ledger produced by one
    process running the shards back to back.

    Returns ``(dest_path, n_events)``.
    """
    from repro.obs.telemetry import read_events

    if not sources:
        raise SweepConfigError(
            "merge_telemetry needs at least one source event log"
        )
    dest_path = Path(dest)
    batches: List[List[Dict[str, Any]]] = []
    for src in sources:
        src_path = Path(src)
        if not src_path.exists():
            raise SweepConfigError(
                f"merge_telemetry source {src_path} does not exist"
            )
        if src_path.resolve() == dest_path.resolve():
            raise SweepConfigError(
                f"merge_telemetry destination {dest_path} is also a "
                f"source -- pass a separate destination"
            )
        batches.append(read_events(src_path))
    dest_path.parent.mkdir(parents=True, exist_ok=True)
    n_events = 0
    fd, tmp = tempfile.mkstemp(dir=dest_path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            for events in batches:
                for event in events:
                    fh.write(json.dumps(event) + "\n")
                    n_events += 1
        os.replace(tmp, dest_path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return dest_path, n_events
