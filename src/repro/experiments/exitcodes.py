"""Process exit codes for ``python -m repro.experiments`` (ISSUE 9).

One constant module instead of numbers scattered across subcommands, so
scripted pipelines branch on names with a single import::

    from repro.experiments.exitcodes import EXIT_SEARCH_INFEASIBLE

The convention, shared by **every** subcommand:

==========================  =====  =============================================
constant                    value  meaning
==========================  =====  =============================================
``EXIT_OK``                 0      the command succeeded
``EXIT_FAILURE``            1      the command ran but its check failed (a
                                   failing ``verify`` shape, a telemetry audit
                                   problem)
``EXIT_MERGE_CONFLICT``     2      ``merge-cache`` found the same cell key with
                                   different content in two shard caches (see
                                   :class:`repro.errors.CacheMergeConflictError`)
``EXIT_SEARCH_INFEASIBLE``  3      ``search --budget`` proved no candidate meets
                                   the budget (see
                                   :class:`repro.errors.SearchInfeasibleError`);
                                   the closest attempt is printed to stderr
==========================  =====  =============================================

Caveat on 2: ``argparse`` also exits with 2 on *usage* errors (its
hard-wired convention), so code 2 from ``merge-cache`` specifically
means "content conflict" only when the command got past argument
parsing -- the conflict path prints ``merge conflict:`` to stderr,
usage errors print the usage string.  New failure modes get fresh codes
(3+) precisely so they never collide with either meaning of 2.
"""

from __future__ import annotations

__all__ = [
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_MERGE_CONFLICT",
    "EXIT_SEARCH_INFEASIBLE",
]

#: The command succeeded.
EXIT_OK = 0

#: The command ran but its check failed (verify shapes, telemetry audit).
EXIT_FAILURE = 1

#: ``merge-cache``: same cell key, different content (never silently
#: picks a winner).  Also argparse's usage-error code -- see module
#: docstring.
EXIT_MERGE_CONFLICT = 2

#: ``search --budget``: no candidate meets the budget.
EXIT_SEARCH_INFEASIBLE = 3
