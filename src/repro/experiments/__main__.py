"""Command-line entry point for the reproduction harness.

Usage::

    python -m repro.experiments fig2a [--n-jobs N] [--reps R] [--seed S]
    python -m repro.experiments all --n-jobs 1000 --jobs 4
    python -m repro.experiments fig2a --telemetry events.jsonl
    python -m repro.experiments telemetry events.jsonl

Adaptive experimentation (ISSUE 9; see EXPERIMENTS.md "Ask a question,
not a grid")::

    python -m repro.experiments search --space '{"k": [0, 4, 16, 64]}' \
        --workload '{"qps": 1200, "n_jobs": 1500}' --m 16
    python -m repro.experiments search --fixed '{"k": 16}' \
        --space '{"speed": [1.0, 1.1, 1.25, 1.5, 2.0]}' --budget 150 \
        --workload '{"qps": 1200, "n_jobs": 1500}' --m 16 --reps 3
    python -m repro.experiments ablate --fixed '{"k": 16}' \
        --deltas '{"no-steal": {"k": 0}, "half-m": {"m": 8}}' \
        --workload '{"qps": 1200, "n_jobs": 1500}' --m 16

Cache maintenance for sharded sweeps (see EXPERIMENTS.md)::

    python -m repro.experiments merge-cache SRC [SRC ...] --dest DIR
    python -m repro.experiments merge-telemetry SRC [SRC ...] --dest FILE
    python -m repro.experiments clean-cache [--cache-dir DIR]

Exit codes are unified across subcommands in
:mod:`repro.experiments.exitcodes` (0 ok, 1 failed check, 2 merge
conflict / usage error, 3 infeasible search budget).

``merge-cache`` combines shard caches losslessly; a content conflict
(same cell key, different result) prints a provenance-bearing error and
exits with code 2.  ``clean-cache`` clears the resolved cache directory
completely (cells, instances, manifests, sidecars) so a cleared cache
cannot poison a later merge.

Experiment ids and what they regenerate are listed in
``repro.experiments.config.EXPERIMENTS`` and in DESIGN.md's
per-experiment index.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import figures
from repro.experiments.config import (
    EXPERIMENTS,
    ExperimentScale,
    FIG2A,
    FIG2B,
    FIG2C,
    SCALE_STANDARD,
)


#: id -> callable(scale, seed) -> SeriesResult (or rendered text).
#: Kept as a table so the tests can assert it covers the EXPERIMENTS
#: registry exactly.
DISPATCH = {
    "fig2a": lambda scale, seed: figures.figure2(FIG2A, scale, seed=seed),
    "fig2b": lambda scale, seed: figures.figure2(FIG2B, scale, seed=seed),
    "fig2c": lambda scale, seed: figures.figure2(FIG2C, scale, seed=seed),
    "fig3": lambda scale, seed: figures.render_figure3(seed=seed),
    "lb5": lambda scale, seed: figures.lower_bound_experiment(seed=seed),
    "thm31": lambda scale, seed: (
        figures.speed_augmentation_experiment(seed=seed)
    ),
    "thm71": lambda scale, seed: figures.weighted_experiment(seed=seed),
    "abl-k": lambda scale, seed: figures.k_sweep_experiment(seed=seed),
    "abl-load": lambda scale, seed: (
        figures.load_sweep_experiment(seed=seed)
    ),
    "abl-steal": lambda scale, seed: (
        figures.steal_policy_experiment(seed=seed)
    ),
    "abl-sched": lambda scale, seed: (
        figures.scheduler_comparison_experiment(seed=seed)
    ),
    "abl-burst": lambda scale, seed: (
        figures.burstiness_experiment(seed=seed)
    ),
    "abl-grain": lambda scale, seed: figures.grain_experiment(seed=seed),
    "ext-speedup": lambda scale, seed: (
        figures.speedup_contrast_experiment(seed=seed)
    ),
    "ext-wws": lambda scale, seed: (
        figures.weighted_work_stealing_experiment(seed=seed)
    ),
    "ext-norms": lambda scale, seed: (
        figures.norm_profile_experiment(seed=seed)
    ),
    "ext-scaling": lambda scale, seed: (
        figures.single_job_scaling_experiment(seed=seed)
    ),
    "ext-makespan": lambda scale, seed: figures.makespan_experiment(seed=seed),
    "ext-overheads": lambda scale, seed: figures.overheads_experiment(seed=seed),
}


def _run_one(
    exp_id: str, scale: ExperimentScale, seed: int, chart: bool = False
) -> str:
    """Dispatch one experiment id to its figure function; returns text.

    With ``chart`` the series experiments append an ASCII chart view
    below the table (fig3's histograms are already graphical).
    """
    try:
        runner = DISPATCH[exp_id]
    except KeyError:
        raise ValueError(f"unknown experiment {exp_id!r}") from None
    result = runner(scale, seed)
    if isinstance(result, str):
        return result
    text = result.render()
    if chart:
        text += "\n\n" + result.render_chart()
    return text


# The unified exit-code vocabulary (ISSUE 9); re-exported here so
# ``from repro.experiments.__main__ import EXIT_MERGE_CONFLICT`` keeps
# working -- repro.experiments.exitcodes is the canonical home.
from repro.experiments.exitcodes import (  # noqa: E402
    EXIT_FAILURE,
    EXIT_MERGE_CONFLICT,
    EXIT_OK,
    EXIT_SEARCH_INFEASIBLE,
)

#: Maintenance subcommands dispatched before the experiment parser --
#: they take source paths, not experiment ids.
MAINTENANCE_COMMANDS = ("merge-cache", "merge-telemetry", "clean-cache")

#: Adaptive-experimentation subcommands (ISSUE 9), likewise dispatched
#: before the experiment parser -- they take JSON knob payloads, not
#: experiment ids.
ADAPTIVE_COMMANDS = ("search", "ablate")


def _maintenance_main(argv: list[str]) -> int:
    """The ``merge-cache`` / ``merge-telemetry`` / ``clean-cache`` CLI."""
    command = argv[0]
    parser = argparse.ArgumentParser(
        prog=f"python -m repro.experiments {command}",
        description={
            "merge-cache": (
                "Merge shard sweep caches into one resumable cache "
                "(content-hash conflict detection; exit 2 on conflict)."
            ),
            "merge-telemetry": (
                "Concatenate shard telemetry event logs into one ledger "
                "(each source is validated first)."
            ),
            "clean-cache": (
                "Remove the cache directory completely: cells, "
                "instances, manifests, checkpoint sidecars."
            ),
        }[command],
    )
    if command in ("merge-cache", "merge-telemetry"):
        parser.add_argument(
            "sources",
            nargs="+",
            help=(
                "shard cache directories" if command == "merge-cache"
                else "shard telemetry logs (JSONL)"
            ),
        )
        parser.add_argument(
            "--dest",
            required=True,
            help=(
                "destination cache directory (created if missing)"
                if command == "merge-cache"
                else "destination event log (overwritten atomically)"
            ),
        )
    else:
        parser.add_argument(
            "--cache-dir",
            type=str,
            default=None,
            help=(
                "cache directory to remove (default: the REPRO_CACHE "
                "environment variable, else .repro_cache/)"
            ),
        )
    args = parser.parse_args(argv[1:])

    from repro.errors import CacheMergeConflictError, SweepConfigError

    try:
        if command == "merge-cache":
            from repro.experiments.shard import merge_caches

            report = merge_caches(args.sources, args.dest)
            print(report.render())
            return 0
        if command == "merge-telemetry":
            from repro.experiments.shard import merge_telemetry

            dest, n_events = merge_telemetry(args.sources, args.dest)
            print(
                f"merged {n_events} events from {len(args.sources)} "
                f"log(s) into {dest}"
            )
            return 0
        from repro.experiments.cache import SweepCache

        cache = SweepCache(args.cache_dir)
        stats = cache.stats()
        cache.clear()
        print(
            f"cleared {cache.root} "
            f"({stats['cells']} cells, {stats['instances']} instances, "
            f"{stats['manifests']} manifests)"
        )
        return 0
    except CacheMergeConflictError as exc:
        print(f"merge conflict: {exc}", file=sys.stderr)
        return EXIT_MERGE_CONFLICT
    except SweepConfigError as exc:
        parser.error(str(exc))
        return 1  # pragma: no cover - parser.error raises SystemExit


#: Distribution names the adaptive CLI's --workload JSON accepts.
WORKLOAD_DISTRIBUTIONS = (
    "bing", "finance", "lognormal", "uniform", "constant", "exponential",
)


def _parse_json_arg(parser, name: str, raw: str, expect: type):
    """Parse one --flag JSON payload, failing as a usage error."""
    try:
        value = json.loads(raw)
    except json.JSONDecodeError as exc:
        parser.error(f"{name} is not valid JSON: {exc}")
    if not isinstance(value, expect):
        parser.error(
            f"{name} must be a JSON {expect.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _build_workload(parser, raw: str, m: int):
    """A WorkloadSpec from the --workload JSON payload.

    Keys: ``distribution`` (one of :data:`WORKLOAD_DISTRIBUTIONS`, with
    optional ``distribution_args``), plus any
    :class:`~repro.workloads.generator.WorkloadSpec` field
    (``qps``/``n_jobs`` required; ``m`` defaults to the run's --m).
    """
    from repro.workloads import distributions as dist_mod
    from repro.workloads.generator import WorkloadSpec

    payload = _parse_json_arg(parser, "--workload", raw, dict)
    name = payload.pop("distribution", "bing")
    dist_args = payload.pop("distribution_args", {})
    classes = {
        "bing": dist_mod.BingDistribution,
        "finance": dist_mod.FinanceDistribution,
        "lognormal": dist_mod.LogNormalDistribution,
        "uniform": dist_mod.UniformDistribution,
        "constant": dist_mod.ConstantDistribution,
        "exponential": dist_mod.ExponentialDistribution,
    }
    if name not in classes:
        parser.error(
            f"--workload distribution must be one of "
            f"{sorted(classes)}, got {name!r}"
        )
    missing = [key for key in ("qps", "n_jobs") if key not in payload]
    if missing:
        parser.error(f"--workload JSON needs {missing}")
    payload.setdefault("m", m)
    try:
        return WorkloadSpec(classes[name](**dist_args), **payload)
    except TypeError as exc:
        parser.error(f"--workload: {exc}")


def _build_scheduler(parser, name: str, fixed_raw: str | None):
    """A scheduler factory from --scheduler (+ optional --fixed JSON).

    ``name`` is anything :func:`repro.api._as_factory` takes as a
    string (an engine name); ``--fixed`` pins scheduler keyword
    arguments outside the searched space (e.g. ``'{"k": 16}'`` while
    bisecting speed).
    """
    import functools

    from repro.api import _as_factory
    from repro.errors import SweepConfigError

    try:
        factory = _as_factory(name)
    except (SweepConfigError, TypeError) as exc:
        parser.error(str(exc))
    if fixed_raw is None:
        return factory
    fixed = _parse_json_arg(parser, "--fixed", fixed_raw, dict)
    return functools.partial(factory, **fixed)


def _adaptive_main(argv: list[str]) -> int:
    """The ``search`` / ``ablate`` CLI (ISSUE 9).

    Exit codes follow :mod:`repro.experiments.exitcodes`:
    :data:`EXIT_OK` on success, argparse's 2 on usage errors (including
    :class:`~repro.errors.SweepConfigError` from the harness), and
    :data:`EXIT_SEARCH_INFEASIBLE` when ``search --budget`` proves no
    candidate qualifies.
    """
    command = argv[0]
    parser = argparse.ArgumentParser(
        prog=f"python -m repro.experiments {command}",
        description={
            "search": (
                "Adaptive search: successive halving over a JSON "
                "space, or (with --budget) bisection for the smallest "
                "candidate meeting a flow-time budget.  Every "
                "evaluation is a cached, byte-identical sweep cell."
            ),
            "ablate": (
                "Declarative ablation: a baseline plus named deltas, "
                "run on identical instances, ranked by impact on the "
                "objective."
            ),
        }[command],
    )
    parser.add_argument(
        "--scheduler",
        default="work-stealing",
        help=(
            "engine name (work-stealing, flat, speedup-fifo, "
            "speedup-equi); combine with --fixed to pin scheduler "
            "parameters"
        ),
    )
    parser.add_argument(
        "--fixed",
        default=None,
        metavar="JSON",
        help='pinned scheduler kwargs, e.g. \'{"k": 16}\'',
    )
    parser.add_argument(
        "--workload",
        required=True,
        metavar="JSON",
        help=(
            'workload spec, e.g. \'{"distribution": "bing", '
            '"qps": 1200, "n_jobs": 1500}\' (any WorkloadSpec field; '
            "distribution_args feed the distribution constructor)"
        ),
    )
    parser.add_argument("--m", type=int, required=True, help="machine size")
    parser.add_argument(
        "--speed", type=float, default=1.0, help="speed augmentation factor"
    )
    parser.add_argument(
        "--objective", default="max_flow", help="metric to minimize"
    )
    parser.add_argument("--seed", type=int, default=0, help="search seed")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "content-addressed cell cache (default: REPRO_CACHE, else "
            ".repro_cache/); reruns against the same directory are "
            "nearly all cache hits"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="worker processes"
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append JSONL telemetry (search.*/ablate.* events) to PATH",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the structured result as JSON instead of the summary",
    )
    if command == "search":
        parser.add_argument(
            "--space",
            required=True,
            metavar="JSON",
            help=(
                'candidate space, e.g. \'{"k": [0, 4, 16, 64]}\'; with '
                "--budget it must hold exactly one ascending axis "
                '(which may be "speed"/"augmentation")'
            ),
        )
        parser.add_argument(
            "--budget",
            type=float,
            default=None,
            help=(
                "threshold mode: find the smallest candidate with "
                "objective <= BUDGET (exit 3 when none qualifies)"
            ),
        )
        parser.add_argument(
            "--r0", type=int, default=1, help="round-0 repetitions (halving)"
        )
        parser.add_argument(
            "--eta", type=int, default=2,
            help="keep 1/eta of candidates per round (halving)",
        )
        parser.add_argument(
            "--rounds", type=int, default=None, help="halving round count"
        )
        parser.add_argument(
            "--reps", type=int, default=1,
            help="repetitions per probe (threshold mode)",
        )
        parser.add_argument(
            "--refine", choices=["ga"], default=None,
            help="append a GA refinement stage after halving",
        )
    else:
        parser.add_argument(
            "--baseline",
            default="{}",
            metavar="JSON",
            help='baseline knob overrides, e.g. \'{"k": 16}\'',
        )
        parser.add_argument(
            "--deltas",
            required=True,
            metavar="JSON",
            help=(
                "named deltas, e.g. '{\"no-steal\": {\"k\": 0}, "
                '"half-m": {"m": 8}}\' (scheduler params, m/num_workers, '
                "speed/augmentation, workload.<field>)"
            ),
        )
        parser.add_argument(
            "--reps", type=int, default=1, help="repetitions per config"
        )
        parser.add_argument(
            "--markdown",
            action="store_true",
            help="print the report as a markdown table",
        )
    args = parser.parse_args(argv[1:])

    import os

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    telemetry = None
    if args.telemetry is not None:
        from repro.obs import Telemetry

        telemetry = Telemetry(args.telemetry)
    cache = args.cache_dir  # None lets the harness resolve REPRO_CACHE

    from repro.errors import SearchInfeasibleError, SweepConfigError

    workload = _build_workload(parser, args.workload, args.m)
    factory = _build_scheduler(parser, args.scheduler, args.fixed)
    try:
        if command == "search":
            import repro

            space = _parse_json_arg(parser, "--space", args.space, dict)
            result = repro.search(
                factory,
                space,
                workload,
                m=args.m,
                speed=args.speed,
                budget=args.budget,
                objective=args.objective,
                r0=args.r0,
                eta=args.eta,
                rounds=args.rounds,
                reps=args.reps,
                seed=args.seed,
                refine=args.refine,
                cache=cache,
                telemetry=telemetry,
            )
            print(
                json.dumps(result.as_dict(), indent=2)
                if args.json
                else result.summary()
            )
        else:
            import repro

            baseline = _parse_json_arg(
                parser, "--baseline", args.baseline, dict
            )
            deltas = _parse_json_arg(parser, "--deltas", args.deltas, dict)
            report = repro.ablate(
                factory,
                baseline,
                deltas,
                workload,
                m=args.m,
                speed=args.speed,
                objective=args.objective,
                reps=args.reps,
                seed=args.seed,
                cache=cache,
                telemetry=telemetry,
            )
            if args.json:
                print(json.dumps(report.as_dict(), indent=2))
            elif args.markdown:
                print(report.to_markdown())
            else:
                print(report.summary())
    except SearchInfeasibleError as exc:
        print(f"search infeasible: {exc}", file=sys.stderr)
        return EXIT_SEARCH_INFEASIBLE
    except (SweepConfigError, TypeError) as exc:
        parser.error(str(exc))
    finally:
        if telemetry is not None:
            telemetry.close()
            print(f"(telemetry written to {telemetry.path})")
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in MAINTENANCE_COMMANDS:
        return _maintenance_main(list(argv))
    if argv and argv[0] in ADAPTIVE_COMMANDS:
        return _adaptive_main(list(argv))
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures (see DESIGN.md).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "verify", "telemetry"],
        help=(
            "experiment id, 'all', 'verify' (smoke-check every shape), "
            "or 'telemetry' (summarize + audit an event log)"
        ),
    )
    parser.add_argument(
        "log",
        nargs="?",
        default=None,
        help="event log to summarize (the 'telemetry' command only)",
    )
    parser.add_argument(
        "--n-jobs", type=int, default=SCALE_STANDARD.n_jobs,
        help="jobs per data point (fig2 experiments)",
    )
    parser.add_argument(
        "--reps", type=int, default=SCALE_STANDARD.reps,
        help="repetitions per data point (fig2 experiments)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for parallel experiment cells (default: "
            "the REPRO_JOBS environment variable, else the CPU count; "
            "1 forces serial execution).  Cell seeds derive from cell "
            "coordinates, so the value never changes the numbers."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=(
            "content-addressed cache directory for instances and cell "
            "results (default: the REPRO_CACHE environment variable, "
            "else .repro_cache/)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "serve previously computed cells from the cache instead of "
            "recomputing them; cached values are the exact floats of "
            "the original run, so results are bit-identical"
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell deadline for parallel experiment cells (default: "
            "the REPRO_CELL_TIMEOUT environment variable, else no "
            "deadline).  An expired cell's worker is terminated and the "
            "cell is retried from its coordinate-derived seed, so the "
            "value never changes the numbers."
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retry budget per crashed or deadline-expired cell "
            "(default: the REPRO_RETRIES environment variable, else 2; "
            "0 disables retries).  Exhaustion aborts the sweep with "
            "CellCrashedError / CellTimeoutError."
        ),
    )
    parser.add_argument(
        "--telemetry",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "append structured run telemetry (JSONL events; see "
            "docs/OBSERVABILITY.md) to PATH while experiments run, and "
            "write run manifests next to the cache dir; summarize the "
            "log afterwards with 'python -m repro.experiments "
            "telemetry PATH'.  Never changes any result."
        ),
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each series experiment as an ASCII chart",
    )
    parser.add_argument(
        "--json-dir",
        type=str,
        default=None,
        help=(
            "also write each experiment's structured series as "
            "<json-dir>/<id>.json (x values, series, title, seed) for "
            "downstream plotting"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment == "telemetry":
        if args.log is None:
            parser.error("telemetry requires an event-log path")
        from repro.obs import audit_events, read_events, summarize_events

        log_path = Path(args.log)
        if not log_path.exists():
            parser.error(f"no such event log: {log_path}")
        events = read_events(log_path)
        print(summarize_events(events))
        print()
        problems = audit_events(events)
        if problems:
            print(f"audit: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("audit: ok")
        return 0
    if args.log is not None:
        parser.error("a log path only accompanies the 'telemetry' command")

    # Route runtime knobs through their environment overrides rather
    # than threading parameters into every dispatch entry; parallel
    # cells and caches resolve them via repro.experiments.parallel and
    # repro.experiments.cache (and repro.obs.telemetry for --telemetry).
    import os

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.cache_dir is not None:
        from repro.experiments.cache import CACHE_ENV

        os.environ[CACHE_ENV] = args.cache_dir
    if args.resume:
        from repro.experiments.cache import RESUME_ENV

        os.environ[RESUME_ENV] = "1"
    if args.cell_timeout is not None:
        from repro.experiments.parallel import CELL_TIMEOUT_ENV

        os.environ[CELL_TIMEOUT_ENV] = str(args.cell_timeout)
    if args.retries is not None:
        from repro.experiments.parallel import RETRIES_ENV

        os.environ[RETRIES_ENV] = str(args.retries)
    if args.telemetry is not None:
        from repro.obs.telemetry import TELEMETRY_ENV

        os.environ[TELEMETRY_ENV] = args.telemetry

    scale = ExperimentScale(n_jobs=args.n_jobs, reps=args.reps)
    if args.experiment == "verify":
        from repro.experiments.verify import render_verification, verify_reproduction

        t0 = time.perf_counter()
        checks = verify_reproduction(
            ExperimentScale(n_jobs=min(args.n_jobs, 1000), reps=1), args.seed
        )
        print(render_verification(checks))
        print(f"-- verify done in {time.perf_counter() - t0:.1f}s")
        _close_env_telemetry(args)
        return 0 if all(c.passed for c in checks) else 1

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        t0 = time.perf_counter()
        print(f"== {exp_id}: {EXPERIMENTS[exp_id]} ==")
        result = DISPATCH[exp_id](scale, args.seed)
        if isinstance(result, str):
            print(result)
        else:
            print(result.render())
            if args.chart:
                print()
                print(result.render_chart())
            if args.json_dir is not None:
                out_dir = Path(args.json_dir)
                out_dir.mkdir(parents=True, exist_ok=True)
                payload = {
                    "experiment": exp_id,
                    "title": result.title,
                    "x_label": result.x_label,
                    "x_values": result.x_values,
                    "series": result.series,
                    "notes": result.notes,
                    "seed": args.seed,
                    "n_jobs": scale.n_jobs,
                    "reps": scale.reps,
                }
                path = out_dir / f"{exp_id}.json"
                path.write_text(json.dumps(payload, indent=2))
                print(f"(series written to {path})")
        print(f"-- {exp_id} done in {time.perf_counter() - t0:.1f}s\n")
    _close_env_telemetry(args)
    return 0


def _close_env_telemetry(args) -> None:
    """Flush and close the ``--telemetry`` sink, printing where it went."""
    if getattr(args, "telemetry", None) is None:
        return
    from repro.obs.telemetry import default_telemetry

    tel = default_telemetry()
    if tel is not None:
        tel.close()
        print(f"(telemetry written to {tel.path})")


if __name__ == "__main__":
    sys.exit(main())
