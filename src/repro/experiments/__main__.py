"""Command-line entry point for the reproduction harness.

Usage::

    python -m repro.experiments fig2a [--n-jobs N] [--reps R] [--seed S]
    python -m repro.experiments all --n-jobs 1000 --jobs 4
    python -m repro.experiments fig2a --telemetry events.jsonl
    python -m repro.experiments telemetry events.jsonl

Cache maintenance for sharded sweeps (see EXPERIMENTS.md)::

    python -m repro.experiments merge-cache SRC [SRC ...] --dest DIR
    python -m repro.experiments merge-telemetry SRC [SRC ...] --dest FILE
    python -m repro.experiments clean-cache [--cache-dir DIR]

``merge-cache`` combines shard caches losslessly; a content conflict
(same cell key, different result) prints a provenance-bearing error and
exits with code 2.  ``clean-cache`` clears the resolved cache directory
completely (cells, instances, manifests, sidecars) so a cleared cache
cannot poison a later merge.

Experiment ids and what they regenerate are listed in
``repro.experiments.config.EXPERIMENTS`` and in DESIGN.md's
per-experiment index.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import figures
from repro.experiments.config import (
    EXPERIMENTS,
    ExperimentScale,
    FIG2A,
    FIG2B,
    FIG2C,
    SCALE_STANDARD,
)


#: id -> callable(scale, seed) -> SeriesResult (or rendered text).
#: Kept as a table so the tests can assert it covers the EXPERIMENTS
#: registry exactly.
DISPATCH = {
    "fig2a": lambda scale, seed: figures.figure2(FIG2A, scale, seed=seed),
    "fig2b": lambda scale, seed: figures.figure2(FIG2B, scale, seed=seed),
    "fig2c": lambda scale, seed: figures.figure2(FIG2C, scale, seed=seed),
    "fig3": lambda scale, seed: figures.render_figure3(seed=seed),
    "lb5": lambda scale, seed: figures.lower_bound_experiment(seed=seed),
    "thm31": lambda scale, seed: (
        figures.speed_augmentation_experiment(seed=seed)
    ),
    "thm71": lambda scale, seed: figures.weighted_experiment(seed=seed),
    "abl-k": lambda scale, seed: figures.k_sweep_experiment(seed=seed),
    "abl-load": lambda scale, seed: (
        figures.load_sweep_experiment(seed=seed)
    ),
    "abl-steal": lambda scale, seed: (
        figures.steal_policy_experiment(seed=seed)
    ),
    "abl-sched": lambda scale, seed: (
        figures.scheduler_comparison_experiment(seed=seed)
    ),
    "abl-burst": lambda scale, seed: (
        figures.burstiness_experiment(seed=seed)
    ),
    "abl-grain": lambda scale, seed: figures.grain_experiment(seed=seed),
    "ext-speedup": lambda scale, seed: (
        figures.speedup_contrast_experiment(seed=seed)
    ),
    "ext-wws": lambda scale, seed: (
        figures.weighted_work_stealing_experiment(seed=seed)
    ),
    "ext-norms": lambda scale, seed: (
        figures.norm_profile_experiment(seed=seed)
    ),
    "ext-scaling": lambda scale, seed: (
        figures.single_job_scaling_experiment(seed=seed)
    ),
    "ext-makespan": lambda scale, seed: figures.makespan_experiment(seed=seed),
    "ext-overheads": lambda scale, seed: figures.overheads_experiment(seed=seed),
}


def _run_one(
    exp_id: str, scale: ExperimentScale, seed: int, chart: bool = False
) -> str:
    """Dispatch one experiment id to its figure function; returns text.

    With ``chart`` the series experiments append an ASCII chart view
    below the table (fig3's histograms are already graphical).
    """
    try:
        runner = DISPATCH[exp_id]
    except KeyError:
        raise ValueError(f"unknown experiment {exp_id!r}") from None
    result = runner(scale, seed)
    if isinstance(result, str):
        return result
    text = result.render()
    if chart:
        text += "\n\n" + result.render_chart()
    return text


#: Exit code for a cache-merge content conflict (vs 1 = usage/audit
#: failure): scripted multi-host pipelines branch on it.
EXIT_MERGE_CONFLICT = 2

#: Maintenance subcommands dispatched before the experiment parser --
#: they take source paths, not experiment ids.
MAINTENANCE_COMMANDS = ("merge-cache", "merge-telemetry", "clean-cache")


def _maintenance_main(argv: list[str]) -> int:
    """The ``merge-cache`` / ``merge-telemetry`` / ``clean-cache`` CLI."""
    command = argv[0]
    parser = argparse.ArgumentParser(
        prog=f"python -m repro.experiments {command}",
        description={
            "merge-cache": (
                "Merge shard sweep caches into one resumable cache "
                "(content-hash conflict detection; exit 2 on conflict)."
            ),
            "merge-telemetry": (
                "Concatenate shard telemetry event logs into one ledger "
                "(each source is validated first)."
            ),
            "clean-cache": (
                "Remove the cache directory completely: cells, "
                "instances, manifests, checkpoint sidecars."
            ),
        }[command],
    )
    if command in ("merge-cache", "merge-telemetry"):
        parser.add_argument(
            "sources",
            nargs="+",
            help=(
                "shard cache directories" if command == "merge-cache"
                else "shard telemetry logs (JSONL)"
            ),
        )
        parser.add_argument(
            "--dest",
            required=True,
            help=(
                "destination cache directory (created if missing)"
                if command == "merge-cache"
                else "destination event log (overwritten atomically)"
            ),
        )
    else:
        parser.add_argument(
            "--cache-dir",
            type=str,
            default=None,
            help=(
                "cache directory to remove (default: the REPRO_CACHE "
                "environment variable, else .repro_cache/)"
            ),
        )
    args = parser.parse_args(argv[1:])

    from repro.errors import CacheMergeConflictError, SweepConfigError

    try:
        if command == "merge-cache":
            from repro.experiments.shard import merge_caches

            report = merge_caches(args.sources, args.dest)
            print(report.render())
            return 0
        if command == "merge-telemetry":
            from repro.experiments.shard import merge_telemetry

            dest, n_events = merge_telemetry(args.sources, args.dest)
            print(
                f"merged {n_events} events from {len(args.sources)} "
                f"log(s) into {dest}"
            )
            return 0
        from repro.experiments.cache import SweepCache

        cache = SweepCache(args.cache_dir)
        stats = cache.stats()
        cache.clear()
        print(
            f"cleared {cache.root} "
            f"({stats['cells']} cells, {stats['instances']} instances, "
            f"{stats['manifests']} manifests)"
        )
        return 0
    except CacheMergeConflictError as exc:
        print(f"merge conflict: {exc}", file=sys.stderr)
        return EXIT_MERGE_CONFLICT
    except SweepConfigError as exc:
        parser.error(str(exc))
        return 1  # pragma: no cover - parser.error raises SystemExit


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in MAINTENANCE_COMMANDS:
        return _maintenance_main(list(argv))
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures (see DESIGN.md).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "verify", "telemetry"],
        help=(
            "experiment id, 'all', 'verify' (smoke-check every shape), "
            "or 'telemetry' (summarize + audit an event log)"
        ),
    )
    parser.add_argument(
        "log",
        nargs="?",
        default=None,
        help="event log to summarize (the 'telemetry' command only)",
    )
    parser.add_argument(
        "--n-jobs", type=int, default=SCALE_STANDARD.n_jobs,
        help="jobs per data point (fig2 experiments)",
    )
    parser.add_argument(
        "--reps", type=int, default=SCALE_STANDARD.reps,
        help="repetitions per data point (fig2 experiments)",
    )
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for parallel experiment cells (default: "
            "the REPRO_JOBS environment variable, else the CPU count; "
            "1 forces serial execution).  Cell seeds derive from cell "
            "coordinates, so the value never changes the numbers."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help=(
            "content-addressed cache directory for instances and cell "
            "results (default: the REPRO_CACHE environment variable, "
            "else .repro_cache/)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "serve previously computed cells from the cache instead of "
            "recomputing them; cached values are the exact floats of "
            "the original run, so results are bit-identical"
        ),
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell deadline for parallel experiment cells (default: "
            "the REPRO_CELL_TIMEOUT environment variable, else no "
            "deadline).  An expired cell's worker is terminated and the "
            "cell is retried from its coordinate-derived seed, so the "
            "value never changes the numbers."
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retry budget per crashed or deadline-expired cell "
            "(default: the REPRO_RETRIES environment variable, else 2; "
            "0 disables retries).  Exhaustion aborts the sweep with "
            "CellCrashedError / CellTimeoutError."
        ),
    )
    parser.add_argument(
        "--telemetry",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "append structured run telemetry (JSONL events; see "
            "docs/OBSERVABILITY.md) to PATH while experiments run, and "
            "write run manifests next to the cache dir; summarize the "
            "log afterwards with 'python -m repro.experiments "
            "telemetry PATH'.  Never changes any result."
        ),
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each series experiment as an ASCII chart",
    )
    parser.add_argument(
        "--json-dir",
        type=str,
        default=None,
        help=(
            "also write each experiment's structured series as "
            "<json-dir>/<id>.json (x values, series, title, seed) for "
            "downstream plotting"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment == "telemetry":
        if args.log is None:
            parser.error("telemetry requires an event-log path")
        from repro.obs import audit_events, read_events, summarize_events

        log_path = Path(args.log)
        if not log_path.exists():
            parser.error(f"no such event log: {log_path}")
        events = read_events(log_path)
        print(summarize_events(events))
        print()
        problems = audit_events(events)
        if problems:
            print(f"audit: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("audit: ok")
        return 0
    if args.log is not None:
        parser.error("a log path only accompanies the 'telemetry' command")

    # Route runtime knobs through their environment overrides rather
    # than threading parameters into every dispatch entry; parallel
    # cells and caches resolve them via repro.experiments.parallel and
    # repro.experiments.cache (and repro.obs.telemetry for --telemetry).
    import os

    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.cache_dir is not None:
        from repro.experiments.cache import CACHE_ENV

        os.environ[CACHE_ENV] = args.cache_dir
    if args.resume:
        from repro.experiments.cache import RESUME_ENV

        os.environ[RESUME_ENV] = "1"
    if args.cell_timeout is not None:
        from repro.experiments.parallel import CELL_TIMEOUT_ENV

        os.environ[CELL_TIMEOUT_ENV] = str(args.cell_timeout)
    if args.retries is not None:
        from repro.experiments.parallel import RETRIES_ENV

        os.environ[RETRIES_ENV] = str(args.retries)
    if args.telemetry is not None:
        from repro.obs.telemetry import TELEMETRY_ENV

        os.environ[TELEMETRY_ENV] = args.telemetry

    scale = ExperimentScale(n_jobs=args.n_jobs, reps=args.reps)
    if args.experiment == "verify":
        from repro.experiments.verify import render_verification, verify_reproduction

        t0 = time.perf_counter()
        checks = verify_reproduction(
            ExperimentScale(n_jobs=min(args.n_jobs, 1000), reps=1), args.seed
        )
        print(render_verification(checks))
        print(f"-- verify done in {time.perf_counter() - t0:.1f}s")
        _close_env_telemetry(args)
        return 0 if all(c.passed for c in checks) else 1

    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        t0 = time.perf_counter()
        print(f"== {exp_id}: {EXPERIMENTS[exp_id]} ==")
        result = DISPATCH[exp_id](scale, args.seed)
        if isinstance(result, str):
            print(result)
        else:
            print(result.render())
            if args.chart:
                print()
                print(result.render_chart())
            if args.json_dir is not None:
                out_dir = Path(args.json_dir)
                out_dir.mkdir(parents=True, exist_ok=True)
                payload = {
                    "experiment": exp_id,
                    "title": result.title,
                    "x_label": result.x_label,
                    "x_values": result.x_values,
                    "series": result.series,
                    "notes": result.notes,
                    "seed": args.seed,
                    "n_jobs": scale.n_jobs,
                    "reps": scale.reps,
                }
                path = out_dir / f"{exp_id}.json"
                path.write_text(json.dumps(payload, indent=2))
                print(f"(series written to {path})")
        print(f"-- {exp_id} done in {time.perf_counter() - t0:.1f}s\n")
    _close_env_telemetry(args)
    return 0


def _close_env_telemetry(args) -> None:
    """Flush and close the ``--telemetry`` sink, printing where it went."""
    if getattr(args, "telemetry", None) is None:
        return
    from repro.obs.telemetry import default_telemetry

    tel = default_telemetry()
    if tel is not None:
        tel.close()
        print(f"(telemetry written to {tel.path})")


if __name__ == "__main__":
    sys.exit(main())
