"""Typed exception hierarchy for the execution layers (ISSUE 4).

Before this module, executor faults and user mistakes surfaced as the
same builtin exceptions: a hung pool worker, a corrupt cache file and a
``reps=0`` typo all reached the caller as ``RuntimeError``/``ValueError``
with no way to tell "retry the sweep" apart from "fix the call".  The
hierarchy gives every failure mode a distinct type while staying
**deprecation-safe**: each class also inherits the builtin it used to
surface as, so existing ``except ValueError:`` / ``except RuntimeError:``
handlers keep working unchanged.

::

    ReproError                        (Exception)
    |-- SweepConfigError              (+ ValueError)   bad sweep arguments
    |-- UnkeyableFactoryError         (+ ValueError)   factory has no stable key
    |-- CacheCorruptError             (+ RuntimeError) cache file unreadable
    |-- CacheMergeConflictError       (+ RuntimeError) shard caches disagree on a cell
    |-- CellCrashedError              (+ RuntimeError) worker died / cell errored
    |-- CellTimeoutError              (+ TimeoutError) cell deadline exceeded
    |-- SearchInfeasibleError         (+ RuntimeError) no candidate meets the budget
    `-- FaultInjected                                  raised by repro.testing.faults

Catch :class:`ReproError` to handle anything this package raises;
catch :class:`CellTimeoutError` / :class:`CellCrashedError` to handle
executor faults distinctly from user errors.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ReproError",
    "SweepConfigError",
    "UnkeyableFactoryError",
    "CacheCorruptError",
    "CacheMergeConflictError",
    "CellCrashedError",
    "CellTimeoutError",
    "SearchInfeasibleError",
    "FaultInjected",
]


class ReproError(Exception):
    """Base class for every error this package raises on purpose."""


class SweepConfigError(ReproError, ValueError):
    """A sweep was configured with invalid arguments (user error).

    Subclasses :class:`ValueError` so pre-1.2 ``except ValueError``
    handlers around :func:`~repro.experiments.sweep.grid_sweep` keep
    catching it.
    """


class UnkeyableFactoryError(ReproError, ValueError):
    """A scheduler factory has no run-stable content identity.

    Raised (in strict contexts) or carried by the bypass warning when a
    factory captures state whose ``repr`` embeds a memory address: such
    a factory cannot key the content-addressed cell cache without
    risking collisions.  Use a module-level function, class, or
    ``functools.partial`` over plain values.
    """


class CacheCorruptError(ReproError, RuntimeError):
    """A cache entry exists but cannot be parsed.

    The non-strict cache API treats corruption as a miss (the entry is
    regenerated and overwritten); ``strict=True`` loads raise this
    instead so integrity audits can tell truncation from absence.
    """


class CacheMergeConflictError(ReproError, RuntimeError):
    """Two shard caches hold *different* results under the same cell key.

    Raised by :func:`repro.experiments.shard.merge_caches` when a cell
    (or instance) key appears in both the destination and a source cache
    with different content hashes.  Cell keys are pure functions of the
    run coordinates, so a disagreement means one side computed with
    different code, a different environment, or a tampered file -- a
    merge must never silently pick a winner.

    ``key`` is the conflicting cache key, ``kind`` is ``"cell"`` or
    ``"instance"``, and ``provenance`` carries one record per side
    (cache dir, shard manifest facts: host, shard index, creation time)
    so the offending run can be identified from the error alone.
    """

    def __init__(
        self,
        message: str,
        key: str = "",
        kind: str = "cell",
        provenance: tuple = (),
    ):
        super().__init__(message)
        self.key = key
        self.kind = kind
        self.provenance = tuple(provenance)


class CellCrashedError(ReproError, RuntimeError):
    """A sweep cell failed permanently: its worker died (or its body
    raised a retryable fault) more times than the retry budget allows.

    ``attempts`` records how many executions were burned before giving
    up; the triggering exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class CellTimeoutError(ReproError, TimeoutError):
    """A sweep cell exceeded its deadline more times than the retry
    budget allows (``--cell-timeout`` / ``REPRO_CELL_TIMEOUT``).

    ``timeout`` is the per-attempt deadline in seconds; ``attempts`` the
    number of expired executions.
    """

    def __init__(self, message: str, timeout: float = 0.0, attempts: int = 0):
        super().__init__(message)
        self.timeout = timeout
        self.attempts = attempts


class SearchInfeasibleError(ReproError, RuntimeError):
    """A threshold search found *no* candidate meeting its budget.

    Raised by :func:`repro.experiments.search.threshold_search` (and so
    by ``repro.search(budget=...)``) when even the largest candidate
    value of the searched parameter leaves the objective above the
    budget.  Distinct from :class:`SweepConfigError` on purpose: the
    call was *well-formed*, the question simply has no answer inside
    the candidate set -- widen the candidate range to proceed.  The CLI
    maps it to :data:`repro.experiments.exitcodes.EXIT_SEARCH_INFEASIBLE`.

    ``objective`` / ``budget`` restate the failed constraint;
    ``best_params`` / ``best_value`` carry the closest attempt so the
    caller can see how far off the budget was without re-running.
    """

    def __init__(
        self,
        message: str,
        objective: str = "",
        budget: float = float("nan"),
        best_params: Optional[dict] = None,
        best_value: Optional[float] = None,
    ):
        super().__init__(message)
        self.objective = objective
        self.budget = budget
        self.best_params = dict(best_params or {})
        self.best_value = best_value


class FaultInjected(ReproError):
    """Raised by :func:`repro.testing.faults.maybe_inject` (action
    ``raise``).

    Deliberately retryable: the supervised executor treats it like a
    transient worker fault, which is how the chaos suite proves the
    retry path yields bit-identical results.  Picklable, so it survives
    the trip back from a pool worker.
    """

    def __init__(self, stage: str = "?", detail: str = ""):
        super().__init__(f"injected fault at stage {stage!r}"
                         + (f": {detail}" if detail else ""))
        self.stage = stage
        self.detail = detail

    def __reduce__(self):  # keep picklability across process boundaries
        return (FaultInjected, (self.stage, self.detail))
