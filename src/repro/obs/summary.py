"""Summaries and audits over telemetry event logs.

:func:`summarize_events` renders a JSONL event log (see
:mod:`repro.obs.telemetry`) into the same aligned-table style as
``tools/bench_report.py``: event counts, cache hit/miss accounting, cell
wall-time statistics, worker health, and engine counters (steal success
ratio, admission latency) aggregated from the per-cell
``SimulationStats`` snapshots.  It is what both CLI surfaces call
(``python -m repro.experiments telemetry <log>`` and
``tools/bench_report.py --telemetry <log>``).

:func:`audit_events` is the ``audit_trace``-style consistency pass: it
cross-checks the event stream against itself and against the embedded
engine statistics (failed steals never exceed attempts, task accounting
adds up, cache hits equal cached-cell events, ...) and returns a list of
violation strings -- empty means the log is internally consistent.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

Event = Dict[str, Any]


def _fmt(value: Optional[float], width: int = 12, prec: int = 3) -> str:
    """Right-aligned number, or ``-`` for absent values."""
    if value is None:
        return f"{'-':>{width}}"
    return f"{value:>{width}.{prec}f}"


def _stats_of(events: Sequence[Event]) -> List[Dict[str, Any]]:
    """The embedded ``SimulationStats`` dicts of every run-bearing event."""
    out = []
    for e in events:
        stats = e.get("stats")
        if isinstance(stats, dict):
            out.append(stats)
    return out


def _wall_times(events: Sequence[Event]) -> List[float]:
    return [
        float(e["wall_s"])
        for e in events
        if e.get("event") == "cell.run" and isinstance(e.get("wall_s"), (int, float))
    ]


def _sum_opt(stats: Sequence[Dict[str, Any]], field: str) -> Optional[int]:
    """Sum a stats field across runs, ignoring engines that lack it."""
    values = [s[field] for s in stats if s.get(field) is not None]
    if not values:
        return None
    return int(sum(values))


def summarize_events(events: Sequence[Event]) -> str:
    """Render an event log as aligned text tables (see module docstring)."""
    lines: List[str] = []
    opens = [e for e in events if e.get("event") == "telemetry.open"]
    label = opens[0].get("label") if opens else None
    schema = opens[0].get("schema") if opens else None
    span = max((float(e.get("t", 0.0)) for e in events), default=0.0)

    lines.append("telemetry summary")
    lines.append("=" * 60)
    lines.append(f"{'schema':<24}{schema or '-'}")
    if label:
        lines.append(f"{'label':<24}{label}")
    lines.append(f"{'events':<24}{len(events)}")
    lines.append(f"{'span_s':<24}{span:.3f}")

    # -- event counts -----------------------------------------------------
    counts: Dict[str, int] = {}
    for e in events:
        kind = str(e.get("event", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    lines.append("")
    lines.append(f"{'event':<32}{'count':>10}")
    lines.append("-" * 42)
    for kind in sorted(counts):
        lines.append(f"{kind:<32}{counts[kind]:>10}")

    # -- cache accounting -------------------------------------------------
    cache_rows = [
        ("instance", "cache.instance_hit", "cache.instance_miss"),
        ("cell", "cache.cell_hit", "cache.cell_miss"),
    ]
    if any(counts.get(h) or counts.get(m) for _, h, m in cache_rows):
        lines.append("")
        lines.append(
            f"{'cache':<12}{'hits':>8}{'misses':>8}{'hit_ratio':>12}"
        )
        lines.append("-" * 40)
        for name, hit_kind, miss_kind in cache_rows:
            hits = counts.get(hit_kind, 0)
            misses = counts.get(miss_kind, 0)
            total = hits + misses
            ratio = hits / total if total else None
            lines.append(
                f"{name:<12}{hits:>8}{misses:>8}{_fmt(ratio)}"
            )
        if counts.get("cache.bypass"):
            lines.append(f"{'bypassed sweeps':<28}{counts['cache.bypass']:>8}")

    # -- fault tolerance --------------------------------------------------
    fault_rows = [
        ("timeouts", "fault.timeout"),
        ("crashes", "fault.crash"),
        ("cell errors", "fault.cell_error"),
        ("retries", "fault.retry"),
        ("giveups", "fault.giveup"),
        ("pool respawns", "pool.respawn"),
        ("shm reclaims", "shm.reclaim"),
        ("failed checkpoints", "cache.store_failed"),
        ("merge conflicts", "merge.conflict"),
    ]
    if any(counts.get(kind) for _, kind in fault_rows):
        lines.append("")
        lines.append(f"{'faults & recovery':<28}{'count':>10}")
        lines.append("-" * 40)
        for name, kind in fault_rows:
            if counts.get(kind):
                lines.append(f"{name:<28}{counts[kind]:>10}")
        recovered = counts.get("fault.giveup", 0) == 0
        lines.append(
            f"{'recovered':<28}{'yes' if recovered else 'NO':>10}"
        )

    # -- adaptive experimentation (ISSUE 9) -------------------------------
    searches = [e for e in events if e.get("event") == "search.start"]
    ablations = [e for e in events if e.get("event") == "ablate.start"]
    if searches or ablations:
        lines.append("")
        lines.append(f"{'adaptive experimentation':<28}{'count':>10}")
        lines.append("-" * 40)
        if searches:
            lines.append(f"{'searches':<28}{len(searches):>10}")
            stage_counts: Dict[str, int] = {}
            for e in events:
                if e.get("event") == "search.round":
                    stage = str(e.get("stage", "?"))
                    stage_counts[stage] = stage_counts.get(stage, 0) + 1
            for stage in sorted(stage_counts):
                lines.append(
                    f"{'rounds (' + stage + ')':<28}"
                    f"{stage_counts[stage]:>10}"
                )
            lines.append(
                f"{'prunes':<28}{counts.get('search.prune', 0):>10}"
            )
            for e in events:
                if e.get("event") == "search.done":
                    value = e.get("best_value")
                    lines.append(
                        f"{'incumbent (' + str(e.get('mode', '?')) + ')':<28}"
                        f"{_fmt(float(value), 10) if isinstance(value, (int, float)) else '-':>10}"
                    )
        if ablations:
            lines.append(f"{'ablations':<28}{len(ablations):>10}")
            lines.append(
                f"{'deltas':<28}{counts.get('ablate.delta', 0):>10}"
            )
            for e in events:
                if e.get("event") == "ablate.done" and e.get("top"):
                    impact = e.get("top_impact")
                    impact_s = (
                        f"{impact:+.3f}"
                        if isinstance(impact, (int, float))
                        else "-"
                    )
                    lines.append(
                        f"{'top delta':<28}{str(e['top']):>10}  "
                        f"(impact {impact_s})"
                    )

    # -- cell wall times --------------------------------------------------
    walls = _wall_times(events)
    if walls:
        pids = {
            e.get("pid")
            for e in events
            if e.get("event") == "cell.run" and e.get("pid") is not None
        }
        lines.append("")
        lines.append("cells")
        lines.append("-" * 40)
        lines.append(f"{'run':<24}{len(walls):>10}")
        lines.append(f"{'cached':<24}{counts.get('cell.cached', 0):>10}")
        lines.append(f"{'workers (pids)':<24}{len(pids):>10}")
        lines.append(f"{'wall_total_s':<24}{_fmt(sum(walls), 10)}")
        lines.append(f"{'wall_mean_s':<24}{_fmt(sum(walls) / len(walls), 10, 4)}")
        lines.append(f"{'wall_min_s':<24}{_fmt(min(walls), 10, 4)}")
        lines.append(f"{'wall_max_s':<24}{_fmt(max(walls), 10, 4)}")

    # -- engine counters --------------------------------------------------
    stats = _stats_of(events)
    if stats:
        attempts = _sum_opt(stats, "steal_attempts")
        failed = _sum_opt(stats, "failed_steals")
        admissions = _sum_opt(stats, "admissions")
        adm_wait = _sum_opt(stats, "admission_wait_ticks")
        ff_saved = _sum_opt(stats, "ff_skipped_ticks")
        busy = _sum_opt(stats, "busy_steps")
        idle = _sum_opt(stats, "idle_steps")
        ratio = None
        if attempts:
            ratio = (attempts - (failed or 0)) / attempts
        mean_wait = None
        if admissions and adm_wait is not None:
            mean_wait = adm_wait / admissions
        lines.append("")
        lines.append(f"engine (aggregated over {len(stats)} runs)")
        lines.append("-" * 40)
        lines.append(f"{'steal_attempts':<24}{attempts if attempts is not None else '-':>10}")
        lines.append(f"{'failed_steals':<24}{failed if failed is not None else '-':>10}")
        lines.append(f"{'steal_success_ratio':<24}{_fmt(ratio, 10)}")
        lines.append(f"{'admissions':<24}{admissions if admissions is not None else '-':>10}")
        lines.append(f"{'mean_admission_wait':<24}{_fmt(mean_wait, 10)}")
        lines.append(f"{'ff_skipped_ticks':<24}{ff_saved if ff_saved is not None else '-':>10}")
        lines.append(f"{'busy_steps':<24}{busy if busy is not None else '-':>10}")
        lines.append(f"{'idle_steps':<24}{idle if idle is not None else '-':>10}")

    return "\n".join(lines)


def audit_events(events: Sequence[Event]) -> List[str]:
    """Cross-check an event log for internal consistency.

    Returns human-readable violation strings; an empty list means every
    check passed.  Checks mirror the invariants
    ``tests/sim/test_audit.py`` pins for single runs, lifted to the
    event-log level:

    * per-run engine stats are self-consistent (``failed_steals <=
      steal_attempts``, non-negative counters, the derived steal success
      ratio matches its ingredients);
    * task accounting adds up: ``sweep.start``'s task count equals the
      number of ``cell.run`` + ``cell.cached`` events that follow;
    * cache accounting covers cell accounting: no cell is served from
      cache without a recorded cell-cache hit;
    * fault accounting: every ``fault.retry`` / ``fault.giveup`` is
      preceded by a charged fault (``fault.timeout`` / ``fault.crash`` /
      ``fault.cell_error``), and any ``fault.giveup`` is itself a
      violation -- it means a cell exhausted its retry budget, so the
      run did not recover (``tools/bench_gate.py --telemetry`` fails on
      it);
    * merge accounting: any ``merge.conflict`` is a violation -- shard
      caches disagreed on a content key, so the merge aborted;
    * adaptive-search accounting (ISSUE 9): every ``search.prune``
      keeps at least one candidate and never exceeds the number of
      ``search.round`` events, every ``search.start`` is matched by a
      ``search.done`` (a missing one means the search died mid-flight),
      and ``ablate.delta`` events agree with the counts their
      ``ablate.start`` announced;
    * lifecycle sanity: at most one ``telemetry.close`` per
      ``telemetry.open``, and event timestamps are monotone.
    """
    problems: List[str] = []

    # Per-run stats invariants.
    for i, stats in enumerate(_stats_of(events)):
        att = stats.get("steal_attempts")
        fail = stats.get("failed_steals")
        if (att is None) != (fail is None):
            problems.append(
                f"run {i}: steal_attempts/failed_steals presence mismatch "
                f"({att!r} vs {fail!r})"
            )
        if att is not None and fail is not None and fail > att:
            problems.append(
                f"run {i}: failed_steals {fail} > steal_attempts {att}"
            )
        for field in (
            "busy_steps", "idle_steps", "elapsed_ticks", "n_events",
            "steal_attempts", "failed_steals", "admissions",
            "admission_wait_ticks", "ff_skipped_ticks", "max_queue_depth",
        ):
            value = stats.get(field)
            if value is not None and value < 0:
                problems.append(f"run {i}: {field} is negative ({value})")
        elapsed = stats.get("elapsed_ticks")
        ff = stats.get("ff_skipped_ticks")
        if elapsed is not None and ff is not None and ff > elapsed:
            problems.append(
                f"run {i}: ff_skipped_ticks {ff} > elapsed_ticks {elapsed}"
            )

    # Task accounting per sweep.
    n_tasks = sum(
        int(e.get("n_tasks", 0))
        for e in events
        if e.get("event") == "sweep.start"
    )
    n_cell_events = sum(
        1 for e in events if e.get("event") in ("cell.run", "cell.cached")
    )
    if n_tasks and n_tasks != n_cell_events:
        problems.append(
            f"sweep.start announced {n_tasks} tasks but "
            f"{n_cell_events} cell.run/cell.cached events were emitted"
        )

    # Cache vs cell accounting.
    counts: Dict[str, int] = {}
    for e in events:
        kind = str(e.get("event", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    cell_hits = counts.get("cache.cell_hit", 0)
    cached_cells = counts.get("cell.cached", 0)
    if cached_cells > cell_hits:
        # The reverse is legal: a hit can be rejected (e.g. it lacks a
        # requested metric), but no cell may be served from cache
        # without a recorded cache hit.
        problems.append(
            f"{cached_cells} cell.cached events but only {cell_hits} "
            f"cache.cell_hit events"
        )

    # Fault accounting: every retry/giveup follows a charged fault, and
    # a giveup means the run aborted without recovering -- surfaced so
    # CI gates (tools/bench_gate.py --telemetry) can fail on it.
    n_charged = (
        counts.get("fault.timeout", 0)
        + counts.get("fault.crash", 0)
        + counts.get("fault.cell_error", 0)
    )
    n_follow = counts.get("fault.retry", 0) + counts.get("fault.giveup", 0)
    if n_follow > n_charged:
        problems.append(
            f"{n_follow} fault.retry/fault.giveup events but only "
            f"{n_charged} charged fault events "
            f"(fault.timeout/crash/cell_error)"
        )
    if counts.get("fault.giveup"):
        problems.append(
            f"{counts['fault.giveup']} fault.giveup event(s): a cell "
            f"exhausted its retry budget -- the sweep did not recover"
        )

    # Merge accounting: a merge.conflict means two shard caches held
    # different results under the same content key -- never recoverable
    # by retrying, always a violation (one side ran different code, a
    # different environment, or was tampered with).
    if counts.get("merge.conflict"):
        problems.append(
            f"{counts['merge.conflict']} merge.conflict event(s): shard "
            f"caches disagree on a cell -- the merge aborted"
        )

    # Adaptive-search accounting (ISSUE 9).  Prunes are emitted at most
    # once per evaluated round (bisection's feasibility gate prunes
    # nothing), and a pruning decision that keeps zero candidates would
    # leave the search with no incumbent to return.
    n_rounds = counts.get("search.round", 0)
    n_prunes = counts.get("search.prune", 0)
    if n_prunes > n_rounds:
        problems.append(
            f"{n_prunes} search.prune events but only {n_rounds} "
            f"search.round events"
        )
    for i, e in enumerate(events):
        if e.get("event") != "search.prune":
            continue
        kept, dropped = e.get("kept"), e.get("dropped")
        if isinstance(kept, int) and kept < 1:
            problems.append(
                f"event {i}: search.prune kept {kept} candidates "
                f"(a search must keep at least one)"
            )
        if isinstance(dropped, int) and dropped < 0:
            problems.append(
                f"event {i}: search.prune dropped is negative ({dropped})"
            )
    if counts.get("search.start", 0) != counts.get("search.done", 0):
        problems.append(
            f"{counts.get('search.start', 0)} search.start but "
            f"{counts.get('search.done', 0)} search.done events: a "
            f"search did not run to completion"
        )
    if counts.get("ablate.start", 0) != counts.get("ablate.done", 0):
        problems.append(
            f"{counts.get('ablate.start', 0)} ablate.start but "
            f"{counts.get('ablate.done', 0)} ablate.done events: an "
            f"ablation did not run to completion"
        )
    announced_deltas = sum(
        int(e.get("n_deltas", 0))
        for e in events
        if e.get("event") == "ablate.start"
    )
    if announced_deltas and announced_deltas != counts.get("ablate.delta", 0):
        problems.append(
            f"ablate.start announced {announced_deltas} deltas but "
            f"{counts.get('ablate.delta', 0)} ablate.delta events were "
            f"emitted"
        )

    # Lifecycle sanity.
    if counts.get("telemetry.close", 0) > counts.get("telemetry.open", 0):
        problems.append(
            f"more telemetry.close ({counts.get('telemetry.close', 0)}) "
            f"than telemetry.open ({counts.get('telemetry.open', 0)}) events"
        )
    last_t = None
    for i, e in enumerate(events):
        t = e.get("t")
        if not isinstance(t, (int, float)):
            continue
        if last_t is not None and t < last_t and e.get("event") == "telemetry.open":
            # A second session appended to the same file; clocks reset.
            last_t = t
            continue
        if last_t is not None and t < last_t:
            problems.append(
                f"event {i} ({e.get('event')}): timestamp {t} before "
                f"previous {last_t}"
            )
        last_t = t

    return problems
