"""Run manifests: the reproducibility record of one sweep invocation.

A manifest is a small JSON document written next to the sweep's cache
directory (``<cache>/manifests/``) -- or next to the telemetry event log
when no cache is in play -- recording everything needed to re-derive the
run from the artifact alone:

* the run *coordinates*: experiment kind, parameter grid / config repr,
  machine size, speed, base seed and the derived per-repetition seeds;
* the *instances*: the content hash of every repetition's flat instance
  (:func:`repro.dag.flat.content_hash`), which keys the instance cache;
* the *environment*: python / numpy / repro versions and host facts, so
  a number that fails to reproduce can be triaged to an environment
  drift instead of a code change;
* the *timings*: total wall time and the cell count, tying the manifest
  to its telemetry event log.

Manifests are content-named (``manifest-<digest>.json`` over the run
coordinates), so re-running the same sweep overwrites its own manifest
instead of accumulating duplicates, and two different runs never
collide.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

PathLike = Union[str, Path]

#: Version stamp; bump on any field-semantics change.
MANIFEST_SCHEMA = "repro-manifest/1"


def _versions() -> Dict[str, str]:
    """Package versions that can change a run's floats."""
    import numpy

    from repro import __version__ as repro_version

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": repro_version,
    }


def _host() -> Dict[str, Any]:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def manifest_key(kind: str, config: Dict[str, Any], seed: Any) -> str:
    """Stable short digest of a run's coordinates, used as the file name."""
    text = "\x1f".join(
        [kind, json.dumps(config, sort_keys=True, default=repr), repr(seed)]
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def build_manifest(
    kind: str,
    config: Dict[str, Any],
    seed: Any,
    rep_seeds: Sequence[int] = (),
    instance_hashes: Sequence[str] = (),
    timings: Optional[Dict[str, float]] = None,
    event_log: Optional[PathLike] = None,
    cache_dir: Optional[PathLike] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a manifest dict (see the module docstring for fields).

    ``config`` holds the run coordinates (grid, m, speed, metric names,
    scheduler-factory token / config repr); it must be JSON-serializable
    up to ``repr`` fallbacks.  ``extra`` is merged in verbatim for
    caller-specific fields (e.g. cache hit counts).
    """
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "key": manifest_key(kind, config, seed),
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": config,
        "seed": seed,
        "rep_seeds": list(rep_seeds),
        "instances": list(instance_hashes),
        "versions": _versions(),
        "host": _host(),
        "timings": dict(timings or {}),
    }
    if event_log is not None:
        manifest["event_log"] = str(event_log)
    if cache_dir is not None:
        manifest["cache_dir"] = str(cache_dir)
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(manifest: Dict[str, Any], directory: PathLike) -> Path:
    """Write ``manifest`` into ``directory`` as ``manifest-<key>.json``.

    The write is atomic (temp file + rename), matching the cache's
    torn-file guarantees; the final path is returned.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"manifest-{manifest['key']}.json"
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(manifest, indent=2, default=repr) + "\n")
    os.replace(tmp, path)
    return path


def load_manifest(path: PathLike) -> Dict[str, Any]:
    """Read one manifest; raises ``ValueError`` on a foreign schema."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"{path}: schema {data.get('schema')!r} is not {MANIFEST_SCHEMA!r}"
        )
    return data


def list_manifests(directory: PathLike) -> List[Path]:
    """All manifest files under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("manifest-*.json"))
