"""The :class:`Telemetry` sink: structured run events as JSONL.

One ``Telemetry`` object is threaded (explicitly, as an optional
``telemetry=`` argument) through every execution layer -- the
:func:`repro.run` facade, :func:`~repro.experiments.sweep.grid_sweep`,
:func:`~repro.experiments.runner.run_figure2_cells`,
:func:`~repro.experiments.parallel.parallel_map` and
:class:`~repro.experiments.cache.SweepCache` -- each of which *emits*
events into it.  ``telemetry=None`` (the default everywhere) keeps every
emission site to a single ``is not None`` test, so disabled telemetry is
free; scheduling decisions never depend on it either way, which the
schedule-identity tests pin.

Event model
-----------
An event is a flat JSON object with two reserved keys:

``event``
    The kind, a dotted lowercase string (``"cell.run"``,
    ``"cache.cell_hit"``, ``"sweep.start"``, ...).  The full vocabulary
    is documented in docs/OBSERVABILITY.md.
``t``
    Seconds since the sink was created (monotonic clock), so event logs
    order and duration-attribute without trusting wall-clock time.

Everything else is free-form but must be JSON-serializable.  Events are
kept in memory (``telemetry.events``) and, when a ``path`` was given,
appended to that file as one JSON document per line -- the JSONL format
``repro.experiments telemetry <log>`` and ``tools/bench_report.py
--telemetry <log>`` summarize.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

PathLike = Union[str, Path]

#: Version stamp carried by every event; bump on any schema change so
#: downstream summarizers can refuse logs they would misread.
EVENT_SCHEMA = "repro-obs/1"

#: Environment variable naming an event-log path (the CLI's
#: ``--telemetry`` flag); see :func:`default_telemetry`.
TELEMETRY_ENV = "REPRO_TELEMETRY"


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of a field value to something JSON-safe.

    Telemetry must never crash a run: unknown objects degrade to their
    ``repr`` instead of raising from ``json.dumps``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


class Telemetry:
    """An opt-in event sink for one run, sweep, or experiment session.

    Parameters
    ----------
    path:
        Optional JSONL file to append events to.  Parent directories are
        created; the file is opened lazily on the first event, so a
        Telemetry that never fires never touches the filesystem.
    label:
        Free-form tag recorded on the ``telemetry.open`` event (e.g. the
        experiment id), to tell interleaved sessions apart in one log.

    Notes
    -----
    The sink also maintains :attr:`counters` -- ``{event kind: count}``
    -- so quick checks (cache hit ratio, cells run) never re-scan the
    event list.  Use as a context manager to guarantee the file handle
    is flushed and closed::

        with Telemetry("events.jsonl") as tel:
            repro.run(scheduler, jobset, m=8, telemetry=tel)
    """

    def __init__(
        self, path: Optional[PathLike] = None, label: Optional[str] = None
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.label = label
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, int] = {}
        self._t0 = time.perf_counter()
        self._fh = None
        self.emit("telemetry.open", schema=EVENT_SCHEMA, label=label)

    # -- emission ---------------------------------------------------------

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the event dict (already appended)."""
        record: Dict[str, Any] = {
            "event": event,
            "t": round(time.perf_counter() - self._t0, 6),
        }
        for key, value in fields.items():
            record[key] = _jsonable(value)
        self.events.append(record)
        self.counters[event] = self.counters.get(event, 0) + 1
        if self.path is not None:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a")
            self._fh.write(json.dumps(record) + "\n")
        return record

    def count(self, event: str) -> int:
        """How many events of ``event`` kind have been emitted."""
        return self.counters.get(event, 0)

    def of_kind(self, event: str) -> List[Dict[str, Any]]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e["event"] == event]

    # -- lifecycle --------------------------------------------------------

    def flush(self) -> None:
        """Flush the JSONL file handle, if one is open."""
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        """Emit the closing event and release the file handle (idempotent)."""
        if self.count("telemetry.close") == 0:
            self.emit("telemetry.close", n_events=len(self.events))
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path is not None else "memory"
        return f"Telemetry({where!r}, {len(self.events)} events)"


#: The process-wide sink behind :func:`default_telemetry`, keyed by the
#: path it was opened for so an env change mid-process re-resolves.
_ENV_TELEMETRY: Optional[Telemetry] = None


def default_telemetry() -> Optional[Telemetry]:
    """The process-wide sink requested via ``REPRO_TELEMETRY``, if any.

    Sweep entry points fall back to this when no explicit ``telemetry=``
    argument is given, which is how the CLI's ``--telemetry PATH`` flag
    reaches every sweep an experiment performs without threading a
    parameter through each figure function.  The sink is a process
    singleton per path, so consecutive sweeps of one CLI invocation
    append to a single log as one session.  Returns None when the
    environment variable is unset or empty.
    """
    global _ENV_TELEMETRY
    env = os.environ.get(TELEMETRY_ENV, "").strip()
    if not env:
        return None
    path = Path(env)
    if _ENV_TELEMETRY is None or _ENV_TELEMETRY.path != path:
        _ENV_TELEMETRY = Telemetry(path, label="env")
    return _ENV_TELEMETRY


def read_events(path: PathLike) -> List[Dict[str, Any]]:
    """Load a JSONL event log written by :class:`Telemetry`.

    Blank lines are skipped; a torn final line (a writer killed
    mid-append) is dropped rather than raising, so a log is always
    summarizable up to its last complete event.
    """
    events: List[Dict[str, Any]] = []
    lines = Path(path).read_text().splitlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail from an interrupted writer
            raise
    return events


def iter_events(path: PathLike) -> Iterator[Dict[str, Any]]:
    """Streaming variant of :func:`read_events` for very large logs."""
    for event in read_events(path):
        yield event
