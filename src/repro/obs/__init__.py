"""`repro.obs`: opt-in observability for runs, sweeps, and caches.

Three layers (see docs/OBSERVABILITY.md for the full schema):

* :class:`Telemetry` -- the JSONL event sink threaded through
  :func:`repro.run`, :func:`~repro.experiments.sweep.grid_sweep`,
  :func:`~repro.experiments.runner.run_figure2_cells`, the dispatch
  layer, and the cache via optional ``telemetry=`` arguments;
* run manifests (:func:`build_manifest` / :func:`write_manifest`) --
  the reproducibility record one sweep leaves next to its cache dir;
* :func:`summarize_events` / :func:`audit_events` -- turning a log back
  into bench-report-style tables and consistency verdicts.

Everything here is opt-in: with ``telemetry=None`` (the default) no
event fires, no file is written, and schedules are bit-identical to an
instrumented run.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    list_manifests,
    load_manifest,
    manifest_key,
    write_manifest,
)
from repro.obs.summary import audit_events, summarize_events
from repro.obs.telemetry import (
    EVENT_SCHEMA,
    TELEMETRY_ENV,
    Telemetry,
    default_telemetry,
    iter_events,
    read_events,
)

__all__ = [
    "EVENT_SCHEMA",
    "MANIFEST_SCHEMA",
    "TELEMETRY_ENV",
    "Telemetry",
    "audit_events",
    "build_manifest",
    "default_telemetry",
    "iter_events",
    "list_manifests",
    "load_manifest",
    "manifest_key",
    "read_events",
    "summarize_events",
    "write_manifest",
]
