# Convenience targets for the reproduction repository.
#
# `make verify` is the fastest way to confirm a checkout still
# reproduces the paper; `make all` runs everything the CI would.

PYTHON ?= python

.PHONY: install test bench bench-report bench-gate clean-cache verify examples api-docs experiments all

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Refresh BENCH_engine.json; the existing file becomes the baseline so
# the committed report always carries before/after speedups.
bench-report:
	$(PYTHON) tools/bench_report.py

# Compare a fresh quick run against the committed report (what CI does).
# Engine benches carry the 2% observability budget (docs/OBSERVABILITY.md).
bench-gate:
	$(PYTHON) tools/bench_report.py --quick --baseline none --output /tmp/bench_gate.json
	$(PYTHON) tools/bench_gate.py /tmp/bench_gate.json --engine-budget 0.02

# Wipe the content-addressed instance/cell cache used by --resume,
# including manifests/ and checkpoint sidecars, so a cleared cache
# cannot poison a later merge-cache run.  Routed through the CLI so
# the semantics (REPRO_CACHE resolution, symlinked roots) are exactly
# SweepCache.clear()'s; PYTHONPATH=src keeps it working on an
# uninstalled checkout, like the old rm -rf did.
clean-cache:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro.experiments clean-cache

verify:
	$(PYTHON) -m repro.experiments verify

examples:
	@for f in examples/*.py; do \
		echo "== $$f =="; \
		$(PYTHON) $$f || exit 1; \
	done

api-docs:
	$(PYTHON) tools/gen_api_docs.py

experiments:
	$(PYTHON) -m repro.experiments all

all: test bench verify
