"""Unit tests for the utilization accounting."""

import pytest

from repro.core.fifo import FifoScheduler
from repro.core.work_stealing import WorkStealingScheduler
from repro.metrics.utilization import (
    busy_fraction,
    offered_load,
    steal_fraction,
    utilization_report,
)


class TestTickAccounting:
    def test_busy_fraction_bounds(self, medium_random_jobset):
        r = WorkStealingScheduler(k=2).run(medium_random_jobset, m=8, seed=1)
        frac = busy_fraction(r)
        assert 0.0 < frac <= 1.0

    def test_busy_fraction_equals_work_over_machine_ticks(
        self, medium_random_jobset
    ):
        r = WorkStealingScheduler(k=2).run(medium_random_jobset, m=8, seed=1)
        expect = medium_random_jobset.total_work / (8 * r.stats.elapsed_ticks)
        assert busy_fraction(r) == pytest.approx(expect)

    def test_steal_fraction_nonnegative(self, medium_random_jobset):
        r = WorkStealingScheduler(k=2).run(medium_random_jobset, m=8, seed=1)
        assert steal_fraction(r) >= 0.0

    def test_centralized_results_rejected(self, medium_random_jobset):
        r = FifoScheduler().run(medium_random_jobset, m=8)
        with pytest.raises(ValueError, match="tick"):
            busy_fraction(r)
        with pytest.raises(ValueError, match="tick"):
            steal_fraction(r)


class TestReport:
    def test_report_keys(self, medium_random_jobset):
        r = WorkStealingScheduler(k=2).run(medium_random_jobset, m=8, seed=1)
        rep = utilization_report(r, medium_random_jobset)
        assert set(rep) == {
            "offered_load",
            "busy_steps",
            "total_work",
            "busy_fraction",
            "steal_attempts",
            "failed_steal_rate",
            "idle_steps",
        }
        assert rep["busy_steps"] == rep["total_work"]

    def test_report_for_centralized_run_zeroes_tick_fields(
        self, medium_random_jobset
    ):
        r = FifoScheduler().run(medium_random_jobset, m=8)
        rep = utilization_report(r, medium_random_jobset)
        assert rep["busy_fraction"] == 0.0
        assert rep["busy_steps"] == rep["total_work"]

    def test_offered_load(self, medium_random_jobset):
        assert offered_load(medium_random_jobset, 8) == pytest.approx(
            medium_random_jobset.utilization(8)
        )
