"""Unit tests for the scheduling-overhead accounting."""

import pytest

from repro.core.fifo import FifoScheduler
from repro.core.work_stealing import WorkStealingScheduler
from repro.dag.builders import fork_join, single_node
from repro.dag.job import jobs_from_dags
from repro.metrics.overheads import (
    dispatch_count,
    migration_count,
    overhead_report,
    preemption_count,
    reallocation_event_count,
)
from repro.sim.trace import TraceRecorder


class TestHandBuiltTraces:
    def test_uninterrupted_node_has_no_overheads(self):
        tr = TraceRecorder()
        tr.record(0, 0, 0, 0.0, 5.0)
        assert dispatch_count(tr) == 1
        assert preemption_count(tr) == 0
        assert migration_count(tr) == 0

    def test_preemption_counted_per_extra_segment(self):
        tr = TraceRecorder()
        tr.record(0, 0, 0, 0.0, 2.0)
        tr.record(0, 0, 0, 4.0, 5.0)
        tr.record(0, 0, 0, 7.0, 8.0)
        assert preemption_count(tr) == 2
        assert migration_count(tr) == 0  # same worker throughout

    def test_migration_requires_worker_change(self):
        tr = TraceRecorder()
        tr.record(0, 0, 0, 0.0, 2.0)
        tr.record(1, 0, 0, 4.0, 5.0)  # resumed elsewhere
        assert migration_count(tr) == 1

    def test_reallocation_events_deduplicate_instants(self):
        tr = TraceRecorder()
        tr.record(0, 0, 0, 0.0, 2.0)
        tr.record(1, 1, 0, 0.0, 2.0)  # same boundary instants
        assert reallocation_event_count(tr) == 2

    def test_report_keys(self):
        tr = TraceRecorder()
        tr.record(0, 0, 0, 0.0, 1.0)
        assert set(overhead_report(tr)) == {
            "dispatches",
            "preemptions",
            "migrations",
            "reallocation_events",
        }


class TestEngineCharacteristics:
    def test_work_stealing_never_preempts(self, medium_random_jobset):
        """Structural: stolen nodes are ready, never in-progress."""
        tr = TraceRecorder()
        WorkStealingScheduler(k=4, steals_per_tick=16).run(
            medium_random_jobset, m=8, seed=3, trace=tr
        )
        assert preemption_count(tr) == 0
        assert migration_count(tr) == 0

    def test_fifo_preempts_under_contention(self):
        """A later-arriving job's fork forces FIFO to suspend the
        earlier job's node mid-flight."""
        js = jobs_from_dags(
            [single_node(10), fork_join(1, [1, 1], 1)], [0.5, 0.0]
        )
        tr = TraceRecorder()
        FifoScheduler().run(js, m=2, trace=tr)
        assert preemption_count(tr) >= 1

    def test_dispatches_at_least_node_count(self, medium_random_jobset):
        tr = TraceRecorder()
        FifoScheduler().run(medium_random_jobset, m=8, trace=tr)
        n_nodes = sum(j.dag.n_nodes for j in medium_random_jobset)
        assert dispatch_count(tr) >= n_nodes
