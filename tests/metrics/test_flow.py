"""Unit tests for the flow-time metrics."""

import numpy as np
import pytest

from repro.core.fifo import FifoScheduler
from repro.core.opt import opt_lower_bound
from repro.dag.builders import chain, single_node
from repro.dag.job import jobs_from_dags
from repro.metrics.flow import (
    competitive_ratio,
    flow_statistics,
    max_flow,
    max_weighted_flow,
    mean_flow,
    span_stretches,
    work_stretches,
)
from repro.sim.result import ScheduleResult


def make_result(arrivals, completions, m=4, weights=None):
    return ScheduleResult(
        "test", m, 1.0,
        np.asarray(arrivals, float),
        np.asarray(completions, float),
        None if weights is None else np.asarray(weights, float),
    )


class TestBasicMetrics:
    def test_max_mean(self):
        r = make_result([0.0, 1.0], [4.0, 3.0])
        assert max_flow(r) == 4.0
        assert mean_flow(r) == 3.0

    def test_weighted(self):
        r = make_result([0.0, 0.0], [1.0, 2.0], weights=[10.0, 1.0])
        assert max_weighted_flow(r) == 10.0

    def test_statistics_keys_and_values(self):
        r = make_result([0.0] * 4, [1.0, 2.0, 3.0, 4.0])
        stats = flow_statistics(r)
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["mean"] == 2.5
        assert stats["median"] == 2.5
        assert set(stats) == {"min", "mean", "median", "p90", "p99", "max", "std"}


class TestStretches:
    def test_work_stretch(self):
        js = jobs_from_dags([single_node(8)], [0.0])
        r = make_result([0.0], [4.0], m=4)
        # W/m = 2; flow 4 -> stretch 2.
        assert work_stretches(r, js).tolist() == [2.0]

    def test_span_stretch(self):
        js = jobs_from_dags([chain([2, 2])], [0.0])
        r = make_result([0.0], [8.0], m=4)
        assert span_stretches(r, js).tolist() == [2.0]

    def test_span_stretch_at_least_one_for_feasible(self, medium_random_jobset):
        r = FifoScheduler().run(medium_random_jobset, m=8)
        assert np.all(span_stretches(r, medium_random_jobset) >= 1.0 - 1e-9)


class TestCompetitiveRatio:
    def test_basic_ratio(self, medium_random_jobset):
        r = FifoScheduler().run(medium_random_jobset, m=8)
        lb = opt_lower_bound(medium_random_jobset, m=8)
        ratio = competitive_ratio(r, lb)
        assert ratio >= 1.0 - 1e-9

    def test_weighted_flag(self):
        r = make_result([0.0], [4.0], weights=[2.0])
        lb = make_result([0.0], [2.0], weights=[2.0])
        assert competitive_ratio(r, lb) == pytest.approx(2.0)
        assert competitive_ratio(r, lb, weighted=True) == pytest.approx(2.0)

    def test_mismatched_instances_rejected(self):
        a = make_result([0.0], [1.0])
        b = make_result([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="same instance"):
            competitive_ratio(a, b)

    def test_zero_denominator_rejected(self):
        a = make_result([0.0], [1.0])
        z = make_result([0.0], [0.0])
        with pytest.raises(ValueError, match="zero"):
            competitive_ratio(a, z)
