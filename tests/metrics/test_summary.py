"""Unit tests for the comparison table."""

import numpy as np
import pytest

from repro.metrics.summary import ComparisonTable
from repro.sim.result import ScheduleResult


def make_result(name, max_flow, n=3):
    arrivals = np.zeros(n)
    completions = np.full(n, max_flow / 2.0)
    completions[0] = max_flow
    return ScheduleResult(name, 4, 1.0, arrivals, completions)


class TestAccumulation:
    def test_add_and_lookup(self):
        t = ComparisonTable()
        t.add(make_result("opt-lb", 2.0))
        t.add(make_result("fifo", 3.0))
        assert t.names == ["opt-lb", "fifo"]
        assert t["fifo"].max_flow == 3.0

    def test_duplicate_name_rejected(self):
        t = ComparisonTable()
        t.add(make_result("fifo", 3.0))
        with pytest.raises(ValueError, match="duplicate"):
            t.add(make_result("fifo", 4.0))

    def test_custom_name_overrides(self):
        t = ComparisonTable()
        t.add(make_result("fifo", 3.0), name="fifo-fast")
        assert t.names == ["fifo-fast"]

    def test_mismatched_instances_rejected(self):
        t = ComparisonTable()
        t.add(make_result("a", 2.0, n=3))
        with pytest.raises(ValueError, match="same instance"):
            t.add(make_result("b", 2.0, n=5))

    def test_invalid_time_unit(self):
        with pytest.raises(ValueError):
            ComparisonTable(time_unit=0.0)


class TestRows:
    def test_ratio_against_baseline(self):
        t = ComparisonTable(baseline="opt-lb")
        t.add(make_result("opt-lb", 2.0))
        t.add(make_result("ws", 5.0))
        rows = {r["name"]: r for r in t.rows()}
        assert rows["ws"]["vs_baseline"] == pytest.approx(2.5)
        assert rows["opt-lb"]["vs_baseline"] == pytest.approx(1.0)

    def test_time_unit_scaling(self):
        t = ComparisonTable(baseline=None, time_unit=0.25)
        t.add(make_result("x", 8.0))
        assert t.rows()[0]["max_flow"] == pytest.approx(2.0)

    def test_no_baseline_no_ratio_column(self):
        t = ComparisonTable(baseline=None)
        t.add(make_result("x", 8.0))
        assert "vs_baseline" not in t.rows()[0]


class TestRender:
    def test_render_contains_all_names(self):
        t = ComparisonTable(time_label="ms")
        t.add(make_result("opt-lb", 2.0))
        t.add(make_result("admit-first", 6.0))
        text = t.render()
        assert "opt-lb" in text
        assert "admit-first" in text
        assert "ms" in text

    def test_render_empty(self):
        assert "no results" in ComparisonTable().render()
