"""Unit tests for the lk-norm metrics."""

import math

import numpy as np
import pytest

from repro.metrics.norms import (
    lk_norm,
    lk_norm_flow,
    norm_profile,
    normalized_lk_norm_flow,
)
from repro.sim.result import ScheduleResult


def make_result(flows):
    flows = np.asarray(flows, dtype=float)
    return ScheduleResult("t", 1, 1.0, np.zeros_like(flows), flows)


class TestLkNorm:
    def test_k1_is_sum(self):
        assert lk_norm(np.array([1.0, 2.0, 3.0]), 1.0) == pytest.approx(6.0)

    def test_k2_euclidean(self):
        assert lk_norm(np.array([3.0, 4.0]), 2.0) == pytest.approx(5.0)

    def test_inf_is_max(self):
        assert lk_norm(np.array([1.0, 9.0, 2.0]), math.inf) == 9.0

    def test_large_k_approaches_max_without_overflow(self):
        v = np.array([1000.0, 999.0, 1.0])
        assert lk_norm(v, 500.0) == pytest.approx(1000.0, rel=0.01)

    def test_monotone_decreasing_in_k(self):
        v = np.array([1.0, 2.0, 5.0])
        norms = [lk_norm(v, k) for k in (1, 2, 4, 8, 64)]
        assert all(a >= b - 1e-9 for a, b in zip(norms, norms[1:]))

    def test_all_zero_flows(self):
        assert lk_norm(np.zeros(3), 2.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            lk_norm(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            lk_norm(np.array([]), 2.0)
        with pytest.raises(ValueError):
            lk_norm(np.array([-1.0]), 2.0)


class TestFlowNorms:
    def test_k1_normalized_is_mean(self):
        r = make_result([2.0, 4.0])
        assert normalized_lk_norm_flow(r, 1.0) == pytest.approx(3.0)

    def test_inf_normalized_is_max(self):
        r = make_result([2.0, 4.0])
        assert normalized_lk_norm_flow(r, math.inf) == 4.0

    def test_normalized_monotone_increasing_in_k(self):
        # Generalized means increase with k (power mean inequality).
        r = make_result([1.0, 2.0, 10.0])
        vals = [normalized_lk_norm_flow(r, k) for k in (1, 2, 4, 16, 256)]
        assert all(a <= b + 1e-9 for a, b in zip(vals, vals[1:]))

    def test_raw_norm_accessible(self):
        r = make_result([3.0, 4.0])
        assert lk_norm_flow(r, 2.0) == pytest.approx(5.0)

    def test_profile_keys_and_limits(self):
        r = make_result([1.0, 3.0])
        prof = norm_profile(r, ks=(1.0, math.inf))
        assert prof[1.0] == pytest.approx(2.0)
        assert prof[math.inf] == 3.0
