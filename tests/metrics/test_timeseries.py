"""Unit tests for the time-series metrics."""

import numpy as np
import pytest

from repro.core.fifo import FifoScheduler
from repro.metrics.timeseries import (
    backlog_over_time,
    completion_throughput,
    peak_backlog,
    windowed_max_flow,
)
from repro.sim.result import ScheduleResult


def make_result(arrivals, completions):
    return ScheduleResult(
        "test", 2, 1.0,
        np.asarray(arrivals, float),
        np.asarray(completions, float),
    )


class TestBacklog:
    def test_hand_values(self):
        # Jobs: [0, 4), [1, 3): backlog 1 at t=0.5, 2 at t=2, 1 at t=3.5.
        r = make_result([0.0, 1.0], [4.0, 3.0])
        times, backlog = backlog_over_time(r, times=np.array([0.5, 2.0, 3.5, 5.0]))
        assert backlog.tolist() == [1, 2, 1, 0]

    def test_default_sampling(self):
        r = make_result([0.0], [10.0])
        times, backlog = backlog_over_time(r, n_samples=11)
        assert times[0] == 0.0 and times[-1] == 10.0
        assert backlog.max() == 1

    def test_peak_backlog_exact(self):
        r = make_result([0.0, 1.0, 1.5, 10.0], [5.0, 6.0, 7.0, 12.0])
        assert peak_backlog(r) == 3

    def test_peak_backlog_disjoint_jobs(self):
        r = make_result([0.0, 10.0], [1.0, 11.0])
        assert peak_backlog(r) == 1


class TestWindowedMaxFlow:
    def test_hand_values(self):
        r = make_result([0.0, 0.0, 9.0], [1.0, 2.0, 11.0])
        starts, maxima = windowed_max_flow(r, window=5.0)
        assert starts.tolist() == [0.0, 5.0, 10.0]
        assert maxima.tolist() == [2.0, 0.0, 2.0]

    def test_global_max_preserved(self, medium_random_jobset):
        r = FifoScheduler().run(medium_random_jobset, m=8)
        _, maxima = windowed_max_flow(r, window=r.makespan / 10)
        assert maxima.max() == pytest.approx(r.max_flow)

    def test_invalid_window(self):
        r = make_result([0.0], [1.0])
        with pytest.raises(ValueError):
            windowed_max_flow(r, window=0.0)


class TestThroughput:
    def test_hand_values(self):
        r = make_result([0.0, 0.0, 0.0], [1.0, 1.5, 7.0])
        starts, counts = completion_throughput(r, window=5.0)
        assert counts.tolist() == [2, 1]

    def test_counts_sum_to_n(self, medium_random_jobset):
        r = FifoScheduler().run(medium_random_jobset, m=8)
        _, counts = completion_throughput(r, window=100.0)
        assert counts.sum() == r.n_jobs

    def test_invalid_window(self):
        r = make_result([0.0], [1.0])
        with pytest.raises(ValueError):
            completion_throughput(r, window=-1.0)
