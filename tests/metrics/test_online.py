"""Online accumulators vs exact offline values (ISSUE 7).

Property tests for :mod:`repro.metrics.online`: the streaming engine
frees per-job state at completion, so these accumulators are the *only*
record of the flow distribution -- their documented accuracy contracts
are pinned here.

* ``OnlineMax`` / ``OnlineFlowStats`` max, mean, count, last completion:
  **exact**, compared ``==`` against offline numpy reductions.
* ``P2Quantile``: an estimate; asserted within the documented tolerance
  (10% relative or 0.05 absolute rank error) on unimodal distributions.
* ``WindowedUtilization``: step-hold integration asserted exactly equal
  to a brute-force per-tick replay of the same sample sequence.
* Every accumulator's ``state_dict``/``load_state`` round-trip must
  continue the stream as if never interrupted (the checkpoint
  substrate).
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.metrics.online import (
    OnlineFlowStats,
    OnlineMax,
    P2Quantile,
    WindowedUtilization,
)


# ----------------------------------------------------------------------
# OnlineMax -- exact
# ----------------------------------------------------------------------


class TestOnlineMax:
    def test_exact_against_numpy(self, rng):
        xs = rng.lognormal(1.0, 1.5, size=2000)
        acc = OnlineMax()
        for i, x in enumerate(xs):
            acc.update(float(x), key=i)
        assert acc.value == xs.max()
        assert acc.argmax == int(np.argmax(xs))
        assert acc.count == len(xs)

    def test_first_winner_kept_on_ties(self):
        acc = OnlineMax()
        acc.update(5.0, key=1)
        acc.update(5.0, key=2)  # strict > only
        assert acc.argmax == 1

    def test_state_roundtrip(self, rng):
        xs = rng.normal(size=100)
        a, b = OnlineMax(), OnlineMax()
        for x in xs[:50]:
            a.update(float(x))
        b.load_state(json.loads(json.dumps(a.state_dict())))
        for x in xs[50:]:
            a.update(float(x))
            b.update(float(x))
        assert a.value == b.value and a.count == b.count


# ----------------------------------------------------------------------
# P2Quantile -- documented tolerance
# ----------------------------------------------------------------------


def rank_error(estimate: float, sample: np.ndarray, q: float) -> float:
    """|empirical CDF at the estimate - q| -- scale-free accuracy."""
    return abs(float(np.mean(sample <= estimate)) - q)


class TestP2Quantile:
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    @pytest.mark.parametrize("shape", ["lognormal", "uniform", "exponential"])
    def test_rank_error_within_tolerance(self, q, shape):
        rng = np.random.default_rng(hash((q, shape)) % (1 << 32))
        n = 5000
        if shape == "lognormal":
            xs = rng.lognormal(2.0, 1.0, size=n)
        elif shape == "uniform":
            xs = rng.uniform(0.0, 100.0, size=n)
        else:
            xs = rng.exponential(10.0, size=n)
        sk = P2Quantile(q)
        for x in xs:
            sk.update(float(x))
        assert sk.count == n
        # Documented contract: within 0.05 rank error on unimodal input.
        assert rank_error(sk.value(), xs, q) < 0.05
        # And within 10% relative of the exact value for these shapes.
        exact = float(np.quantile(xs, q))
        assert sk.value() == pytest.approx(exact, rel=0.10, abs=1e-9)

    def test_exact_below_six_observations(self):
        xs = [7.0, 1.0, 5.0, 3.0]
        sk = P2Quantile(0.5)
        for x in xs:
            sk.update(x)
        assert sk.value() == pytest.approx(float(np.quantile(xs, 0.5)))

    def test_nan_before_any_observation(self):
        assert math.isnan(P2Quantile(0.9).value())

    def test_domain_validation(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="quantile"):
                P2Quantile(bad)

    def test_monotone_across_quantiles(self, rng):
        xs = rng.lognormal(1.0, 1.0, size=3000)
        sketches = [P2Quantile(q) for q in (0.5, 0.9, 0.99)]
        for x in xs:
            for sk in sketches:
                sk.update(float(x))
        v50, v90, v99 = (sk.value() for sk in sketches)
        assert v50 <= v90 <= v99

    def test_state_roundtrip_continues_identically(self, rng):
        xs = rng.exponential(5.0, size=400)
        a, b = P2Quantile(0.9), P2Quantile(0.9)
        for x in xs[:200]:
            a.update(float(x))
        b.load_state(json.loads(json.dumps(a.state_dict())))
        for x in xs[200:]:
            a.update(float(x))
            b.update(float(x))
        assert a.value() == b.value()  # bit-identical, not approx

    def test_state_refuses_wrong_quantile(self):
        a = P2Quantile(0.5)
        a.update(1.0)
        with pytest.raises(ValueError, match="tracks"):
            P2Quantile(0.9).load_state(a.state_dict())


# ----------------------------------------------------------------------
# OnlineFlowStats -- exact bundle
# ----------------------------------------------------------------------


class TestOnlineFlowStats:
    def test_exact_fields_against_offline(self, rng):
        n = 1500
        flows = rng.lognormal(1.5, 1.0, size=n)
        completions = np.cumsum(rng.uniform(0.0, 2.0, size=n))
        st = OnlineFlowStats(quantiles=(0.5, 0.99))
        for j in range(n):
            st.observe(float(flows[j]), float(completions[j]), j)
        assert st.max_flow == flows.max()
        assert st.argmax_job == int(np.argmax(flows))
        assert st.argmax_completion == completions[int(np.argmax(flows))]
        assert st.count == n
        assert st.mean_flow == pytest.approx(flows.mean(), rel=1e-12)
        assert st.last_completion == completions.max()
        for q, est in st.quantile_estimates().items():
            assert rank_error(est, flows, q) < 0.05

    def test_mean_nan_when_empty(self):
        assert math.isnan(OnlineFlowStats().mean_flow)

    def test_state_roundtrip_continues_identically(self, rng):
        n = 600
        flows = rng.exponential(3.0, size=n)
        a = OnlineFlowStats(quantiles=(0.5, 0.9))
        b = OnlineFlowStats(quantiles=(0.5, 0.9))
        for j in range(n // 2):
            a.observe(float(flows[j]), float(j), j)
        b.load_state(json.loads(json.dumps(a.state_dict())))
        for j in range(n // 2, n):
            a.observe(float(flows[j]), float(j), j)
            b.observe(float(flows[j]), float(j), j)
        assert a.max_flow == b.max_flow
        assert a.flow_sum == b.flow_sum
        assert a.quantile_estimates() == b.quantile_estimates()

    def test_state_refuses_quantile_mismatch(self):
        a = OnlineFlowStats(quantiles=(0.5,))
        a.observe(1.0, 1.0, 0)
        with pytest.raises(ValueError, match="quantiles"):
            OnlineFlowStats(quantiles=(0.9,)).load_state(a.state_dict())


# ----------------------------------------------------------------------
# WindowedUtilization -- exact vs brute force
# ----------------------------------------------------------------------


def brute_force(samples, m, window):
    """Per-tick replay: busy count holds from each sample to the next."""
    busy_at = {}
    for (t0, b0), (t1, _b1) in zip(samples, samples[1:]):
        for t in range(t0, t1):
            busy_at[t] = b0
    if not busy_at:
        return 0.0, {}
    span = samples[-1][0] - samples[0][0]
    total = sum(busy_at.values()) / (m * span) if span else 0.0
    per_window = {}
    for t, b in busy_at.items():
        per_window[t // window] = per_window.get(t // window, 0) + b
    return total, per_window


class TestWindowedUtilization:
    def test_overall_matches_brute_force(self, rng):
        m, window = 4, 16
        # Irregular sample times with repeats (the engine re-samples the
        # same tick at fast-forward boundaries).
        ticks = np.unique(rng.integers(0, 500, size=60))
        samples = []
        for t in ticks:
            busy = int(rng.integers(0, m + 1))
            samples.append((int(t), busy))
            if rng.random() < 0.3:
                samples.append((int(t), busy))  # duplicate tick
        util = WindowedUtilization(m, window=window, max_windows=10_000)
        for t, b in samples:
            util.maybe_record(t, b)
        expected_total, expected_windows = brute_force(
            [s for s in samples], m, window
        )
        assert util.overall() == pytest.approx(expected_total, abs=1e-12)
        got = {
            start // window: frac
            for start, frac in util.series()
            if start // window in expected_windows
        }
        for k, integral in expected_windows.items():
            if (k + 1) * window <= samples[-1][0]:  # complete windows only
                assert got[k] == pytest.approx(
                    integral / (m * window), abs=1e-12
                )

    def test_window_eviction_keeps_overall_exact(self):
        util = WindowedUtilization(2, window=4, max_windows=2)
        for t in range(0, 40, 2):
            util.maybe_record(t, 1)
        assert len(util.series()) <= 2
        # Eviction only drops the per-window series, never the totals.
        assert util.overall() == pytest.approx(0.5)

    def test_time_must_be_nondecreasing(self):
        util = WindowedUtilization(2, window=4)
        util.maybe_record(10, 1)
        with pytest.raises(ValueError, match="non-decreasing"):
            util.maybe_record(9, 1)

    def test_empty_and_single_sample(self):
        util = WindowedUtilization(4)
        assert util.overall() == 0.0 and util.elapsed_ticks == 0
        util.record_boundary(7, 3)
        assert util.overall() == 0.0  # zero span so far

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedUtilization(0)
        with pytest.raises(ValueError):
            WindowedUtilization(2, window=0)
        with pytest.raises(ValueError):
            WindowedUtilization(2, max_windows=0)

    def test_state_roundtrip_continues_identically(self, rng):
        a = WindowedUtilization(3, window=8, max_windows=16)
        b = WindowedUtilization(3, window=8, max_windows=16)
        ticks = sorted(int(t) for t in rng.integers(0, 300, size=50))
        half = len(ticks) // 2
        for t in ticks[:half]:
            a.maybe_record(t, int(rng.integers(0, 4)))
        b.load_state(json.loads(json.dumps(a.state_dict())))
        follow = [(t, int(rng.integers(0, 4))) for t in ticks[half:]]
        for t, busy in follow:
            a.maybe_record(t, busy)
            b.maybe_record(t, busy)
        assert a.overall() == b.overall()
        assert a.series() == b.series()

    def test_state_refuses_config_mismatch(self):
        a = WindowedUtilization(3, window=8)
        a.maybe_record(0, 1)
        with pytest.raises(ValueError, match="configured"):
            WindowedUtilization(4, window=8).load_state(a.state_dict())
