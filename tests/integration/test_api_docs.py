"""Freshness check: docs/API.md must match the current public surface."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_api_reference_is_fresh():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "gen_api_docs.py"), "--check"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_api_reference_covers_every_package():
    text = (REPO_ROOT / "docs" / "API.md").read_text()
    for pkg in (
        "repro.dag",
        "repro.sim",
        "repro.core",
        "repro.speedup",
        "repro.workloads",
        "repro.metrics",
        "repro.theory",
        "repro.experiments",
        "repro.obs",
    ):
        assert f"## `{pkg}`" in text
