"""Smoke tests: every shipped example must run cleanly.

Examples are the first code a new user executes; these tests run each
one in a subprocess (smallest available scale) and check for a zero exit
status and the expected headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "opt-lb" in out
        assert "fifo" in out

    def test_interactive_server_small(self):
        out = run_example("interactive_server.py", "300")
        assert "QPS" in out
        assert "steal-16-first" in out

    def test_weighted_priorities(self):
        out = run_example("weighted_priorities.py")
        assert "bwf" in out
        assert "max stretch" in out

    def test_adversarial_lower_bound(self):
        out = run_example("adversarial_lower_bound.py")
        assert "ratio" in out
        assert "work stealing" in out.lower()

    def test_custom_dag_programs(self):
        out = run_example("custom_dag_programs.py")
        assert "audit OK" in out
        assert "critical path" in out

    def test_trace_replay(self):
        out = run_example("trace_replay.py")
        assert "peak backlog" in out
        assert "timeline" in out

    def test_model_comparison(self):
        out = run_example("model_comparison.py")
        assert "ratio" in out
        assert "sqrt(p)" in out

    def test_every_example_file_is_covered(self):
        covered = {
            "quickstart.py",
            "interactive_server.py",
            "weighted_priorities.py",
            "adversarial_lower_bound.py",
            "custom_dag_programs.py",
            "trace_replay.py",
            "model_comparison.py",
        }
        on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == covered, (
            "examples changed on disk; update these smoke tests"
        )
