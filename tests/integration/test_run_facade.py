"""The repro.run() facade: dispatch, aliases, shims, telemetry identity.

Pins the ISSUE-3 API contract:

* every dispatch path of ``repro.run`` is bit-identical to calling the
  underlying engine directly;
* the historical keyword spellings (``num_workers``/``m``,
  ``augmentation``/``speed``) normalize, and conflicts fail loudly;
* the deprecated module-level entrypoints still work, stay
  bit-identical, and warn exactly once per process;
* telemetry is observationally inert: schedules with a live sink are
  bit-identical to uninstrumented ones, and a sweep's event log passes
  the audit and agrees with its own SimulationStats.
"""

import warnings

import pytest

import repro
from repro import _deprecation
from repro.core.fifo import FifoScheduler
from repro.core.work_stealing import WorkStealingScheduler
from repro.obs import Telemetry, audit_events, list_manifests, load_manifest
from repro.sim.engine import _run_work_stealing
from repro.speedup.engine import _run_speedup_equi, _run_speedup_fifo
from repro.speedup.model import (
    LinearCapped,
    Phase,
    SpeedupJob,
    SpeedupJobSet,
)


@pytest.fixture
def jobset():
    dags = [repro.parallel_for(total_body_work=48, grain=8) for _ in range(12)]
    return repro.jobs_from_dags(
        dags, arrivals=[1.5 * i for i in range(12)]
    )


@pytest.fixture
def speedup_jobset():
    return SpeedupJobSet(
        [
            SpeedupJob(
                job_id=i,
                phases=(Phase(8.0, LinearCapped(4)),),
                arrival=float(i),
            )
            for i in range(6)
        ]
    )


def same_result(a, b):
    assert list(a.completions) == list(b.completions)
    assert a.max_flow == b.max_flow
    assert a.stats == b.stats


class TestDispatch:
    def test_scheduler_instance(self, jobset):
        direct = WorkStealingScheduler(k=4).run(jobset, m=4, seed=0)
        via = repro.run(WorkStealingScheduler(k=4), jobset, m=4, seed=0)
        same_result(direct, via)

    def test_scheduler_class_instantiates_defaults(self, jobset):
        direct = FifoScheduler().run(jobset, m=4)
        via = repro.run(FifoScheduler, jobset, m=4)
        same_result(direct, via)

    def test_engine_name_work_stealing_forwards_kwargs(self, jobset):
        direct = _run_work_stealing(jobset, m=4, seed=7, k=2)
        via = repro.run("work-stealing", jobset, m=4, seed=7, k=2)
        same_result(direct, via)

    def test_engine_name_speedup_fifo(self, speedup_jobset):
        direct = _run_speedup_fifo(speedup_jobset, m=4)
        via = repro.run("speedup-fifo", speedup_jobset, m=4)
        same_result(direct, via)

    def test_engine_name_speedup_equi(self, speedup_jobset):
        direct = _run_speedup_equi(speedup_jobset, m=4, speed=2.0)
        via = repro.run("speedup-equi", speedup_jobset, m=4, speed=2.0)
        same_result(direct, via)

    def test_unknown_engine_name(self, jobset):
        with pytest.raises(ValueError, match="unknown engine"):
            repro.run("quantum", jobset, m=4)

    def test_bad_scheduler_type(self, jobset):
        with pytest.raises(TypeError, match="Scheduler"):
            repro.run(42, jobset, m=4)


class TestAliases:
    def test_num_workers_is_an_alias_for_m(self, jobset):
        a = repro.run(FifoScheduler(), jobset, m=4)
        b = repro.run(FifoScheduler(), jobset, num_workers=4)
        same_result(a, b)

    def test_conflicting_sizes_fail(self, jobset):
        with pytest.raises(TypeError, match="aliases"):
            repro.run(FifoScheduler(), jobset, m=4, num_workers=8)

    def test_agreeing_sizes_allowed(self, jobset):
        repro.run(FifoScheduler(), jobset, m=4, num_workers=4)

    def test_missing_size_fails(self, jobset):
        with pytest.raises(TypeError, match="machine size"):
            repro.run(FifoScheduler(), jobset)

    def test_augmentation_is_an_alias_for_speed(self, speedup_jobset):
        a = repro.run("speedup-fifo", speedup_jobset, m=4, speed=2.0)
        b = repro.run("speedup-fifo", speedup_jobset, m=4, augmentation=2.0)
        same_result(a, b)

    def test_conflicting_speeds_fail(self, speedup_jobset):
        with pytest.raises(TypeError, match="aliases"):
            repro.run(
                "speedup-fifo", speedup_jobset, m=4,
                speed=1.0, augmentation=2.0,
            )

    def test_speedup_engines_reject_seed(self, speedup_jobset):
        with pytest.raises(TypeError, match="no seed"):
            repro.run("speedup-fifo", speedup_jobset, m=4, seed=1)

    def test_speedup_engines_reject_extra_kwargs(self, speedup_jobset):
        with pytest.raises(TypeError, match="no extra"):
            repro.run("speedup-equi", speedup_jobset, m=4, k=4)


class TestDeprecatedShims:
    @pytest.fixture(autouse=True)
    def _fresh_warn_state(self, monkeypatch):
        monkeypatch.setattr(_deprecation, "_WARNED", set())

    def test_run_work_stealing_shim_bit_identical(self, jobset):
        from repro.sim.engine import run_work_stealing

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = run_work_stealing(jobset, m=4, seed=3, k=2)
        new = repro.run("work-stealing", jobset, m=4, seed=3, k=2)
        same_result(old, new)

    def test_speedup_shims_bit_identical(self, speedup_jobset):
        from repro.speedup.engine import run_speedup_equi, run_speedup_fifo

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old_fifo = run_speedup_fifo(speedup_jobset, m=4)
            old_equi = run_speedup_equi(speedup_jobset, m=4)
        same_result(old_fifo, repro.run("speedup-fifo", speedup_jobset, m=4))
        same_result(old_equi, repro.run("speedup-equi", speedup_jobset, m=4))

    def test_shim_warns_exactly_once(self, jobset):
        from repro.sim.engine import run_work_stealing

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_work_stealing(jobset, m=2, seed=0)
            run_work_stealing(jobset, m=2, seed=0)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.run" in str(deprecations[0].message)

    def test_each_shim_warns_independently(self, speedup_jobset):
        from repro.speedup.engine import run_speedup_equi, run_speedup_fifo

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_speedup_fifo(speedup_jobset, m=2)
            run_speedup_equi(speedup_jobset, m=2)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2

    def test_facade_itself_never_warns(self, jobset):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.run(WorkStealingScheduler(k=2), jobset, m=4, seed=0)
            repro.run("work-stealing", jobset, m=4, seed=0)


class TestTelemetryIdentity:
    def test_schedule_identical_with_telemetry_on(self, jobset):
        off = repro.run(WorkStealingScheduler(k=4), jobset, m=4, seed=5)
        tel = Telemetry()
        on = repro.run(
            WorkStealingScheduler(k=4), jobset, m=4, seed=5, telemetry=tel
        )
        same_result(off, on)

    def test_run_events_bracket_the_simulation(self, jobset):
        tel = Telemetry()
        result = repro.run(
            WorkStealingScheduler(k=4), jobset, m=4, seed=5, telemetry=tel
        )
        (start,) = tel.of_kind("run.start")
        (done,) = tel.of_kind("run.done")
        assert start["m"] == 4
        assert start["n_jobs"] == len(jobset)
        assert done["max_flow"] == result.max_flow
        assert done["stats"] == result.stats.as_dict()
        assert done["t"] >= start["t"]

    def test_no_events_without_telemetry(self, jobset):
        # The contract is structural: engines never see the sink at all.
        result = repro.run(WorkStealingScheduler(k=2), jobset, m=4, seed=0)
        assert result.stats.steal_attempts is not None


class TestSweepTelemetryEndToEnd:
    def test_grid_sweep_log_audits_clean_and_matches_stats(self, tmp_path):
        from repro.experiments.cache import SweepCache
        from repro.experiments.sweep import _grid_sweep as grid_sweep
        from repro.workloads.generator import WorkloadSpec
        from repro.workloads.distributions import ExponentialDistribution

        spec = WorkloadSpec(
            distribution=ExponentialDistribution(mean_ms=6.0),
            qps=200.0,
            n_jobs=16,
            m=4,
        )
        log = tmp_path / "events.jsonl"
        cache = SweepCache(tmp_path / "cache")

        def sweep(telemetry=None, resume=False):
            return grid_sweep(
                WorkStealingScheduler,
                {"k": [0, 4]},
                spec,
                m=4,
                reps=2,
                seed=11,
                metrics=("max_flow",),
                max_workers=1,
                cache=cache,
                resume=resume,
                telemetry=telemetry,
            )

        with Telemetry(log, label="e2e") as tel:
            instrumented = sweep(telemetry=tel)
            resumed = sweep(telemetry=tel, resume=True)
        plain = sweep()

        # Telemetry and resume are observationally inert.
        assert [c.metrics for c in instrumented.cells] == [
            c.metrics for c in plain.cells
        ]
        assert [c.metrics for c in resumed.cells] == [
            c.metrics for c in plain.cells
        ]

        from repro.obs import read_events

        events = read_events(log)
        assert audit_events(events) == []

        # 2 cells x 2 reps, cold then fully cached.
        assert sum(e["event"] == "cell.run" for e in events) == 4
        assert sum(e["event"] == "cell.cached" for e in events) == 4
        assert sum(e["event"] == "shm.publish" for e in events) >= 1

        # Event-embedded stats are real SimulationStats snapshots.
        for e in events:
            if e["event"] == "cell.run":
                stats = e["stats"]
                assert stats["steal_attempts"] >= stats["failed_steals"]
                assert stats["busy_steps"] > 0
                assert e["wall_s"] >= 0
                assert e["metrics"]["max_flow"] > 0

        # The manifest records the sweep's coordinates and instances.
        manifests = list_manifests(cache.root / "manifests")
        assert len(manifests) == 1  # same coordinates -> same manifest
        manifest = load_manifest(manifests[0])
        assert manifest["kind"] == "grid_sweep"
        assert manifest["seed"] == 11
        assert len(manifest["rep_seeds"]) == 2
        assert len(manifest["instances"]) == 2
        assert manifest["timings"]["wall_s"] > 0

    def test_figure2_cells_telemetry(self, tmp_path):
        from repro.experiments.config import FIG2A, ExperimentScale
        from repro.experiments.runner import _run_figure2_cells as run_figure2_cells

        log = tmp_path / "events.jsonl"
        scale = ExperimentScale(n_jobs=12, reps=1)
        with Telemetry(log) as tel:
            with_tel = run_figure2_cells(
                FIG2A, [100.0, 200.0], scale, seed=2,
                max_workers=1, telemetry=tel,
            )
        without = run_figure2_cells(
            FIG2A, [100.0, 200.0], scale, seed=2, max_workers=1,
        )
        assert with_tel == without

        from repro.obs import read_events

        events = read_events(log)
        assert audit_events(events) == []
        assert sum(e["event"] == "cell.run" for e in events) == 2
        # No cache in play: the manifest lands next to the log.
        manifests = list_manifests(tmp_path / "manifests")
        assert len(manifests) == 1
