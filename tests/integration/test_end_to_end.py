"""End-to-end tests: public API quickstart paths and full pipelines."""

import numpy as np
import pytest

import repro
from repro import (
    FifoScheduler,
    OptLowerBound,
    WorkStealingScheduler,
    jobs_from_dags,
    parallel_for,
)
from repro.metrics.summary import ComparisonTable
from repro.workloads.adversarial import adversarial_instance
from repro.workloads.distributions import FinanceDistribution
from repro.workloads.generator import WorkloadSpec


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_path(self):
        """The README/docstring quickstart must work verbatim."""
        dags = [parallel_for(total_body_work=64, grain=8) for _ in range(20)]
        jobs = jobs_from_dags(dags, arrivals=[2.0 * i for i in range(20)])
        opt = OptLowerBound().run(jobs, m=4)
        ws = WorkStealingScheduler(k=4).run(jobs, m=4, seed=0)
        assert opt.max_flow <= ws.max_flow

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestWorkloadToReportPipeline:
    def test_full_comparison_pipeline(self):
        spec = WorkloadSpec(FinanceDistribution(), qps=900.0, n_jobs=300, m=16)
        js = spec.build(seed=5)
        table = ComparisonTable(baseline="opt-lb", time_unit=0.25, time_label="ms")
        table.add(OptLowerBound().run(js, m=16))
        table.add(WorkStealingScheduler(k=16, steals_per_tick=64).run(js, m=16, seed=1))
        table.add(WorkStealingScheduler(k=0, steals_per_tick=64).run(js, m=16, seed=1))
        text = table.render()
        assert "opt-lb" in text and "steal-16-first" in text
        rows = {r["name"]: r for r in table.rows()}
        assert rows["steal-16-first"]["vs_baseline"] >= 1.0


class TestAdversarialPipeline:
    def test_lower_bound_instance_end_to_end(self):
        js, m = adversarial_instance(512, fanout=5)
        ws = WorkStealingScheduler(k=0).run(js, m=m, seed=0)
        fifo = FifoScheduler().run(js, m=m)
        # FIFO (centralized) realizes the 2-step schedule; work stealing
        # pays steal latency and lands strictly above it.
        assert fifo.max_flow == pytest.approx(2.0)
        assert ws.max_flow > fifo.max_flow


class TestScaleSanity:
    def test_thousand_jobs_run_quickly_and_agree(self):
        spec = WorkloadSpec(FinanceDistribution(), qps=850.0, n_jobs=1000, m=16)
        js = spec.build(seed=9)
        opt = OptLowerBound().run(js, m=16)
        ws = WorkStealingScheduler(k=16, steals_per_tick=64).run(js, m=16, seed=2)
        ratio = ws.max_flow / opt.max_flow
        # steal-k-first stays within a small constant of OPT at ~53% load.
        assert 1.0 <= ratio < 4.0
