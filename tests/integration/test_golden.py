"""Golden regression tests: pinned exact outputs of seeded runs.

The engines are exact and deterministic, so these values must reproduce
bit-for-bit on any machine.  A failure here means the *semantics* of an
engine, a workload generator, or the RNG plumbing changed -- which may
be intentional, but must be noticed: rerun the generator snippet in this
file's history (or the equivalent inline code) and update the constants
together with a CHANGELOG entry.

Values pinned against: numpy >= 1.21 PCG64 streams, repro 1.0.0.
"""

import hashlib

import pytest

from repro.core import (
    BwfScheduler,
    FifoScheduler,
    LeastAttainedServiceScheduler,
    OptLowerBound,
    WorkStealingScheduler,
)
from repro.workloads.distributions import BingDistribution
from repro.workloads.generator import WorkloadSpec
from repro.workloads.weights import class_weights, reweight

SEED = 20260706


@pytest.fixture(scope="module")
def golden_jobset():
    spec = WorkloadSpec(BingDistribution(), qps=1000.0, n_jobs=300, m=8)
    return spec.build(seed=SEED)


class TestWorkloadGolden:
    def test_total_work(self, golden_jobset):
        assert golden_jobset.total_work == 12787

    def test_horizon(self, golden_jobset):
        assert golden_jobset.time_horizon == pytest.approx(
            1137.3189238808613, abs=1e-9
        )


class TestSchedulerGolden:
    def test_opt(self, golden_jobset):
        assert OptLowerBound().run(golden_jobset, m=8).max_flow == pytest.approx(
            480.5096851261126, abs=1e-9
        )

    def test_fifo(self, golden_jobset):
        r = FifoScheduler().run(golden_jobset, m=8)
        assert r.max_flow == pytest.approx(485.24651441813444, abs=1e-9)
        digest = hashlib.sha256(r.completions.tobytes()).hexdigest()
        assert digest.startswith("5c93a9392497bf97")

    def test_admit_first(self, golden_jobset):
        r = WorkStealingScheduler(k=0).run(golden_jobset, m=8, seed=1)
        assert r.max_flow == pytest.approx(611.5442191768095, abs=1e-9)

    def test_steal_k_first_practical(self, golden_jobset):
        r = WorkStealingScheduler(k=4, steals_per_tick=16).run(
            golden_jobset, m=8, seed=1
        )
        assert r.max_flow == pytest.approx(519.8006096308825, abs=1e-9)
        assert r.stats.steal_attempts == 7908
        assert r.stats.elapsed_ticks == 1620
        digest = hashlib.sha256(r.completions.tobytes()).hexdigest()
        assert digest.startswith("0597a868d90e269d")

    def test_bwf_weighted(self, golden_jobset):
        weighted = reweight(golden_jobset, class_weights(3, 300))
        r = BwfScheduler().run(weighted, m=8)
        assert r.max_weighted_flow == pytest.approx(656.7006115730295, abs=1e-9)

    def test_las(self, golden_jobset):
        r = LeastAttainedServiceScheduler().run(golden_jobset, m=8)
        assert r.max_flow == pytest.approx(1582.1901239526906, abs=1e-9)
