"""The repro.sweep() facade: scheduler forms, aliases, knob threading.

Pins the ISSUE-4 API contract, mirroring ``test_run_facade.py``:

* every accepted scheduler form (class, prototype instance, engine
  name, raw factory callable) dispatches to
  :func:`repro.experiments.sweep.grid_sweep` bit-identically;
* the ``run()`` keyword normalizations apply unchanged
  (``num_workers``/``m``, ``augmentation``/``speed``);
* fault-tolerance and caching knobs (``cell_timeout``, ``retries``,
  ``resume``, ``telemetry``) thread through to the executor;
* prototype-instance sweeps key the content-addressed cell cache
  stably (configuration changes miss, reruns hit).
"""

from __future__ import annotations

import functools

import pytest

import repro
from repro.api import _EngineScheduler, _InstanceFactory, _as_factory
from repro.core.work_stealing import WorkStealingScheduler
from repro.errors import SweepConfigError
from repro.experiments.cache import SweepCache
from repro.experiments.sweep import _grid_sweep as grid_sweep
from repro.obs import Telemetry
from repro.workloads.distributions import ExponentialDistribution
from repro.workloads.generator import WorkloadSpec


@pytest.fixture
def spec():
    return WorkloadSpec(
        distribution=ExponentialDistribution(mean_ms=6.0),
        qps=250.0,
        n_jobs=12,
        m=4,
    )


def cells_of(table):
    return [(c.params, c.metrics) for c in table.cells]


class TestSchedulerForms:
    def test_class_matches_grid_sweep(self, spec):
        direct = grid_sweep(
            WorkStealingScheduler, {"k": [0, 4]}, spec,
            m=4, reps=2, seed=3, max_workers=1,
        )
        via = repro.sweep(
            WorkStealingScheduler, {"k": [0, 4]}, spec,
            m=4, reps=2, seed=3, max_workers=1,
        )
        assert cells_of(via) == cells_of(direct)

    def test_prototype_instance_keeps_its_configuration(self, spec):
        proto = WorkStealingScheduler(k=0, steals_per_tick=4)
        via = repro.sweep(
            proto, {"k": [0, 2]}, spec, m=4, seed=3, max_workers=1,
        )
        reference = grid_sweep(
            functools.partial(WorkStealingScheduler, steals_per_tick=4),
            {"k": [0, 2]},
            spec,
            m=4, seed=3, max_workers=1,
        )
        assert cells_of(via) == cells_of(reference)
        # The prototype itself is never mutated by the sweep.
        assert proto.k == 0

    def test_prototype_rejects_unknown_grid_key(self, spec):
        with pytest.raises(SweepConfigError, match="no parameter"):
            repro.sweep(
                WorkStealingScheduler(k=0), {"warp": [1]}, spec,
                m=4, max_workers=1,
            )

    def test_engine_name_is_deterministic(self, spec):
        a = repro.sweep(
            "work-stealing", {"k": [0, 4]}, spec,
            m=4, seed=5, max_workers=1,
        )
        b = repro.sweep(
            "work-stealing", {"k": [0, 4]}, spec,
            m=4, seed=5, max_workers=1,
        )
        assert cells_of(a) == cells_of(b)
        assert [c.params["k"] for c in a.cells] == [0, 4]
        assert all(c.metrics["max_flow"] > 0 for c in a.cells)

    def test_unknown_engine_name(self, spec):
        with pytest.raises(SweepConfigError, match="unknown engine"):
            repro.sweep("quantum", {"k": [0]}, spec, m=4)

    def test_raw_factory_callable_passes_through(self, spec):
        factory = functools.partial(WorkStealingScheduler, steals_per_tick=2)
        direct = grid_sweep(
            factory, {"k": [0, 2]}, spec, m=4, seed=1, max_workers=1,
        )
        via = repro.sweep(
            factory, {"k": [0, 2]}, spec, m=4, seed=1, max_workers=1,
        )
        assert cells_of(via) == cells_of(direct)

    def test_bad_scheduler_type(self, spec):
        with pytest.raises(TypeError, match="Scheduler"):
            repro.sweep(42, {"k": [0]}, spec, m=4)
        with pytest.raises(TypeError, match="subclass"):
            repro.sweep(dict, {"k": [0]}, spec, m=4)


class TestAliases:
    def test_num_workers_is_an_alias_for_m(self, spec):
        a = repro.sweep(
            WorkStealingScheduler, {"k": [0]}, spec,
            m=4, seed=2, max_workers=1,
        )
        b = repro.sweep(
            WorkStealingScheduler, {"k": [0]}, spec,
            num_workers=4, seed=2, max_workers=1,
        )
        assert cells_of(a) == cells_of(b)

    def test_conflicting_sizes_fail(self, spec):
        with pytest.raises(TypeError, match="aliases"):
            repro.sweep(
                WorkStealingScheduler, {"k": [0]}, spec, m=4, num_workers=8,
            )

    def test_missing_size_fails(self, spec):
        with pytest.raises(TypeError, match=r"sweep\(\) requires"):
            repro.sweep(WorkStealingScheduler, {"k": [0]}, spec)

    def test_augmentation_is_an_alias_for_speed(self, spec):
        a = repro.sweep(
            WorkStealingScheduler, {"k": [0]}, spec,
            m=4, seed=2, speed=2.0, max_workers=1,
        )
        b = repro.sweep(
            WorkStealingScheduler, {"k": [0]}, spec,
            m=4, seed=2, augmentation=2.0, max_workers=1,
        )
        assert cells_of(a) == cells_of(b)

    def test_conflicting_speeds_fail(self, spec):
        with pytest.raises(TypeError, match="aliases"):
            repro.sweep(
                WorkStealingScheduler, {"k": [0]}, spec,
                m=4, speed=1.0, augmentation=2.0,
            )


class TestKnobThreading:
    def test_fault_knobs_reach_the_dispatcher(self, spec):
        tel = Telemetry()
        repro.sweep(
            WorkStealingScheduler, {"k": [0, 2]}, spec,
            m=4, seed=1, max_workers=2, reps=1,
            cell_timeout=30.0, retries=5, telemetry=tel,
        )
        (dispatch,) = tel.of_kind("dispatch.pool")
        assert dispatch["cell_timeout"] == 30.0
        assert dispatch["retries"] == 5

    def test_resume_round_trip_with_prototype(self, spec, tmp_path):
        """Prototype-instance factories are content-keyed: a rerun hits
        the cell cache; a differently configured prototype misses."""
        cache = SweepCache(tmp_path / "cache")
        proto = WorkStealingScheduler(k=0, steals_per_tick=4)
        cold = repro.sweep(
            proto, {"k": [0, 2]}, spec,
            m=4, seed=9, max_workers=1, cache=cache, resume=True,
        )
        tel = Telemetry()
        warm = repro.sweep(
            WorkStealingScheduler(k=0, steals_per_tick=4),
            {"k": [0, 2]}, spec,
            m=4, seed=9, max_workers=1, cache=cache, resume=True,
            telemetry=tel,
        )
        assert cells_of(warm) == cells_of(cold)
        assert tel.of_kind("cell.run") == []
        assert len(tel.of_kind("cell.cached")) == 2

        # Same class, different prototype configuration: full miss.
        tel2 = Telemetry()
        repro.sweep(
            WorkStealingScheduler(k=0, steals_per_tick=8),
            {"k": [0, 2]}, spec,
            m=4, seed=9, max_workers=1, cache=cache, resume=True,
            telemetry=tel2,
        )
        assert len(tel2.of_kind("cell.run")) == 2

    def test_exported_and_documented(self):
        assert "sweep" in repro.__all__
        assert repro.sweep is not None
        assert repro.__version__ == "1.7.0"


class TestSharding:
    """The ISSUE-8 facade surface: ``shard=`` plus ``merge_caches``.

    The partition/merge semantics themselves live in
    ``tests/experiments/test_shard.py``; this class pins only that the
    facade forwards the knob faithfully and exports the merge API.
    """

    def test_shard_forms_are_equivalent_through_the_facade(
        self, spec, tmp_path
    ):
        kwargs = dict(m=4, reps=1, seed=4, max_workers=1)
        a = repro.sweep(
            WorkStealingScheduler, {"k": [0, 2, 4]}, spec,
            cache=tmp_path / "a", shard=(1, 2), **kwargs,
        )
        b = repro.sweep(
            WorkStealingScheduler, {"k": [0, 2, 4]}, spec,
            cache=tmp_path / "b", shard="1/2", **kwargs,
        )
        assert a.shard == b.shard == "1/2"
        assert cells_of(a) == cells_of(b)

    def test_shard_union_matches_the_unsharded_facade_sweep(
        self, spec, tmp_path
    ):
        kwargs = dict(m=4, reps=1, seed=4, max_workers=1)
        full = repro.sweep(
            WorkStealingScheduler, {"k": [0, 2, 4]}, spec, **kwargs
        )
        assert full.shard is None
        parts = []
        for i in range(2):
            part = repro.sweep(
                WorkStealingScheduler, {"k": [0, 2, 4]}, spec,
                cache=tmp_path / f"s{i}", shard=(i, 2), **kwargs,
            )
            parts.extend(cells_of(part))
        assert parts == cells_of(full)

    def test_shard_validation_errors_are_typed_at_the_facade(
        self, spec, tmp_path
    ):
        for bad in [(0, 0), (2, 2), "x/3", "1", (1.5, 2)]:
            with pytest.raises(SweepConfigError):
                repro.sweep(
                    WorkStealingScheduler, {"k": [0]}, spec,
                    m=4, cache=tmp_path, shard=bad,
                )
        # ...and still catchable by pre-typed ValueError handlers.
        with pytest.raises(ValueError):
            repro.sweep(
                WorkStealingScheduler, {"k": [0]}, spec,
                m=4, cache=tmp_path, shard=(0, 0),
            )

    def test_merge_caches_is_a_root_export(self, spec, tmp_path):
        assert "merge_caches" in repro.__all__
        kwargs = dict(m=4, reps=1, seed=4, max_workers=1)
        for i in range(2):
            repro.sweep(
                WorkStealingScheduler, {"k": [0, 2]}, spec,
                cache=tmp_path / f"s{i}", shard=(i, 2), **kwargs,
            )
        report = repro.merge_caches(
            [tmp_path / "s0", tmp_path / "s1"], tmp_path / "merged"
        )
        assert report.cells_added == 2
        full = repro.sweep(
            WorkStealingScheduler, {"k": [0, 2]}, spec,
            cache=tmp_path / "merged", resume=True, **kwargs,
        )
        assert [c.params["k"] for c in full.cells] == [0, 2]

    def test_conflict_error_is_a_root_export(self):
        assert "CacheMergeConflictError" in repro.__all__
        assert issubclass(repro.CacheMergeConflictError, repro.ReproError)


class TestAdapters:
    def test_as_factory_resolution(self):
        assert _as_factory(WorkStealingScheduler) is WorkStealingScheduler
        assert isinstance(
            _as_factory(WorkStealingScheduler(k=2)), _InstanceFactory
        )
        partial = _as_factory("work-stealing")
        assert isinstance(partial, functools.partial)
        assert partial.func is _EngineScheduler

    def test_instance_factory_repr_is_address_free(self):
        factory = _InstanceFactory(WorkStealingScheduler(k=2))
        assert " at 0x" not in repr(factory)
        assert "k=2" in repr(factory)

    def test_engine_scheduler_repr_and_validation(self):
        sched = _EngineScheduler("work-stealing", k=4)
        assert sched.name == "work-stealing"
        assert " at 0x" not in repr(sched)
        with pytest.raises(SweepConfigError):
            _EngineScheduler("quantum")
        with pytest.raises(TypeError, match="no extra"):
            _EngineScheduler("speedup-fifo", k=4)
