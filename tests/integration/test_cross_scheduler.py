"""Cross-scheduler integration tests on shared instances.

These check the relationships the paper's evaluation rests on, across
every scheduler at once: OPT-lb soundness, feasibility audits, and the
qualitative orderings of Figure 2.
"""

import numpy as np
import pytest

from repro.core.bwf import BwfScheduler
from repro.core.fifo import FifoScheduler
from repro.core.greedy import LifoScheduler, RandomPriorityScheduler, SjfScheduler
from repro.core.opt import OptLowerBound, opt_lower_bound
from repro.core.work_stealing import WorkStealingScheduler
from repro.sim.trace import TraceRecorder, audit_trace
from repro.theory.validate import (
    check_lower_bound_soundness,
    check_span_lower_bounds,
    check_work_conservation,
)

ALL_FEASIBLE_SCHEDULERS = [
    FifoScheduler(),
    BwfScheduler(),
    LifoScheduler(),
    SjfScheduler(),
    RandomPriorityScheduler(),
    WorkStealingScheduler(k=0),
    WorkStealingScheduler(k=4),
    WorkStealingScheduler(k=16, steals_per_tick=32),
]


@pytest.mark.parametrize(
    "scheduler", ALL_FEASIBLE_SCHEDULERS, ids=lambda s: s.name
)
class TestEverySchedulerOnSharedInstance:
    def test_feasibility_audit(self, medium_random_jobset, scheduler):
        tr = TraceRecorder()
        scheduler.run(medium_random_jobset, m=8, seed=13, trace=tr)
        audit_trace(tr, medium_random_jobset, m=8, speed=1.0)

    def test_invariant_checks(self, medium_random_jobset, scheduler):
        r = scheduler.run(medium_random_jobset, m=8, seed=13)
        for check in (
            check_lower_bound_soundness(r, medium_random_jobset),
            check_span_lower_bounds(r, medium_random_jobset),
            check_work_conservation(r, medium_random_jobset),
        ):
            assert check.passed, str(check)

    def test_all_jobs_complete(self, medium_random_jobset, scheduler):
        r = scheduler.run(medium_random_jobset, m=8, seed=13)
        assert np.all(r.completions > 0)
        assert r.n_jobs == len(medium_random_jobset)


class TestQualitativeOrderings:
    """The shape conclusions of the paper's Figure 2, as assertions."""

    @pytest.fixture(scope="class")
    def loaded_instance(self):
        from repro.workloads.distributions import BingDistribution
        from repro.workloads.generator import WorkloadSpec

        spec = WorkloadSpec(BingDistribution(), qps=1150.0, n_jobs=1200, m=16)
        return spec.build(seed=777)

    def test_opt_lowest(self, loaded_instance):
        lb = opt_lower_bound(loaded_instance, m=16)
        for sched in (
            FifoScheduler(),
            WorkStealingScheduler(k=16, steals_per_tick=64),
            WorkStealingScheduler(k=0, steals_per_tick=64),
        ):
            r = sched.run(loaded_instance, m=16, seed=4)
            assert lb.max_flow <= r.max_flow + 1e-9

    def test_steal_k_first_beats_admit_first_at_load(self, loaded_instance):
        sk = WorkStealingScheduler(k=16, steals_per_tick=64).run(
            loaded_instance, m=16, seed=4
        )
        s0 = WorkStealingScheduler(k=0, steals_per_tick=64).run(
            loaded_instance, m=16, seed=4
        )
        assert sk.max_flow < s0.max_flow

    def test_fifo_close_to_opt(self, loaded_instance):
        """FIFO (the idealized scheduler) tracks OPT within a small factor."""
        lb = opt_lower_bound(loaded_instance, m=16)
        r = FifoScheduler().run(loaded_instance, m=16)
        assert r.max_flow <= 2.5 * lb.max_flow

    def test_steal_k_first_tracks_fifo(self, loaded_instance):
        """The Section 4 design goal: steal-k-first approximates FIFO."""
        fifo = FifoScheduler().run(loaded_instance, m=16)
        sk = WorkStealingScheduler(k=16, steals_per_tick=64).run(
            loaded_instance, m=16, seed=4
        )
        assert sk.max_flow <= 3.0 * fifo.max_flow


class TestOptWrapper:
    def test_opt_result_not_audited(self, medium_random_jobset):
        # The OPT lower bound is not a feasible schedule; it produces no
        # trace, and its wrapper says so.
        r = OptLowerBound().run(medium_random_jobset, m=8)
        assert r.scheduler == "opt-lb"
