"""Content-addressed cache + resume: equivalence is the whole contract.

The cache (:mod:`repro.experiments.cache`) may only ever change *when*
a number is computed, never *what* it is: a resumed sweep must be
bit-identical to a cold serial run.  These tests pin that contract for
the store itself (exact float round-trips, corrupt files miss, atomic
layout), for :func:`grid_sweep` and for
:func:`run_figure2_cells`.
"""

import json

import numpy as np
import pytest

from repro.core.work_stealing import WorkStealingScheduler
from repro.dag.flat import content_hash
from repro.experiments.cache import (
    CACHE_ENV,
    RESUME_ENV,
    SweepCache,
    cell_key,
    resolve_cache_dir,
    resume_enabled_by_env,
)
from repro.experiments.config import ExperimentScale, Figure2Config
from repro.experiments.runner import _run_figure2_cells as run_figure2_cells
from repro.experiments.sweep import _grid_sweep as grid_sweep
from repro.workloads.distributions import BingDistribution
from repro.workloads.generator import WorkloadSpec

SPEC = WorkloadSpec(BingDistribution(), qps=800.0, n_jobs=30, m=4, target_chunks=8)


def _make_scheduler(k):  # top-level: picklable
    return WorkStealingScheduler(k=k, steals_per_tick=16)


class TestResolution:
    def test_explicit_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir(tmp_path / "arg") == tmp_path / "arg"

    def test_env_beats_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "env"))
        assert resolve_cache_dir() == tmp_path / "env"

    def test_default(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert str(resolve_cache_dir()) == ".repro_cache"

    def test_resume_env_parsing(self, monkeypatch):
        for value, expected in [
            ("1", True), ("true", True), ("yes", True),
            ("0", False), ("false", False), ("", False), ("no", False),
        ]:
            monkeypatch.setenv(RESUME_ENV, value)
            assert resume_enabled_by_env() is expected
        monkeypatch.delenv(RESUME_ENV)
        assert resume_enabled_by_env() is False


class TestCellKey:
    def test_deterministic_and_sensitive(self):
        base = cell_key("grid-cell", "hash", "factory", [("k", 4)], 4, 1.0)
        assert base == cell_key("grid-cell", "hash", "factory", [("k", 4)], 4, 1.0)
        assert base != cell_key("grid-cell", "hash", "factory", [("k", 5)], 4, 1.0)
        assert base != cell_key("grid-cell", "hash2", "factory", [("k", 4)], 4, 1.0)


class TestSweepCacheStore:
    def test_instance_round_trip_exact(self, tmp_path):
        cache = SweepCache(tmp_path)
        flat = SPEC.build_flat(seed=7)
        key = SPEC.cache_key(7)
        assert cache.load_instance(key) is None
        cache.store_instance(key, flat)
        loaded = cache.load_instance(key)
        assert loaded == flat
        assert content_hash(loaded) == content_hash(flat)

    def test_cell_round_trip_exact_floats(self, tmp_path):
        cache = SweepCache(tmp_path)
        # Awkward floats: JSON repr round-trips them exactly in py3.
        metrics = {"max_flow": 0.1 + 0.2, "mean_flow": 1e-17, "p99_flow": np.float64(3.7) ** 0.5}
        metrics = {k: float(v) for k, v in metrics.items()}
        key = cell_key("x")
        assert cache.load_cell(key) is None
        cache.store_cell(key, metrics)
        loaded = cache.load_cell(key)
        assert loaded == metrics  # bit-identical, not approx

    def test_cell_preserves_key_order(self, tmp_path):
        # Figure series follow the scheduler-lineup order of the metric
        # dict; a resumed cell must render exactly like a computed one,
        # so the cache may not re-sort keys.
        cache = SweepCache(tmp_path)
        metrics = {"opt-lb": 1.0, "steal-16-first": 2.0, "admit-first": 3.0}
        key = cell_key("order")
        cache.store_cell(key, metrics)
        assert list(cache.load_cell(key)) == list(metrics)

    def test_corrupt_files_are_misses(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cell_key("corrupt")
        cache.cells_dir.mkdir(parents=True, exist_ok=True)
        cache.cell_path(key).write_text("{not json")
        assert cache.load_cell(key) is None
        cache.instances_dir.mkdir(parents=True, exist_ok=True)
        cache.instance_path(key).write_bytes(b"\x00garbage")
        assert cache.load_instance(key) is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = cell_key("schema")
        cache.cells_dir.mkdir(parents=True, exist_ok=True)
        cache.cell_path(key).write_text(
            json.dumps({"schema": "repro-cell/999", "metrics": {"max_flow": 1.0}})
        )
        assert cache.load_cell(key) is None

    def test_clear_and_stats(self, tmp_path):
        cache = SweepCache(tmp_path / "c")
        empty = {"instances": 0, "cells": 0, "manifests": 0}
        assert cache.stats() == empty
        cache.store_cell(cell_key("a"), {"max_flow": 1.0})
        cache.store_instance(SPEC.cache_key(1), SPEC.build_flat(seed=1))
        assert cache.stats() == {"instances": 1, "cells": 1, "manifests": 0}
        cache.clear()
        assert cache.stats() == empty
        assert not (tmp_path / "c").exists()

    def test_clear_removes_manifests_and_sidecars(self, tmp_path):
        # A "cleared" cache must not keep provenance or half-written
        # sidecars behind: a later merge would read them as real.
        cache = SweepCache(tmp_path / "c")
        cache.store_cell(cell_key("a"), {"max_flow": 1.0})
        cache.manifests_dir.mkdir(parents=True, exist_ok=True)
        (cache.manifests_dir / "shard-x-0of2.json").write_text("{}")
        (cache.cells_dir / "torn.tmp").write_text("{half")
        assert cache.stats()["manifests"] == 1
        cache.clear()
        assert not cache.root.exists()

    def test_clear_follows_a_symlinked_root(self, tmp_path):
        # rmtree on a symlink silently deletes nothing; clear() must go
        # through the link (and drop the link) or "clean-cache" leaves
        # every poisoned file in place.
        real = tmp_path / "real"
        link = tmp_path / "link"
        cache = SweepCache(real)
        cache.store_cell(cell_key("a"), {"max_flow": 1.0})
        link.symlink_to(real)
        SweepCache(link).clear()
        assert not link.exists()
        assert not real.exists()


class TestGridSweepResume:
    KWARGS = dict(
        grid={"k": [0, 4]},
        jobset_factory=SPEC,
        m=4,
        reps=2,
        seed=3,
        metrics=("max_flow", "mean_flow"),
        max_workers=1,
    )

    def test_resumed_sweep_bit_identical_to_cold_serial(self, tmp_path):
        cold = grid_sweep(_make_scheduler, **self.KWARGS)
        cache = SweepCache(tmp_path)
        warm_fill = grid_sweep(
            _make_scheduler, cache=cache, resume=True, **self.KWARGS
        )
        stats = cache.stats()
        assert stats["cells"] == 4  # 2 grid points x 2 reps
        assert stats["instances"] == 2  # one per rep
        resumed = grid_sweep(
            _make_scheduler, cache=cache, resume=True, **self.KWARGS
        )
        for a, b, c in zip(cold.cells, warm_fill.cells, resumed.cells):
            assert a.params == b.params == c.params
            assert a.metrics == b.metrics == c.metrics  # exact floats

    def test_resume_only_runs_cold_cells(self, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path)
        grid_sweep(_make_scheduler, cache=cache, resume=True, **self.KWARGS)

        # A scheduler run on a fully warm sweep would prove the cache
        # was bypassed.
        def boom(self, *a, **kw):  # pragma: no cover - must not run
            raise AssertionError("cache bypassed: scheduler ran")

        monkeypatch.setattr(WorkStealingScheduler, "run", boom)
        resumed = grid_sweep(
            _make_scheduler, cache=cache, resume=True, **self.KWARGS
        )
        assert len(resumed.cells) == 2

    def test_cache_accepts_path_string(self, tmp_path):
        grid_sweep(
            _make_scheduler, cache=str(tmp_path / "p"), resume=True, **self.KWARGS
        )
        assert SweepCache(tmp_path / "p").stats()["cells"] == 4

    def test_changed_metrics_miss_cleanly(self, tmp_path):
        cache = SweepCache(tmp_path)
        grid_sweep(_make_scheduler, cache=cache, resume=True, **self.KWARGS)
        kwargs = dict(self.KWARGS, metrics=("max_flow", "p99_flow"))
        widened = grid_sweep(
            _make_scheduler, cache=cache, resume=True, **kwargs
        )
        baseline = grid_sweep(_make_scheduler, **kwargs)
        for a, b in zip(widened.cells, baseline.cells):
            assert a.metrics == b.metrics

    def test_lambda_factory_skips_instance_cache(self, tmp_path):
        # Arbitrary callables have no content identity: cells still
        # cache (keyed by instance content hash) but instances do not.
        cache = SweepCache(tmp_path)
        kwargs = dict(self.KWARGS, jobset_factory=lambda s: SPEC.build(seed=s))
        grid_sweep(_make_scheduler, cache=cache, resume=True, **kwargs)
        stats = cache.stats()
        assert stats["instances"] == 0
        assert stats["cells"] == 4

    def test_distinct_lambdas_never_share_cells(self, tmp_path):
        # Same module, same qualname ("<lambda>"), different behavior:
        # a name-only factory token served one lambda's cached metrics
        # to the other under resume.  Tokens are content-based now.
        cache = SweepCache(tmp_path)
        grid_sweep(
            lambda k: WorkStealingScheduler(k=k, steals_per_tick=1),
            cache=cache, resume=True, **self.KWARGS,
        )
        resumed = grid_sweep(
            lambda k: WorkStealingScheduler(k=k, steals_per_tick=64),
            cache=cache, resume=True, **self.KWARGS,
        )
        cold = grid_sweep(
            lambda k: WorkStealingScheduler(k=k, steals_per_tick=64),
            **self.KWARGS,
        )
        assert cache.stats()["cells"] == 8  # two disjoint key sets
        for a, b in zip(resumed.cells, cold.cells):
            assert a.metrics == b.metrics

    def test_closure_captured_config_is_keyed(self, tmp_path):
        # Two closures over the *same* code but different captured
        # values must key (and cache) independently.
        def make_factory(spt):
            return lambda k: WorkStealingScheduler(k=k, steals_per_tick=spt)

        cache = SweepCache(tmp_path)
        grid_sweep(make_factory(1), cache=cache, resume=True, **self.KWARGS)
        resumed = grid_sweep(
            make_factory(64), cache=cache, resume=True, **self.KWARGS
        )
        cold = grid_sweep(make_factory(64), **self.KWARGS)
        assert cache.stats()["cells"] == 8
        for a, b in zip(resumed.cells, cold.cells):
            assert a.metrics == b.metrics

    def test_unkeyable_factory_bypasses_cell_cache(self, tmp_path):
        # A closure over an object with an address-based repr cannot be
        # keyed stably across runs; the sweep must warn and skip the
        # cell cache instead of writing unreliable keys.
        opaque = object()

        def factory(k):
            assert opaque is not None
            return WorkStealingScheduler(k=k, steals_per_tick=16)

        cache = SweepCache(tmp_path)
        with pytest.warns(RuntimeWarning, match="cell cache is bypassed"):
            bypassed = grid_sweep(
                factory, cache=cache, resume=True, **self.KWARGS
            )
        assert cache.stats()["cells"] == 0
        baseline = grid_sweep(_make_scheduler, **self.KWARGS)
        for a, b in zip(bypassed.cells, baseline.cells):
            assert a.metrics == b.metrics


class TestFigure2Resume:
    CFG = Figure2Config(
        name="tiny-bing",
        distribution_factory=BingDistribution,
        qps_values=(600.0, 900.0),
        m=4,
        k=4,
        steals_per_tick=16,
        target_chunks=8,
    )
    SCALE = ExperimentScale(n_jobs=30, reps=2)

    def test_resumed_cells_bit_identical(self, tmp_path):
        cold = run_figure2_cells(
            self.CFG, self.CFG.qps_values, self.SCALE, seed=5, max_workers=1
        )
        cache = SweepCache(tmp_path)
        warm_fill = run_figure2_cells(
            self.CFG, self.CFG.qps_values, self.SCALE, seed=5,
            max_workers=1, cache=cache, resume=True,
        )
        assert cache.stats()["cells"] == len(self.CFG.qps_values)
        resumed = run_figure2_cells(
            self.CFG, self.CFG.qps_values, self.SCALE, seed=5,
            max_workers=1, cache=cache, resume=True,
        )
        assert cold == warm_fill == resumed

    def test_env_var_enables_resume(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        monkeypatch.setenv(RESUME_ENV, "1")
        first = run_figure2_cells(
            self.CFG, self.CFG.qps_values, self.SCALE, seed=5, max_workers=1
        )
        assert SweepCache().root == tmp_path
        assert SweepCache().stats()["cells"] == len(self.CFG.qps_values)

        def boom(self, *a, **kw):  # pragma: no cover - must not run
            raise AssertionError("cache bypassed: scheduler ran")

        monkeypatch.setattr(WorkStealingScheduler, "run", boom)
        second = run_figure2_cells(
            self.CFG, self.CFG.qps_values, self.SCALE, seed=5, max_workers=1
        )
        assert first == second

    def test_seed_change_misses(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_figure2_cells(
            self.CFG, self.CFG.qps_values, self.SCALE, seed=5,
            max_workers=1, cache=cache, resume=True,
        )
        run_figure2_cells(
            self.CFG, self.CFG.qps_values, self.SCALE, seed=6,
            max_workers=1, cache=cache, resume=True,
        )
        assert cache.stats()["cells"] == 2 * len(self.CFG.qps_values)
