"""Declarative ablation harness (ISSUE 9): baseline + deltas -> report.

The properties under test: every configuration is a paired single-cell
sweep (identical rep seeds, so a no-op delta has *exactly* zero
impact), impacts are variant minus baseline per metric, the report
ranks by absolute objective impact, renders to text / markdown / JSON,
and reruns against the same cache directory are served entirely warm.
"""

import json

import pytest

import repro
from repro.core.fifo import FifoScheduler
from repro.core.work_stealing import WorkStealingScheduler
from repro.errors import SweepConfigError
from repro.experiments.ablate import AblationReport, ablate
from repro.obs.summary import audit_events, summarize_events
from repro.obs.telemetry import Telemetry, read_events
from repro.workloads.distributions import BingDistribution
from repro.workloads.generator import WorkloadSpec

SPEC = WorkloadSpec(
    BingDistribution(), qps=400.0, n_jobs=40, m=4, target_chunks=8
)

DELTAS = {
    "no-steal": {"k": 0},
    "half-machines": {"m": 2},
    "50%-faster": {"speed": 1.5},
    "double-load": {"workload.qps": 800.0},
}


def make_ws(k=16, steals_per_tick=1):  # top-level: picklable + keyable
    return WorkStealingScheduler(k=k, steals_per_tick=steals_per_tick)


class TestReport:
    def test_impacts_are_variant_minus_baseline(self, tmp_path):
        report = ablate(
            make_ws, {"k": 16}, DELTAS, SPEC, m=4, reps=2, seed=1,
            cache=tmp_path, max_workers=1,
        )
        assert isinstance(report, AblationReport)
        assert set(d.name for d in report.deltas) == set(DELTAS)
        base = report.baseline_metrics["max_flow"]
        for d in report.deltas:
            assert d.impact["max_flow"] == pytest.approx(
                d.metrics["max_flow"] - base
            )
            rel = d.rel_impact["max_flow"]
            assert rel == pytest.approx(d.impact["max_flow"] / base)

    def test_resolved_knobs_recorded(self, tmp_path):
        report = ablate(
            make_ws, {"k": 16}, DELTAS, SPEC, m=4, reps=1, seed=1,
            cache=tmp_path, max_workers=1,
        )
        assert report.baseline_params == {"k": 16}
        assert report.baseline_m == 4
        assert report.baseline_speed == 1.0
        assert report["half-machines"].m == 2
        assert report["half-machines"].params == {"k": 16}
        assert report["50%-faster"].speed == 1.5
        assert report["no-steal"].params == {"k": 0}

    def test_noop_delta_has_exactly_zero_impact(self, tmp_path):
        """Paired rep seeds: a delta equal to the baseline moves nothing."""
        report = ablate(
            make_ws, {"k": 16}, {"same": {"k": 16}}, SPEC, m=4, reps=3,
            seed=2, cache=tmp_path, max_workers=1,
        )
        assert report["same"].impact["max_flow"] == 0.0
        assert report["same"].metrics == report.baseline_metrics

    def test_ranked_by_absolute_impact(self, tmp_path):
        report = ablate(
            make_ws, {"k": 16}, DELTAS, SPEC, m=4, reps=1, seed=1,
            cache=tmp_path, max_workers=1,
        )
        magnitudes = [
            abs(d.impact["max_flow"]) for d in report.ranked()
        ]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_getitem_unknown_name(self, tmp_path):
        report = ablate(
            make_ws, {}, {"no-steal": {"k": 0}}, SPEC, m=4, seed=1,
            cache=tmp_path, max_workers=1,
        )
        with pytest.raises(KeyError):
            report["nope"]

    def test_renderings(self, tmp_path):
        report = ablate(
            make_ws, {"k": 16}, DELTAS, SPEC, m=4, reps=1, seed=1,
            cache=tmp_path, max_workers=1,
        )
        text = report.summary()
        assert "ablation report" in text
        assert "baseline" in text
        for name in DELTAS:
            assert name in text
        md = report.to_markdown()
        assert "| delta | overrides |" in md
        assert md.count("|") >= 5 * (1 + len(DELTAS))
        blob = json.loads(json.dumps(report.as_dict()))
        assert blob["objective"] == "max_flow"
        assert len(blob["deltas"]) == len(DELTAS)
        assert blob["baseline"]["m"] == 4

    def test_rerun_served_from_cache(self, tmp_path):
        first = ablate(
            make_ws, {"k": 16}, DELTAS, SPEC, m=4, reps=2, seed=1,
            cache=tmp_path, max_workers=1,
        )
        second = ablate(
            make_ws, {"k": 16}, DELTAS, SPEC, m=4, reps=2, seed=1,
            cache=tmp_path, max_workers=1,
        )
        assert first.n_cold > 0
        assert second.n_cold == 0
        assert second.n_cached == first.n_cold + first.n_cached
        assert second.baseline_metrics == first.baseline_metrics
        for a, b in zip(first.ranked(), second.ranked()):
            assert a.metrics == b.metrics


class TestKnobVocabulary:
    def test_scheduler_swap_delta(self, tmp_path):
        report = ablate(
            make_ws, {}, {"fifo": {"scheduler": lambda: FifoScheduler()}},
            SPEC, m=4, seed=1, cache=tmp_path, max_workers=1,
        )
        assert "fifo" in {d.name for d in report.deltas}

    def test_scheduler_delta_must_be_callable(self):
        with pytest.raises(SweepConfigError, match="callable"):
            ablate(
                make_ws, {}, {"bad": {"scheduler": "not-a-factory"}},
                SPEC, m=4,
            )

    def test_workload_field_rewrite(self, tmp_path):
        report = ablate(
            make_ws, {}, {"heavy": {"workload.qps": 1200.0}}, SPEC, m=4,
            seed=1, cache=tmp_path, max_workers=1,
        )
        assert report["heavy"].overrides == {"workload.qps": 1200.0}

    def test_workload_unknown_field(self):
        with pytest.raises(SweepConfigError, match="unknown workload field"):
            ablate(make_ws, {}, {"bad": {"workload.zzz": 1}}, SPEC, m=4)

    def test_workload_rewrite_needs_dataclass(self):
        def raw_factory(rep_seed):
            return SPEC(rep_seed)

        with pytest.raises(SweepConfigError, match="dataclass workload"):
            ablate(
                make_ws, {}, {"bad": {"workload.qps": 1.0}}, raw_factory,
                m=4,
            )

    def test_alias_disagreement_rejected(self):
        with pytest.raises(SweepConfigError, match="aliases but disagree"):
            ablate(
                make_ws, {}, {"bad": {"m": 2, "num_workers": 3}}, SPEC,
                m=4,
            )
        with pytest.raises(SweepConfigError, match="aliases but disagree"):
            ablate(
                make_ws, {},
                {"bad": {"speed": 1.1, "augmentation": 1.2}}, SPEC, m=4,
            )

    def test_alias_agreement_accepted(self, tmp_path):
        report = ablate(
            make_ws, {}, {"ok": {"m": 2, "num_workers": 2}}, SPEC, m=4,
            seed=1, cache=tmp_path, max_workers=1,
        )
        assert report["ok"].m == 2

    def test_bad_knob_values(self):
        with pytest.raises(SweepConfigError, match="positive int"):
            ablate(make_ws, {}, {"bad": {"m": 0}}, SPEC, m=4)
        with pytest.raises(SweepConfigError, match="positive number"):
            ablate(make_ws, {}, {"bad": {"speed": -1.0}}, SPEC, m=4)
        with pytest.raises(SweepConfigError, match="non-empty strings"):
            ablate(make_ws, {}, {"bad": {"": 1}}, SPEC, m=4)


class TestValidation:
    def test_shapes(self):
        with pytest.raises(SweepConfigError, match="non-empty mapping"):
            ablate(make_ws, {}, {}, SPEC, m=4)
        with pytest.raises(SweepConfigError, match="must be a mapping"):
            ablate(make_ws, [("k", 0)], {"d": {"k": 0}}, SPEC, m=4)
        with pytest.raises(SweepConfigError, match="non-empty strings"):
            ablate(make_ws, {}, {"": {"k": 0}}, SPEC, m=4)
        with pytest.raises(SweepConfigError, match="at least one knob"):
            ablate(make_ws, {}, {"empty": {}}, SPEC, m=4)

    def test_knob_ranges(self):
        deltas = {"d": {"k": 0}}
        with pytest.raises(SweepConfigError, match="m >= 1"):
            ablate(make_ws, {}, deltas, SPEC, m=0)
        with pytest.raises(SweepConfigError, match="reps >= 1"):
            ablate(make_ws, {}, deltas, SPEC, m=4, reps=0)
        with pytest.raises(SweepConfigError, match="unknown objective"):
            ablate(
                make_ws, {}, deltas, SPEC, m=4, objective="throughput"
            )


class TestFacade:
    def test_facade_matches_core(self, tmp_path):
        direct = ablate(
            make_ws, {"k": 16}, {"no-steal": {"k": 0}}, SPEC, m=4,
            reps=2, seed=3, cache=tmp_path / "a", max_workers=1,
        )
        via_facade = repro.ablate(
            make_ws,
            {"k": 16},
            {"no-steal": {"k": 0}},
            SPEC,
            num_workers=4,  # alias for m
            reps=2,
            seed=3,
            cache=tmp_path / "b",
            max_workers=1,
        )
        assert via_facade.baseline_metrics == direct.baseline_metrics
        assert (
            via_facade["no-steal"].metrics == direct["no-steal"].metrics
        )

    def test_facade_normalizes_scheduler_forms_in_deltas(self, tmp_path):
        report = repro.ablate(
            WorkStealingScheduler(k=16),
            {},
            {"fifo": {"scheduler": FifoScheduler()}},
            SPEC,
            m=4,
            seed=1,
            cache=tmp_path,
            max_workers=1,
        )
        assert report["fifo"].impact["max_flow"] is not None

    def test_facade_requires_machine_size(self):
        with pytest.raises(TypeError, match="machine size"):
            repro.ablate(make_ws, {}, {"d": {"k": 0}}, SPEC)


class TestTelemetry:
    def test_event_vocabulary_and_audit(self, tmp_path):
        log = tmp_path / "events.jsonl"
        telemetry = Telemetry(log)
        ablate(
            make_ws, {"k": 16}, DELTAS, SPEC, m=4, reps=1, seed=1,
            cache=tmp_path / "cache", max_workers=1, telemetry=telemetry,
        )
        telemetry.close()
        events = read_events(log)
        kinds = [e["event"] for e in events]
        assert kinds.count("ablate.start") == 1
        assert kinds.count("ablate.delta") == len(DELTAS)
        assert kinds.count("ablate.done") == 1
        assert audit_events(events) == []
        text = summarize_events(events)
        assert "ablations" in text
        assert "top delta" in text
